"""Data Access Object layer (paper §3.2.3).

CRUD against the data store.  Two interchangeable backends:

* :class:`InMemoryDAO` — dict-based, used by tests and ephemeral stacks.
* :class:`SqliteDAO` — durable storage standing in for the paper's
  remote MySQL web service; embeddings stored as float32 BLOBs.

The DAO layer knows nothing about ownership/dedup rules — that is the
service layer's job — it only persists and retrieves records.  It does,
however, own the *access paths* that make ownership filtering cheap:

* ``pes_owned_by`` / ``workflows_owned_by`` — owner-scoped listings
  whose cost is O(user's records), not O(total registry);
* ``pe_ids_owned_by`` / ``workflow_ids_owned_by`` — id-only projections
  that never materialize rows or unblob embeddings, used by the search
  serving path for shard-membership checks;
* ``get_pes`` / ``get_workflows`` — id-batched fetch for top-k result
  hydration;
* ``insert_pes`` / ``insert_workflows`` — batched bulk load.

In :class:`SqliteDAO`, ownership lives in normalized ``pe_owners`` /
``workflow_owners`` join tables (indexed by ``user_id``) and the
PE<->workflow association in a ``workflow_pes`` link table, all migrated
automatically from the legacy JSON columns the first time an old file is
opened (tracked by ``PRAGMA user_version``).  The JSON ``owners`` /
``pe_ids`` columns remain the storage format *on the record itself* so
old readers keep working; the join tables are derived data kept in sync
on every write.  :class:`InMemoryDAO` maintains the equivalent per-user
id sets.
"""

from __future__ import annotations

import json
import math
import re
import sqlite3
import threading
from abc import ABC, abstractmethod
from collections import Counter
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import NotFoundError
from repro.registry.entities import PERecord, UserRecord, WorkflowRecord

#: status stored while a write's idempotency key is *claimed* but its
#: outcome not yet recorded — the cross-process serialization marker.
#: Losers of a claim race poll until the status leaves this sentinel.
RECEIPT_PENDING = -1


def _text_documents():
    """Deferred import of the normalized text-document builders.

    ``repro.search``'s package ``__init__`` imports
    ``repro.registry.entities``, so a module-level import here would be
    circular whenever ``repro.search`` happens to load first.
    """
    from repro.search import text_search

    return text_search


#: replica of the FTS5 ``unicode61`` tokenizer over the (already
#: lowercased) normalized documents: maximal runs of unicode
#: alphanumerics.  ``\w`` minus underscore matches unicode61's
#: token-character classes (L*, N*) for everything the normalizer
#: emits; combining marks are out of scope either way because
#: :func:`repro.search.text_search.normalize` lowercases composed text.
_FTS_TOKEN = re.compile(r"[^\W_]+", re.UNICODE)

#: SQLite FTS5 ``bm25()`` constants — fixed in fts5_aux.c, not tunable
_BM25_K1 = 1.2
_BM25_B = 0.75

#: score bonus when the stripped lowercase query occurs as a substring
#: of the normalized name — the indexed analogue of the legacy scorer's
#: dominant whole-query arm
_NAME_SUBSTRING_BONUS = 2.0


class RegistryDAO(ABC):
    """Abstract CRUD interface over users, PEs and workflows."""

    # -- users ------------------------------------------------------------
    @abstractmethod
    def insert_user(self, name: str, password_hash: str) -> UserRecord: ...

    @abstractmethod
    def get_user_by_name(self, name: str) -> UserRecord | None: ...

    @abstractmethod
    def all_users(self) -> list[UserRecord]: ...

    # -- PEs ---------------------------------------------------------------
    @abstractmethod
    def insert_pe(self, record: PERecord) -> PERecord: ...

    @abstractmethod
    def update_pe(self, record: PERecord) -> None: ...

    @abstractmethod
    def get_pe(self, pe_id: int) -> PERecord | None: ...

    @abstractmethod
    def find_pe_by_name(self, name: str) -> list[PERecord]: ...

    @abstractmethod
    def all_pes(self) -> list[PERecord]: ...

    @abstractmethod
    def delete_pe(self, pe_id: int) -> None: ...

    # -- PEs: owner-scoped / batched access paths -------------------------
    def insert_pes(self, records: Sequence[PERecord]) -> list[PERecord]:
        """Bulk insert; backends may batch.  Returns the stored records."""
        return [self.insert_pe(record) for record in records]

    def get_pes(self, pe_ids: Sequence[int]) -> list[PERecord]:
        """Batched fetch, in the order of ``pe_ids``; missing ids skipped."""
        records = []
        for pe_id in pe_ids:
            record = self.get_pe(pe_id)
            if record is not None:
                records.append(record)
        return records

    @abstractmethod
    def pes_owned_by(self, user_id: int) -> list[PERecord]:
        """All PEs owned by ``user_id``, ascending id — O(user's records)."""

    @abstractmethod
    def pe_ids_owned_by(self, user_id: int) -> list[int]:
        """Ascending owned PE ids; never materializes rows or embeddings."""

    # -- workflows -----------------------------------------------------------
    @abstractmethod
    def insert_workflow(self, record: WorkflowRecord) -> WorkflowRecord: ...

    @abstractmethod
    def update_workflow(self, record: WorkflowRecord) -> None: ...

    @abstractmethod
    def get_workflow(self, workflow_id: int) -> WorkflowRecord | None: ...

    @abstractmethod
    def find_workflow_by_entry_point(
        self, entry_point: str
    ) -> list[WorkflowRecord]: ...

    @abstractmethod
    def all_workflows(self) -> list[WorkflowRecord]: ...

    @abstractmethod
    def delete_workflow(self, workflow_id: int) -> None: ...

    # -- workflows: owner-scoped / batched access paths -------------------
    def insert_workflows(
        self, records: Sequence[WorkflowRecord]
    ) -> list[WorkflowRecord]:
        """Bulk insert; backends may batch.  Returns the stored records."""
        return [self.insert_workflow(record) for record in records]

    def get_workflows(self, workflow_ids: Sequence[int]) -> list[WorkflowRecord]:
        """Batched fetch, in the order of ``workflow_ids``; missing skipped."""
        records = []
        for workflow_id in workflow_ids:
            record = self.get_workflow(workflow_id)
            if record is not None:
                records.append(record)
        return records

    @abstractmethod
    def workflows_owned_by(self, user_id: int) -> list[WorkflowRecord]:
        """All workflows owned by ``user_id``, ascending id."""

    @abstractmethod
    def workflow_ids_owned_by(self, user_id: int) -> list[int]:
        """Ascending owned workflow ids; never materializes rows."""

    # -- indexed text ranking (BM25 + substring arm) -----------------------
    @abstractmethod
    def text_topk_pes(
        self, user_id: int, query: str, k: int | None = None
    ) -> list[tuple[int, float]]:
        """Top-k owned ``(pe_id, score)`` pairs by combined text relevance.

        ``score`` is the BM25 goodness (``-bm25()`` over the normalized
        name/description documents, SQLite's exact arithmetic on both
        backends) plus :data:`_NAME_SUBSTRING_BONUS` when the stripped
        lowercase query occurs as a substring of the normalized name.
        Ordered by ``(-score, id)``; empty for blank queries; returns
        ids only so the caller hydrates at most ``k`` records.
        """

    @abstractmethod
    def text_topk_workflows(
        self, user_id: int, query: str, k: int | None = None
    ) -> list[tuple[int, float]]:
        """Top-k owned ``(workflow_id, score)`` by combined text relevance.

        Same scoring as :meth:`text_topk_pes` over the workflow
        documents (entry point + workflow name arms, description).
        """

    # -- text-search candidate filtering ----------------------------------
    def pes_owned_by_matching(
        self, user_id: int, patterns: Sequence[str] | None
    ) -> list[PERecord]:
        """Owned PEs whose name or description contains any pattern.

        A *candidate superset* for the text scorer: backends may return
        extra rows (the scorer drops non-matches) but must never drop a
        row the scorer would keep — every pattern is matched as a
        case-insensitive substring of the raw stored text.  ``None``
        means "cannot filter" and returns the full owned listing.
        """
        records = self.pes_owned_by(user_id)
        if not patterns:  # None or empty: cannot filter
            return records
        needles = [pattern.lower() for pattern in patterns]
        return [
            record
            for record in records
            if any(
                needle in record.pe_name.lower()
                or needle in record.description.lower()
                for needle in needles
            )
        ]

    def workflows_owned_by_matching(
        self, user_id: int, patterns: Sequence[str] | None
    ) -> list[WorkflowRecord]:
        """Owned workflows matching any pattern on name/entry/description."""
        records = self.workflows_owned_by(user_id)
        if not patterns:  # None or empty: cannot filter
            return records
        needles = [pattern.lower() for pattern in patterns]
        return [
            record
            for record in records
            if any(
                needle in record.entry_point.lower()
                or needle in record.workflow_name.lower()
                or needle in record.description.lower()
                for needle in needles
            )
        ]

    # -- index-shard persistence ------------------------------------------
    def mutation_counter(self) -> int:
        """Monotonic counter bumped on every PE/workflow write.

        Backends that do not track mutations return 0 forever, which
        marks any persisted shard snapshot permanently stale — the safe
        default (attach always rebuilds).
        """
        return 0

    def save_index_shards(
        self,
        shards: Mapping[tuple[int, str], tuple[np.ndarray, np.ndarray]],
        counter: int,
    ) -> None:
        """Persist ``{(user_id, kind): (ids, matrix)}`` slabs at ``counter``.

        Wholesale truth assertion: replaces every base slab *and* every
        journaled delta, and stamps each given shard at ``counter`` —
        the caller vouches this is the complete index state at that
        counter.  No-op by default.
        """

    def shard_stamps(self) -> dict[tuple[int, str], int]:
        """Per-``(user_id, kind)`` expected mutation stamps.

        Every registry mutation stamps the shards whose *content* it
        changed (owner gained/lost, embedding bytes changed) with the
        bumped mutation counter, inside the same transaction.  A
        persisted shard is fresh iff its replayed chain tip equals this
        stamp.  Backends without stamp tracking return ``{}`` — every
        persisted shard is then permanently stale (attach rebuilds).
        """
        return {}

    def upsert_index_shards(
        self,
        shards: Mapping[tuple[int, str], tuple[np.ndarray, np.ndarray]],
        stamp: int,
    ) -> None:
        """Upsert base slabs for just the given shards at ``stamp``.

        For each shard this (atomically, per shard) replaces the base
        slab row, deletes journaled deltas with counter ``<= stamp``
        (they are folded into the new base — this is compaction), and
        raises the shard's expected stamp to at least ``stamp`` (seeding
        missing stamps, e.g. after a full rebuild of a pre-v6 file).
        Untouched shards keep their rows — one tenant's flush never
        rewrites another tenant's slab.  No-op by default.
        """

    def append_index_delta(
        self,
        user_id: int,
        kind: str,
        op: str,
        rids: np.ndarray,
        vectors: np.ndarray | None,
        counter: int,
    ) -> tuple[int, int]:
        """Append one ``'add'``/``'remove'`` row batch to the shard's
        delta journal, stamped ``counter``.

        Returns the shard's post-append ``(chain_len, chain_bytes)`` so
        the caller can trigger compaction past a threshold.  Backends
        without a journal return ``(0, 0)``.
        """
        return (0, 0)

    def load_index_shards(
        self,
    ) -> tuple[
        dict[tuple[int, str], tuple[np.ndarray, np.ndarray, int]], int
    ]:
        """Replayed per-shard slabs: ``({key: (ids, matrix, tip)}, discarded)``.

        Each shard's base slab is replayed through its delta chain in
        append order; ``tip`` is the counter of the last event folded in
        (the shard is fresh iff ``tip == shard_stamps()[key]``).  A
        corrupt, truncated or torn shard (bad blob, non-monotonic chain,
        delta at or below the base stamp) discards *only that shard* and
        increments ``discarded`` — never the whole snapshot.
        """
        return {}, 0

    def index_shards_meta(self) -> dict[str, int | None]:
        """Cheap snapshot metadata:
        ``{counter, shards, rows, deltas, deltaBytes}``.

        Never deserializes slab blobs; ``counter`` is the uniform base
        stamp, or ``None`` when absent or (normal under per-shard
        persistence) mixed.
        """
        return {
            "counter": None,
            "shards": 0,
            "rows": 0,
            "deltas": 0,
            "deltaBytes": 0,
        }

    def shard_chain_meta(self) -> dict[tuple[int, str], dict[str, int]]:
        """Per-shard chain statistics, no blob deserialization:
        ``{key: {baseCounter, rows, chainLen, chainBytes, tip}}``."""
        return {}

    # -- idempotency receipts (v1 write surface) ---------------------------
    def get_write_receipt(
        self, user_id: int, key: str
    ) -> tuple[str, int, dict] | None:
        """The stored ``(fingerprint, status, body)`` for an idempotency
        key, or ``None``.

        Backends that do not implement receipts return ``None`` forever
        — idempotent replay then degrades to re-execution (safe for the
        §3.1 dedup semantics, but replays are no longer byte-exact).
        Both shipped DAOs implement storage.
        """
        return None

    def save_write_receipt(
        self,
        user_id: int,
        key: str,
        fingerprint: str,
        status: int,
        body: dict,
        created_at: float = 0.0,
    ) -> None:
        """Record one write's response under ``(user_id, key)``.

        Receipts are *not* registry mutations: saving one must never
        bump :meth:`mutation_counter` (a replay leaves the counter
        untouched, which is the observable no-op guarantee).
        """

    def claim_write_receipt(
        self, user_id: int, key: str, fingerprint: str, created_at: float = 0.0
    ) -> bool:
        """Atomically claim ``(user_id, key)`` for one writer.

        Returns ``True`` if this caller won the claim (a
        :data:`RECEIPT_PENDING` placeholder row now exists) and must
        execute the write, ``False`` if another writer — possibly in
        another *process* — holds or completed it.  Backends without
        receipt storage return ``True`` (no serialization, the safe
        single-process default).
        """
        return True

    def finalize_write_receipt(
        self,
        user_id: int,
        key: str,
        fingerprint: str,
        status: int,
        body: dict,
        created_at: float = 0.0,
    ) -> None:
        """Replace a pending claim with the write's recorded outcome."""
        self.save_write_receipt(
            user_id, key, fingerprint, status, body, created_at
        )

    def release_write_receipt(self, user_id: int, key: str) -> None:
        """Drop a *pending* claim (the write failed), so the key is
        retryable; a finalized receipt is never released."""

    def prune_write_receipts(
        self,
        now: float,
        ttl: float | None = None,
        cap: int | None = None,
    ) -> int:
        """Bound idempotency storage; returns the number of rows dropped.

        ``ttl`` drops finalized receipts with ``created_at <= now - ttl``
        (replay works inside the window, re-executes outside it — the
        documented idempotency contract is time-bounded, as every
        production idempotency store's is); ``cap`` keeps only the
        newest ``cap`` finalized receipts.  Pending claims are never
        pruned — an in-flight writer still owns them.
        """
        return 0

    # -- persisted IVF training state --------------------------------------
    def save_ivf_states(
        self,
        states: Mapping[tuple[int, str], tuple[np.ndarray, list[np.ndarray]]],
        stamps: Mapping[tuple[int, str], int] | int,
    ) -> None:
        """Upsert ``{(user_id, kind): (centroids, lists)}`` training state.

        ``lists`` are row-index arrays into the (ascending-id ordered)
        slab content at the shard's stamp — the pair is only meaningful
        together.  ``stamps`` is either one uniform counter or a
        per-shard mapping; rows for shards not in ``states`` are left in
        place (they go stale by stamp, never torn).  No-op by default.
        """

    def load_ivf_states(
        self,
    ) -> tuple[
        dict[tuple[int, str], int],
        dict[tuple[int, str], tuple[np.ndarray, list[np.ndarray]]],
    ]:
        """The persisted per-shard ``(stamps, states)``; corrupt rows
        are skipped individually.  ``({}, {})`` when nothing stored."""
        return {}, {}

    # -- persisted HNSW graph state ----------------------------------------
    def save_hnsw_states(
        self,
        states: Mapping[tuple[int, str], tuple[np.ndarray, np.ndarray]],
        stamps: Mapping[tuple[int, str], int] | int,
    ) -> None:
        """Upsert ``{(user_id, kind): (levels, neighbors)}`` graph state.

        ``levels`` assigns one graph level per slab row and
        ``neighbors`` is the level-0 adjacency (rows × m0 row indices,
        ``-1``-padded); both refer to the slab content at the shard's
        stamp.  Same per-shard upsert semantics as
        :meth:`save_ivf_states`.  No-op by default.
        """

    def load_hnsw_states(
        self,
    ) -> tuple[
        dict[tuple[int, str], int],
        dict[tuple[int, str], tuple[np.ndarray, np.ndarray]],
    ]:
        """The persisted per-shard ``(stamps, states)``; corrupt rows
        are skipped individually.  ``({}, {})`` when nothing stored."""
        return {}, {}


class _TextMirror:
    """In-memory analogue of the SQLite FTS5 index for one record type.

    A token→ids postings map (candidate discovery *and* document
    frequencies) plus per-document term counts, scored with SQLite's
    exact ``bm25()`` arithmetic — same constants, same clamped-idf
    formula, same sorted-term summation order — so both DAOs rank
    identically.
    """

    def __init__(self) -> None:
        self._docs: dict[int, tuple[str, Counter, int]] = {}
        self._postings: dict[str, set[int]] = {}
        self._total_tokens = 0

    def put(self, entity_id: int, name_norm: str, desc_doc: str) -> None:
        self.drop(entity_id)
        tokens = _FTS_TOKEN.findall(name_norm) + _FTS_TOKEN.findall(desc_doc)
        term_counts = Counter(tokens)
        self._docs[entity_id] = (name_norm, term_counts, len(tokens))
        self._total_tokens += len(tokens)
        for token in term_counts:
            self._postings.setdefault(token, set()).add(entity_id)

    def drop(self, entity_id: int) -> None:
        doc = self._docs.pop(entity_id, None)
        if doc is None:
            return
        _, term_counts, doc_len = doc
        self._total_tokens -= doc_len
        for token in term_counts:
            bucket = self._postings.get(token)
            if bucket is not None:
                bucket.discard(entity_id)
                if not bucket:
                    del self._postings[token]

    def topk(
        self, owned_ids: Sequence[int], query: str, k: int | None
    ) -> list[tuple[int, float]]:
        needle = query.lower().strip()
        if not needle:
            return []
        terms = _text_documents().match_terms(query)
        nrow = len(self._docs)
        avgdl = self._total_tokens / nrow if nrow else 0.0
        # idf per term, over the *global* document set (FTS5 computes
        # document frequencies on the whole table, not the owner join)
        idf: dict[str, float] = {}
        candidates: set[int] = set()
        for term in terms:
            hits = self._postings.get(term)
            if not hits:
                continue
            nhit = len(hits)
            value = math.log((0.5 + nrow - nhit) / (0.5 + nhit))
            idf[term] = value if value > 0.0 else 1e-6
            candidates.update(hits)
        candidates.intersection_update(owned_ids)
        scored: list[tuple[int, float]] = []
        for entity_id in owned_ids:
            doc = self._docs.get(entity_id)
            if doc is None:
                continue
            name_norm, term_counts, doc_len = doc
            score = 0.0
            if entity_id in candidates:
                norm = _BM25_K1 * (
                    (1.0 - _BM25_B) + (_BM25_B * doc_len) / avgdl
                )
                for term in terms:
                    freq = term_counts.get(term)
                    if not freq or term not in idf:
                        continue
                    score += idf[term] * (
                        (freq * (_BM25_K1 + 1.0)) / (freq + norm)
                    )
            if needle in name_norm:
                score += _NAME_SUBSTRING_BONUS
            if score > 0.0:
                scored.append((entity_id, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored if k is None else scored[:k]


#: shard kinds, duplicated from repro.search.index (importing it here
#: would be circular — the index imports nothing from the DAO, but the
#: search package's __init__ pulls in modules that need DAO types)
_KIND_DESC = "desc"
_KIND_CODE = "code"
_KIND_WORKFLOW = "wf-desc"

#: delta-journal ops
_OP_ADD = "add"
_OP_REMOVE = "remove"


def _embed_bytes(vec) -> bytes | None:
    """Canonical float32 bytes of an embedding (``None`` stays None) —
    the byte-change test both DAOs use to decide whether a mutation
    stamps a shard."""
    if vec is None:
        return None
    return np.asarray(vec, dtype=np.float32).tobytes()


def _state_stamp(stamps: Mapping | int, key: tuple[int, str]) -> int:
    """One approx-state stamp: per-shard mapping lookup, or a uniform
    counter applied to every shard."""
    if isinstance(stamps, Mapping):
        return int(stamps[key])
    return int(stamps)


def _pe_stamp_keys(
    old_owners: set[int],
    new_owners: set[int],
    old_desc: bytes | None,
    new_desc: bytes | None,
    old_code: bytes | None,
    new_code: bytes | None,
) -> set[tuple[int, str]]:
    """The (user_id, kind) shards whose *content* a PE write changes.

    A shard changes when its owner gains or loses the record
    (membership) or when the embedding bytes themselves change (then
    every owner's shard changes).  Pure metadata updates — description
    text, imports, workflow pe_ids — stamp nothing, so they never stale
    a persisted slab.
    """
    keys: set[tuple[int, str]] = set()
    for kind, old_b, new_b in (
        (_KIND_DESC, old_desc, new_desc),
        (_KIND_CODE, old_code, new_code),
    ):
        if old_b != new_b:
            for user_id in old_owners | new_owners:
                keys.add((user_id, kind))
        elif new_b is not None:
            for user_id in old_owners ^ new_owners:
                keys.add((user_id, kind))
    return keys


def _wf_stamp_keys(
    old_owners: set[int],
    new_owners: set[int],
    old_desc: bytes | None,
    new_desc: bytes | None,
) -> set[tuple[int, str]]:
    """Workflow analogue of :func:`_pe_stamp_keys` (one kind)."""
    keys: set[tuple[int, str]] = set()
    if old_desc != new_desc:
        for user_id in old_owners | new_owners:
            keys.add((user_id, _KIND_WORKFLOW))
    elif new_desc is not None:
        for user_id in old_owners ^ new_owners:
            keys.add((user_id, _KIND_WORKFLOW))
    return keys


def _replay_shard(
    base: tuple[int, np.ndarray, np.ndarray] | None,
    deltas: list[tuple[int, str, np.ndarray, np.ndarray | None]],
) -> tuple[np.ndarray, np.ndarray, int]:
    """Fold a shard's delta chain into its base slab.

    ``base`` is ``(counter, ids, matrix)`` or ``None``; ``deltas`` are
    ``(counter, op, ids, vectors)`` in journal append order.  Returns
    the replayed ``(ids, matrix, tip)`` with ascending int64 ids and a
    C-contiguous float32 matrix — byte-for-byte the layout a live
    :class:`~repro.search.index.VectorIndex` shard holds, so replayed
    slabs score bitwise-identically.

    Raises ``ValueError`` on a torn chain: a delta stamped at or below
    the base (a crash left compaction half-applied), a non-increasing
    chain (two writers raced the journal), or a dimension mismatch.
    ``'remove'`` of an absent id is tolerated — a rebuilt base may
    already reflect a delta appended concurrently with the rebuild.
    """
    rows: dict[int, np.ndarray] = {}
    dim: int | None = None
    tip: int | None = None
    if base is not None:
        tip, ids, matrix = base
        if matrix.ndim != 2 or ids.shape[0] != matrix.shape[0]:
            raise ValueError("base slab shape mismatch")
        dim = int(matrix.shape[1]) if matrix.shape[0] else None
        for row, rid in enumerate(ids.tolist()):
            rows[int(rid)] = matrix[row]
    for counter, op, rids, vectors in deltas:
        if tip is not None and counter <= tip:
            # a delta at or below the base stamp means a crash left
            # compaction half-applied; a non-increasing chain means two
            # writers raced the journal — either way the chain is torn
            raise ValueError("non-increasing delta chain")
        tip = counter
        if op == _OP_REMOVE:
            for rid in rids.tolist():
                rows.pop(int(rid), None)
        elif op == _OP_ADD:
            if vectors is None or vectors.ndim != 2:
                raise ValueError("add delta without vectors")
            if rids.shape[0] != vectors.shape[0]:
                raise ValueError("add delta shape mismatch")
            if dim is not None and vectors.shape[1] != dim:
                raise ValueError("delta dimension mismatch")
            dim = int(vectors.shape[1])
            for row, rid in enumerate(rids.tolist()):
                rows[int(rid)] = vectors[row]
        else:
            raise ValueError(f"unknown delta op {op!r}")
    if tip is None:
        raise ValueError("empty shard chain")
    if not rows:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, dim or 0), dtype=np.float32),
            int(tip),
        )
    ordered = sorted(rows)
    ids_out = np.asarray(ordered, dtype=np.int64)
    matrix_out = np.ascontiguousarray(
        np.stack([rows[rid] for rid in ordered]), dtype=np.float32
    )
    return ids_out, matrix_out, int(tip)


class InMemoryDAO(RegistryDAO):
    """Dict-backed DAO; thread-safe for the in-process server.

    Ownership and the PE<->workflow association are mirrored into
    per-user (and per-PE) id sets so owner-scoped listings and the
    delete-time back-reference walk are O(result), not O(registry).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._users: dict[int, UserRecord] = {}
        self._users_by_name: dict[str, UserRecord] = {}
        self._pes: dict[int, PERecord] = {}
        self._workflows: dict[int, WorkflowRecord] = {}
        self._next_user = 1
        self._next_pe = 1
        self._next_workflow = 1
        # owner index: user_id -> owned ids (kept in sync on every write)
        self._owner_pes: dict[int, set[int]] = {}
        self._owner_workflows: dict[int, set[int]] = {}
        # last-indexed owner sets, so updates can diff against mutated
        # record objects (the service mutates records in place)
        self._pe_owner_snapshot: dict[int, frozenset[int]] = {}
        self._wf_owner_snapshot: dict[int, frozenset[int]] = {}
        # back-reference: pe_id -> workflows linking it
        self._pe_backrefs: dict[int, set[int]] = {}
        self._wf_link_snapshot: dict[int, frozenset[int]] = {}
        # shard-persistence bookkeeping (process-local: an in-memory
        # registry has no cold start, but tracking the counter keeps the
        # freshness protocol uniform and testable across backends).
        # Per-shard: base slabs, append-only delta chains and expected
        # stamps mirror SqliteDAO's index_shards / index_deltas /
        # shard_stamps tables exactly.
        self._mutations = 0
        self._shard_stamps: dict[tuple[int, str], int] = {}
        self._base_shards: dict[
            tuple[int, str], tuple[int, np.ndarray, np.ndarray]
        ] = {}
        self._shard_deltas: dict[
            tuple[int, str],
            list[tuple[int, str, np.ndarray, np.ndarray | None]],
        ] = {}
        # last-committed embedding bytes, so updates can diff against
        # record objects the service mutates in place (same reason the
        # owner snapshots above exist)
        self._pe_embed_snapshot: dict[int, tuple[bytes | None, bytes | None]] = {}
        self._wf_embed_snapshot: dict[int, bytes | None] = {}
        self._saved_ivf: dict[tuple[int, str], tuple[int, tuple]] = {}
        self._saved_hnsw: dict[tuple[int, str], tuple[int, tuple]] = {}
        # text-search mirror of SqliteDAO's FTS5 tables, kept in sync
        # at the same mutation points the triggers fire
        self._pe_text = _TextMirror()
        self._wf_text = _TextMirror()
        # idempotency receipts:
        # (user_id, key) -> (fingerprint, status, body, created_at)
        self._receipts: dict[tuple[int, str], tuple[str, int, dict, float]] = {}

    # -- text-index maintenance -------------------------------------------
    def _index_pe_text(self, record: PERecord) -> None:
        docs = _text_documents()
        self._pe_text.put(
            record.pe_id,
            *docs.fts_pe_document(record.pe_name, record.description),
        )

    def _index_wf_text(self, record: WorkflowRecord) -> None:
        docs = _text_documents()
        self._wf_text.put(
            record.workflow_id,
            *docs.fts_workflow_document(
                record.entry_point, record.workflow_name, record.description
            ),
        )

    # -- index maintenance -------------------------------------------------
    def _reindex_pe_owners(self, record: PERecord) -> None:
        old = self._pe_owner_snapshot.get(record.pe_id, frozenset())
        new = frozenset(record.owners)
        for user_id in old - new:
            self._owner_pes.get(user_id, set()).discard(record.pe_id)
        for user_id in new - old:
            self._owner_pes.setdefault(user_id, set()).add(record.pe_id)
        self._pe_owner_snapshot[record.pe_id] = new

    def _drop_pe_owners(self, pe_id: int) -> None:
        for user_id in self._pe_owner_snapshot.pop(pe_id, frozenset()):
            self._owner_pes.get(user_id, set()).discard(pe_id)

    def _reindex_wf_owners(self, record: WorkflowRecord) -> None:
        old = self._wf_owner_snapshot.get(record.workflow_id, frozenset())
        new = frozenset(record.owners)
        for user_id in old - new:
            self._owner_workflows.get(user_id, set()).discard(record.workflow_id)
        for user_id in new - old:
            self._owner_workflows.setdefault(user_id, set()).add(
                record.workflow_id
            )
        self._wf_owner_snapshot[record.workflow_id] = new

    def _drop_wf_owners(self, workflow_id: int) -> None:
        for user_id in self._wf_owner_snapshot.pop(workflow_id, frozenset()):
            self._owner_workflows.get(user_id, set()).discard(workflow_id)

    def _reindex_wf_links(self, record: WorkflowRecord) -> None:
        old = self._wf_link_snapshot.get(record.workflow_id, frozenset())
        new = frozenset(record.pe_ids)
        for pe_id in old - new:
            self._pe_backrefs.get(pe_id, set()).discard(record.workflow_id)
        for pe_id in new - old:
            self._pe_backrefs.setdefault(pe_id, set()).add(record.workflow_id)
        self._wf_link_snapshot[record.workflow_id] = new

    def _drop_wf_links(self, workflow_id: int) -> None:
        for pe_id in self._wf_link_snapshot.pop(workflow_id, frozenset()):
            self._pe_backrefs.get(pe_id, set()).discard(workflow_id)

    # -- users ------------------------------------------------------------
    def insert_user(self, name: str, password_hash: str) -> UserRecord:
        with self._lock:
            record = UserRecord(self._next_user, name, password_hash)
            self._users[record.user_id] = record
            self._users_by_name[name] = record
            self._next_user += 1
            return record

    def get_user_by_name(self, name: str) -> UserRecord | None:
        with self._lock:
            return self._users_by_name.get(name)

    def all_users(self) -> list[UserRecord]:
        with self._lock:
            return sorted(self._users.values(), key=lambda u: u.user_id)

    # -- per-shard stamping ------------------------------------------------
    def _stamp_shards(self, keys: Iterable[tuple[int, str]]) -> None:
        """Stamp the shards a mutation changed with the bumped counter
        (caller holds the lock and has already bumped)."""
        for key in keys:
            self._shard_stamps[key] = self._mutations

    def _snapshot_pe_embeds(self, record: PERecord) -> None:
        self._pe_embed_snapshot[record.pe_id] = (
            _embed_bytes(record.desc_embedding),
            _embed_bytes(record.code_embedding),
        )

    def _pe_write_keys(
        self, record: PERecord, *, inserted: bool
    ) -> set[tuple[int, str]]:
        """Shards this PE write changes; diffs against the owner and
        embedding snapshots (the service mutates records in place)."""
        new_desc = _embed_bytes(record.desc_embedding)
        new_code = _embed_bytes(record.code_embedding)
        if inserted:
            old_owners: set[int] = set()
            old_desc = old_code = None
        else:
            old_owners = set(
                self._pe_owner_snapshot.get(record.pe_id, frozenset())
            )
            old_desc, old_code = self._pe_embed_snapshot.get(
                record.pe_id, (None, None)
            )
        return _pe_stamp_keys(
            old_owners, set(record.owners),
            old_desc, new_desc, old_code, new_code,
        )

    def _wf_write_keys(
        self, record: WorkflowRecord, *, inserted: bool
    ) -> set[tuple[int, str]]:
        new_desc = _embed_bytes(record.desc_embedding)
        if inserted:
            old_owners: set[int] = set()
            old_desc = None
        else:
            old_owners = set(
                self._wf_owner_snapshot.get(record.workflow_id, frozenset())
            )
            old_desc = self._wf_embed_snapshot.get(record.workflow_id)
        return _wf_stamp_keys(
            old_owners, set(record.owners), old_desc, new_desc
        )

    # -- PEs ---------------------------------------------------------------
    def insert_pe(self, record: PERecord) -> PERecord:
        with self._lock:
            self._mutations += 1
            record.pe_id = self._next_pe
            record.revision = 1
            self._next_pe += 1
            self._pes[record.pe_id] = record
            self._stamp_shards(self._pe_write_keys(record, inserted=True))
            self._reindex_pe_owners(record)
            self._snapshot_pe_embeds(record)
            self._index_pe_text(record)
            return record

    def insert_pes(self, records: Sequence[PERecord]) -> list[PERecord]:
        """Bulk load under one lock hold; one mutation-counter bump.

        One bump per *batch* (matching :class:`SqliteDAO`'s single
        transaction) keeps the service layer's index-freshness
        accounting uniform across backends.
        """
        if not records:
            return []
        with self._lock:
            self._mutations += 1
            for record in records:
                record.pe_id = self._next_pe
                record.revision = 1
                self._next_pe += 1
                self._pes[record.pe_id] = record
                self._stamp_shards(
                    self._pe_write_keys(record, inserted=True)
                )
                self._reindex_pe_owners(record)
                self._snapshot_pe_embeds(record)
                self._index_pe_text(record)
            return list(records)

    def update_pe(self, record: PERecord) -> None:
        with self._lock:
            self._mutations += 1
            if record.pe_id not in self._pes:
                raise NotFoundError(
                    f"PE id {record.pe_id} not found", params={"peId": record.pe_id}
                )
            record.revision += 1
            self._pes[record.pe_id] = record
            self._stamp_shards(self._pe_write_keys(record, inserted=False))
            self._reindex_pe_owners(record)
            self._snapshot_pe_embeds(record)
            self._index_pe_text(record)

    def get_pe(self, pe_id: int) -> PERecord | None:
        with self._lock:
            return self._pes.get(pe_id)

    def find_pe_by_name(self, name: str) -> list[PERecord]:
        with self._lock:
            return [pe for pe in self._pes.values() if pe.pe_name == name]

    def all_pes(self) -> list[PERecord]:
        with self._lock:
            return sorted(self._pes.values(), key=lambda p: p.pe_id)

    def pes_owned_by(self, user_id: int) -> list[PERecord]:
        with self._lock:
            return [
                self._pes[pe_id]
                for pe_id in sorted(self._owner_pes.get(user_id, ()))
            ]

    def pe_ids_owned_by(self, user_id: int) -> list[int]:
        with self._lock:
            return sorted(self._owner_pes.get(user_id, ()))

    def delete_pe(self, pe_id: int) -> None:
        with self._lock:
            self._mutations += 1
            if pe_id not in self._pes:
                raise NotFoundError(f"PE id {pe_id} not found", params={"peId": pe_id})
            old_owners = set(self._pe_owner_snapshot.get(pe_id, frozenset()))
            old_desc, old_code = self._pe_embed_snapshot.pop(
                pe_id, (None, None)
            )
            self._stamp_shards(
                _pe_stamp_keys(
                    old_owners, set(), old_desc, None, old_code, None
                )
            )
            del self._pes[pe_id]
            self._drop_pe_owners(pe_id)
            self._pe_text.drop(pe_id)
            # back-reference walk: only the workflows that link this PE
            for workflow_id in sorted(self._pe_backrefs.pop(pe_id, set())):
                workflow = self._workflows[workflow_id]
                if pe_id in workflow.pe_ids:
                    workflow.pe_ids.remove(pe_id)
                self._reindex_wf_links(workflow)

    # -- workflows -----------------------------------------------------------
    def insert_workflow(self, record: WorkflowRecord) -> WorkflowRecord:
        with self._lock:
            self._mutations += 1
            record.workflow_id = self._next_workflow
            record.revision = 1
            self._next_workflow += 1
            self._workflows[record.workflow_id] = record
            self._stamp_shards(self._wf_write_keys(record, inserted=True))
            self._reindex_wf_owners(record)
            self._wf_embed_snapshot[record.workflow_id] = _embed_bytes(
                record.desc_embedding
            )
            self._reindex_wf_links(record)
            self._index_wf_text(record)
            return record

    def insert_workflows(
        self, records: Sequence[WorkflowRecord]
    ) -> list[WorkflowRecord]:
        """Bulk load under one lock hold; one mutation-counter bump."""
        if not records:
            return []
        with self._lock:
            self._mutations += 1
            for record in records:
                record.workflow_id = self._next_workflow
                record.revision = 1
                self._next_workflow += 1
                self._workflows[record.workflow_id] = record
                self._stamp_shards(
                    self._wf_write_keys(record, inserted=True)
                )
                self._reindex_wf_owners(record)
                self._wf_embed_snapshot[record.workflow_id] = _embed_bytes(
                    record.desc_embedding
                )
                self._reindex_wf_links(record)
                self._index_wf_text(record)
            return list(records)

    def update_workflow(self, record: WorkflowRecord) -> None:
        with self._lock:
            self._mutations += 1
            if record.workflow_id not in self._workflows:
                raise NotFoundError(
                    f"workflow id {record.workflow_id} not found",
                    params={"workflowId": record.workflow_id},
                )
            record.revision += 1
            self._workflows[record.workflow_id] = record
            self._stamp_shards(self._wf_write_keys(record, inserted=False))
            self._reindex_wf_owners(record)
            self._wf_embed_snapshot[record.workflow_id] = _embed_bytes(
                record.desc_embedding
            )
            self._reindex_wf_links(record)
            self._index_wf_text(record)

    def get_workflow(self, workflow_id: int) -> WorkflowRecord | None:
        with self._lock:
            return self._workflows.get(workflow_id)

    def find_workflow_by_entry_point(self, entry_point: str) -> list[WorkflowRecord]:
        with self._lock:
            return [
                wf
                for wf in self._workflows.values()
                if wf.entry_point == entry_point
            ]

    def all_workflows(self) -> list[WorkflowRecord]:
        with self._lock:
            return sorted(self._workflows.values(), key=lambda w: w.workflow_id)

    def workflows_owned_by(self, user_id: int) -> list[WorkflowRecord]:
        with self._lock:
            return [
                self._workflows[workflow_id]
                for workflow_id in sorted(self._owner_workflows.get(user_id, ()))
            ]

    def workflow_ids_owned_by(self, user_id: int) -> list[int]:
        with self._lock:
            return sorted(self._owner_workflows.get(user_id, ()))

    # -- indexed text ranking ---------------------------------------------
    def text_topk_pes(
        self, user_id: int, query: str, k: int | None = None
    ) -> list[tuple[int, float]]:
        with self._lock:
            owned = sorted(self._owner_pes.get(user_id, ()))
            return self._pe_text.topk(owned, query, k)

    def text_topk_workflows(
        self, user_id: int, query: str, k: int | None = None
    ) -> list[tuple[int, float]]:
        with self._lock:
            owned = sorted(self._owner_workflows.get(user_id, ()))
            return self._wf_text.topk(owned, query, k)

    def delete_workflow(self, workflow_id: int) -> None:
        with self._lock:
            self._mutations += 1
            if workflow_id not in self._workflows:
                raise NotFoundError(
                    f"workflow id {workflow_id} not found",
                    params={"workflowId": workflow_id},
                )
            old_owners = set(
                self._wf_owner_snapshot.get(workflow_id, frozenset())
            )
            old_desc = self._wf_embed_snapshot.pop(workflow_id, None)
            self._stamp_shards(
                _wf_stamp_keys(old_owners, set(), old_desc, None)
            )
            del self._workflows[workflow_id]
            self._drop_wf_owners(workflow_id)
            self._drop_wf_links(workflow_id)
            self._wf_text.drop(workflow_id)

    # -- index-shard persistence ------------------------------------------
    def mutation_counter(self) -> int:
        with self._lock:
            return self._mutations

    def save_index_shards(self, shards, counter) -> None:
        with self._lock:
            counter = int(counter)
            self._base_shards = {
                (int(user_id), str(kind)): (
                    counter,
                    np.asarray(ids, dtype=np.int64).copy(),
                    np.asarray(matrix, dtype=np.float32).copy(),
                )
                for (user_id, kind), (ids, matrix) in shards.items()
            }
            self._shard_deltas = {}
            for key in self._base_shards:
                self._shard_stamps[key] = max(
                    self._shard_stamps.get(key, counter), counter
                )

    def shard_stamps(self) -> dict[tuple[int, str], int]:
        with self._lock:
            return dict(self._shard_stamps)

    def upsert_index_shards(self, shards, stamp: int) -> None:
        with self._lock:
            stamp = int(stamp)
            for (user_id, kind), (ids, matrix) in shards.items():
                key = (int(user_id), str(kind))
                self._base_shards[key] = (
                    stamp,
                    np.asarray(ids, dtype=np.int64).copy(),
                    np.asarray(matrix, dtype=np.float32).copy(),
                )
                chain = [
                    delta
                    for delta in self._shard_deltas.get(key, [])
                    if delta[0] > stamp
                ]
                if chain:
                    self._shard_deltas[key] = chain
                else:
                    self._shard_deltas.pop(key, None)
                self._shard_stamps[key] = max(
                    self._shard_stamps.get(key, stamp), stamp
                )

    def append_index_delta(
        self, user_id, kind, op, rids, vectors, counter
    ) -> tuple[int, int]:
        with self._lock:
            key = (int(user_id), str(kind))
            ids = np.asarray(rids, dtype=np.int64).reshape(-1).copy()
            vecs = None
            if vectors is not None:
                vecs = np.asarray(vectors, dtype=np.float32)
                if vecs.ndim == 1:
                    vecs = vecs.reshape(1, -1)
                vecs = vecs.copy()
            chain = self._shard_deltas.setdefault(key, [])
            chain.append((int(counter), str(op), ids, vecs))
            nbytes = sum(
                d[2].nbytes + (0 if d[3] is None else d[3].nbytes)
                for d in chain
            )
            return len(chain), nbytes

    def load_index_shards(self):
        with self._lock:
            shards: dict[tuple[int, str], tuple] = {}
            discarded = 0
            for key in sorted(set(self._base_shards) | set(self._shard_deltas)):
                try:
                    shards[key] = _replay_shard(
                        self._base_shards.get(key),
                        self._shard_deltas.get(key, []),
                    )
                except ValueError:
                    discarded += 1
            return shards, discarded

    def index_shards_meta(self) -> dict:
        with self._lock:
            counters = {counter for counter, _, _ in self._base_shards.values()}
            deltas = sum(len(c) for c in self._shard_deltas.values())
            delta_bytes = sum(
                d[2].nbytes + (0 if d[3] is None else d[3].nbytes)
                for chain in self._shard_deltas.values()
                for d in chain
            )
            return {
                "counter": counters.pop() if len(counters) == 1 else None,
                "shards": len(self._base_shards),
                "rows": sum(
                    len(ids) for _, ids, _ in self._base_shards.values()
                ),
                "deltas": deltas,
                "deltaBytes": delta_bytes,
            }

    def shard_chain_meta(self) -> dict[tuple[int, str], dict[str, int]]:
        with self._lock:
            meta: dict[tuple[int, str], dict[str, int]] = {}
            for key in set(self._base_shards) | set(self._shard_deltas):
                base = self._base_shards.get(key)
                chain = self._shard_deltas.get(key, [])
                tip = chain[-1][0] if chain else (base[0] if base else None)
                meta[key] = {
                    "baseCounter": base[0] if base else None,
                    "rows": len(base[1]) if base else 0,
                    "chainLen": len(chain),
                    "chainBytes": sum(
                        d[2].nbytes + (0 if d[3] is None else d[3].nbytes)
                        for d in chain
                    ),
                    "tip": tip,
                }
            return meta

    # -- idempotency receipts ---------------------------------------------
    def get_write_receipt(
        self, user_id: int, key: str
    ) -> tuple[str, int, dict] | None:
        with self._lock:
            receipt = self._receipts.get((int(user_id), str(key)))
            if receipt is None:
                return None
            fingerprint, status, body, _created = receipt
            return fingerprint, status, json.loads(json.dumps(body))

    def save_write_receipt(
        self,
        user_id: int,
        key: str,
        fingerprint: str,
        status: int,
        body: dict,
        created_at: float = 0.0,
    ) -> None:
        with self._lock:
            # receipts are not registry mutations: no counter bump
            self._receipts[(int(user_id), str(key))] = (
                str(fingerprint),
                int(status),
                json.loads(json.dumps(body)),
                float(created_at),
            )

    def claim_write_receipt(
        self, user_id: int, key: str, fingerprint: str, created_at: float = 0.0
    ) -> bool:
        with self._lock:
            slot = (int(user_id), str(key))
            if slot in self._receipts:
                return False
            self._receipts[slot] = (
                str(fingerprint),
                RECEIPT_PENDING,
                {},
                float(created_at),
            )
            return True

    def finalize_write_receipt(
        self,
        user_id: int,
        key: str,
        fingerprint: str,
        status: int,
        body: dict,
        created_at: float = 0.0,
    ) -> None:
        self.save_write_receipt(
            user_id, key, fingerprint, status, body, created_at
        )

    def release_write_receipt(self, user_id: int, key: str) -> None:
        with self._lock:
            slot = (int(user_id), str(key))
            receipt = self._receipts.get(slot)
            if receipt is not None and receipt[1] == RECEIPT_PENDING:
                del self._receipts[slot]

    def prune_write_receipts(
        self,
        now: float,
        ttl: float | None = None,
        cap: int | None = None,
    ) -> int:
        with self._lock:
            doomed: set[tuple[int, str]] = set()
            if ttl is not None:
                cutoff = float(now) - float(ttl)
                doomed.update(
                    slot
                    for slot, receipt in self._receipts.items()
                    if receipt[1] != RECEIPT_PENDING and receipt[3] <= cutoff
                )
            if cap is not None:
                survivors = sorted(
                    (
                        slot
                        for slot, receipt in self._receipts.items()
                        if receipt[1] != RECEIPT_PENDING
                        and slot not in doomed
                    ),
                    key=lambda slot: (self._receipts[slot][3], slot),
                )
                overflow = len(survivors) - int(cap)
                if overflow > 0:
                    doomed.update(survivors[:overflow])
            for slot in doomed:
                del self._receipts[slot]
            return len(doomed)

    # -- persisted IVF training state -------------------------------------
    def save_ivf_states(self, states, stamps) -> None:
        with self._lock:
            for (user_id, kind), (centroids, lists) in states.items():
                key = (int(user_id), str(kind))
                self._saved_ivf[key] = (
                    _state_stamp(stamps, key),
                    (
                        np.asarray(centroids, dtype=np.float32).copy(),
                        [
                            np.asarray(members, dtype=np.int64).copy()
                            for members in lists
                        ],
                    ),
                )

    def load_ivf_states(self):
        with self._lock:
            stamps = {key: stamp for key, (stamp, _) in self._saved_ivf.items()}
            states = {
                key: (centroids.copy(), [members.copy() for members in lists])
                for key, (_, (centroids, lists)) in self._saved_ivf.items()
            }
            return stamps, states

    # -- persisted HNSW graph state ---------------------------------------
    def save_hnsw_states(self, states, stamps) -> None:
        with self._lock:
            for (user_id, kind), (levels, neighbors) in states.items():
                key = (int(user_id), str(kind))
                self._saved_hnsw[key] = (
                    _state_stamp(stamps, key),
                    (
                        np.asarray(levels, dtype=np.int64).copy(),
                        np.asarray(neighbors, dtype=np.int64).copy(),
                    ),
                )

    def load_hnsw_states(self):
        with self._lock:
            stamps = {
                key: stamp for key, (stamp, _) in self._saved_hnsw.items()
            }
            states = {
                key: (levels.copy(), neighbors.copy())
                for key, (_, (levels, neighbors)) in self._saved_hnsw.items()
            }
            return stamps, states


_SCHEMA = """
CREATE TABLE IF NOT EXISTS users (
    user_id INTEGER PRIMARY KEY AUTOINCREMENT,
    user_name TEXT UNIQUE NOT NULL,
    password_hash TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS pes (
    pe_id INTEGER PRIMARY KEY AUTOINCREMENT,
    pe_name TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    description_origin TEXT NOT NULL DEFAULT 'user',
    pe_code TEXT NOT NULL,
    pe_source TEXT NOT NULL DEFAULT '',
    pe_imports TEXT NOT NULL DEFAULT '[]',
    code_embedding BLOB,
    desc_embedding BLOB,
    owners TEXT NOT NULL DEFAULT '[]',
    revision INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS workflows (
    workflow_id INTEGER PRIMARY KEY AUTOINCREMENT,
    workflow_name TEXT NOT NULL,
    entry_point TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    workflow_code TEXT NOT NULL,
    workflow_source TEXT NOT NULL DEFAULT '',
    pe_ids TEXT NOT NULL DEFAULT '[]',
    desc_embedding BLOB,
    owners TEXT NOT NULL DEFAULT '[]',
    revision INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS idx_pes_name ON pes(pe_name);
CREATE INDEX IF NOT EXISTS idx_wf_entry ON workflows(entry_point);
-- normalized ownership + association (schema v1): ownership filtering
-- happens in SQL against these, the JSON columns stay as the on-record
-- storage format for backward compatibility
CREATE TABLE IF NOT EXISTS pe_owners (
    pe_id INTEGER NOT NULL,
    user_id INTEGER NOT NULL,
    PRIMARY KEY (pe_id, user_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_pe_owners_user ON pe_owners(user_id, pe_id);
CREATE TABLE IF NOT EXISTS workflow_owners (
    workflow_id INTEGER NOT NULL,
    user_id INTEGER NOT NULL,
    PRIMARY KEY (workflow_id, user_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_workflow_owners_user
    ON workflow_owners(user_id, workflow_id);
CREATE TABLE IF NOT EXISTS workflow_pes (
    workflow_id INTEGER NOT NULL,
    pe_id INTEGER NOT NULL,
    PRIMARY KEY (workflow_id, pe_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_workflow_pes_pe ON workflow_pes(pe_id, workflow_id);
-- schema v2: registry metadata (the PE/workflow mutation counter) and
-- persisted index slabs so a warm cold start skips the O(corpus)
-- rebuild; blob columns come last so the meta query never pages them in
CREATE TABLE IF NOT EXISTS registry_meta (
    key TEXT PRIMARY KEY,
    value INTEGER NOT NULL
) WITHOUT ROWID;
INSERT OR IGNORE INTO registry_meta (key, value) VALUES ('mutation_counter', 0);
CREATE TABLE IF NOT EXISTS index_shards (
    user_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    mutation_counter INTEGER NOT NULL,
    dim INTEGER NOT NULL,
    rows INTEGER NOT NULL,
    ids BLOB NOT NULL,
    vectors BLOB NOT NULL,
    PRIMARY KEY (user_id, kind)
);
-- schema v3: idempotency receipts for the v1 write surface (replaying
-- a stored (user, key) returns the recorded response verbatim; a
-- fingerprint mismatch is a 409) and persisted IVF training state
-- (trained centroids + inverted lists stamped with the same mutation
-- counter as the slab snapshot, so approximate cold starts skip the
-- lazy k-means retrain)
-- schema v4 adds created_at: receipts are claimed (INSERT OR IGNORE of
-- a pending row — the cross-process write-serialization point) and
-- garbage-collected by TTL/cap, both keyed on this stamp
CREATE TABLE IF NOT EXISTS write_receipts (
    user_id INTEGER NOT NULL,
    idem_key TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    status INTEGER NOT NULL,
    body TEXT NOT NULL,
    created_at REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (user_id, idem_key)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS ivf_states (
    user_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    mutation_counter INTEGER NOT NULL,
    dim INTEGER NOT NULL,
    nlist INTEGER NOT NULL,
    rows INTEGER NOT NULL,
    centroids BLOB NOT NULL,
    list_sizes BLOB NOT NULL,
    members BLOB NOT NULL,
    PRIMARY KEY (user_id, kind)
);
-- schema v5: indexed text ranking + HNSW graph persistence.  pe_text /
-- wf_text hold the normalized match documents (name_norm doubles as
-- the whole-query substring arm and the FTS name document); the
-- external-content FTS5 tables index them, kept in sync by triggers
-- that fire inside the same DAO mutation transactions.  unicode61
-- with remove_diacritics 0 so documents match the Python-lowercased
-- text byte-for-byte (queries are pure-ASCII scorer words).
CREATE TABLE IF NOT EXISTS pe_text (
    pe_id INTEGER PRIMARY KEY,
    name_norm TEXT NOT NULL,
    desc_doc TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS wf_text (
    workflow_id INTEGER PRIMARY KEY,
    name_norm TEXT NOT NULL,
    desc_doc TEXT NOT NULL
);
CREATE VIRTUAL TABLE IF NOT EXISTS pe_fts USING fts5(
    name_norm, desc_doc,
    content='pe_text', content_rowid='pe_id',
    tokenize='unicode61 remove_diacritics 0'
);
CREATE VIRTUAL TABLE IF NOT EXISTS wf_fts USING fts5(
    name_norm, desc_doc,
    content='wf_text', content_rowid='workflow_id',
    tokenize='unicode61 remove_diacritics 0'
);
CREATE TRIGGER IF NOT EXISTS pe_text_ai AFTER INSERT ON pe_text BEGIN
    INSERT INTO pe_fts(rowid, name_norm, desc_doc)
    VALUES (new.pe_id, new.name_norm, new.desc_doc);
END;
CREATE TRIGGER IF NOT EXISTS pe_text_ad AFTER DELETE ON pe_text BEGIN
    INSERT INTO pe_fts(pe_fts, rowid, name_norm, desc_doc)
    VALUES ('delete', old.pe_id, old.name_norm, old.desc_doc);
END;
CREATE TRIGGER IF NOT EXISTS pe_text_au AFTER UPDATE ON pe_text BEGIN
    INSERT INTO pe_fts(pe_fts, rowid, name_norm, desc_doc)
    VALUES ('delete', old.pe_id, old.name_norm, old.desc_doc);
    INSERT INTO pe_fts(rowid, name_norm, desc_doc)
    VALUES (new.pe_id, new.name_norm, new.desc_doc);
END;
CREATE TRIGGER IF NOT EXISTS wf_text_ai AFTER INSERT ON wf_text BEGIN
    INSERT INTO wf_fts(rowid, name_norm, desc_doc)
    VALUES (new.workflow_id, new.name_norm, new.desc_doc);
END;
CREATE TRIGGER IF NOT EXISTS wf_text_ad AFTER DELETE ON wf_text BEGIN
    INSERT INTO wf_fts(wf_fts, rowid, name_norm, desc_doc)
    VALUES ('delete', old.workflow_id, old.name_norm, old.desc_doc);
END;
CREATE TRIGGER IF NOT EXISTS wf_text_au AFTER UPDATE ON wf_text BEGIN
    INSERT INTO wf_fts(wf_fts, rowid, name_norm, desc_doc)
    VALUES ('delete', old.workflow_id, old.name_norm, old.desc_doc);
    INSERT INTO wf_fts(rowid, name_norm, desc_doc)
    VALUES (new.workflow_id, new.name_norm, new.desc_doc);
END;
CREATE TABLE IF NOT EXISTS hnsw_states (
    user_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    mutation_counter INTEGER NOT NULL,
    rows INTEGER NOT NULL,
    m0 INTEGER NOT NULL,
    levels BLOB NOT NULL,
    neighbors BLOB NOT NULL,
    PRIMARY KEY (user_id, kind)
);
-- schema v6: per-shard freshness stamps + the append-only delta journal
CREATE TABLE IF NOT EXISTS shard_stamps (
    user_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    mutation_counter INTEGER NOT NULL,
    PRIMARY KEY (user_id, kind)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS index_deltas (
    delta_id INTEGER PRIMARY KEY,
    user_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    op TEXT NOT NULL,
    mutation_counter INTEGER NOT NULL,
    dim INTEGER NOT NULL,
    rows INTEGER NOT NULL,
    ids BLOB NOT NULL,
    vectors BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_index_deltas_shard
    ON index_deltas (user_id, kind, delta_id);
"""

#: v1 introduced the normalized join tables (files at version 0 are
#: backfilled from the JSON columns on open); v2 added the mutation
#: counter and the persisted index-shard slabs; v3 added per-record
#: revisions (conditional writes), idempotency receipts and persisted
#: IVF training state; v4 added ``write_receipts.created_at`` for
#: receipt claiming and TTL/cap garbage collection; v5 added the
#: FTS5 text side tables (one-time backfill from the record tables)
#: and persisted HNSW graph state; v6 added per-shard freshness
#: stamps (``shard_stamps``, maintained inside every mutation
#: transaction) and the append-only ``index_deltas`` journal, with
#: ``index_shards`` rows now stamped independently per shard
_SCHEMA_VERSION = 6

#: SQLite caps host parameters per statement (999 before 3.32); chunk
#: IN(...) lists well below that
_IN_CHUNK = 500


def _blob(vec: np.ndarray | None) -> bytes | None:
    if vec is None:
        return None
    return np.asarray(vec, dtype=np.float32).tobytes()


def _unblob(raw: bytes | None) -> np.ndarray | None:
    if raw is None:
        return None
    return np.frombuffer(raw, dtype=np.float32).copy()


def _chunked(ids: Sequence[int]) -> Iterable[Sequence[int]]:
    for start in range(0, len(ids), _IN_CHUNK):
        yield ids[start : start + _IN_CHUNK]


class SqliteDAO(RegistryDAO):
    """SQLite-backed DAO (the durable stand-in for the web MySQL service).

    Ownership and the PE<->workflow association are normalized into
    ``pe_owners`` / ``workflow_owners`` / ``workflow_pes`` (indexed join
    tables) so owner-scoped queries filter in SQL instead of
    deserializing the whole registry.  Files created before schema v1
    are migrated automatically on open (one backfill pass over the JSON
    columns, tracked by ``PRAGMA user_version``).
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        with self._lock, self._conn:
            # WAL lets readers proceed during writes; NORMAL fsyncs once
            # per checkpoint instead of per transaction (both no-ops for
            # :memory: databases)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()

    def _migrate(self) -> None:
        """Step the on-disk schema up to ``_SCHEMA_VERSION`` once.

        v0 -> v1 backfills the join tables from the legacy JSON columns;
        v1 -> v2 only needs the new tables (created by the schema
        script) with the mutation counter seeded at 0 — the empty
        ``index_shards`` table simply means the first attach rebuilds
        and persists; v2 -> v3 adds the ``revision`` columns (existing
        rows start at revision 1) plus the ``write_receipts`` /
        ``ivf_states`` tables from the schema script; v3 -> v4 adds the
        ``created_at`` receipt column (existing receipts stamp 0 — the
        epoch — so a TTL sweep retires them first, the conservative
        choice for rows of unknown age); v4 -> v5 backfills the FTS5
        text side tables from the record tables (afterwards the
        mutation-path triggers keep them in sync); v5 -> v6 seeds the
        per-shard ``shard_stamps`` from a pre-v6 snapshot *only* when
        that snapshot's uniform counter equals the current mutation
        counter — a stale pre-v6 snapshot must not be stamped fresh, so
        it is left unstamped and the first attach pays one full rebuild
        (which then seeds every stamp).
        """
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version >= _SCHEMA_VERSION:
            # row-count drift means a pre-v5 writer touched the file
            # after the side tables were created (it bumps neither the
            # side tables nor user_version) — re-backfill defensively
            if self._text_index_stale():
                self._backfill_text_index()
            return
        if version < 1:
            for row in self._conn.execute("SELECT pe_id, owners FROM pes"):
                self._conn.executemany(
                    "INSERT OR IGNORE INTO pe_owners (pe_id, user_id)"
                    " VALUES (?, ?)",
                    [
                        (row["pe_id"], int(uid))
                        for uid in json.loads(row["owners"])
                    ],
                )
            for row in self._conn.execute(
                "SELECT workflow_id, owners, pe_ids FROM workflows"
            ):
                self._conn.executemany(
                    "INSERT OR IGNORE INTO workflow_owners (workflow_id,"
                    " user_id) VALUES (?, ?)",
                    [
                        (row["workflow_id"], int(uid))
                        for uid in json.loads(row["owners"])
                    ],
                )
                self._conn.executemany(
                    "INSERT OR IGNORE INTO workflow_pes (workflow_id, pe_id)"
                    " VALUES (?, ?)",
                    [
                        (row["workflow_id"], int(pe_id))
                        for pe_id in json.loads(row["pe_ids"])
                    ],
                )
        # v3 revision columns: files created before v3 lack them (the
        # schema script only shapes *new* tables); a fresh database
        # already carries them, so probe instead of trusting the version
        for table in ("pes", "workflows"):
            columns = {
                row["name"]
                for row in self._conn.execute(f"PRAGMA table_info({table})")
            }
            if "revision" not in columns:
                self._conn.execute(
                    f"ALTER TABLE {table} ADD COLUMN revision INTEGER"
                    " NOT NULL DEFAULT 1"
                )
        # v4 created_at: same probe-don't-trust pattern as the revision
        # columns above
        receipt_columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(write_receipts)")
        }
        if "created_at" not in receipt_columns:
            self._conn.execute(
                "ALTER TABLE write_receipts ADD COLUMN created_at REAL"
                " NOT NULL DEFAULT 0"
            )
        # v5 text side tables: one-time backfill from the record tables
        self._backfill_text_index()
        # v6 per-shard stamps: trust a pre-v6 snapshot only when it is
        # provably current (uniform stamp == the live mutation counter);
        # anything else stays unstamped and rebuilds once on attach
        if not self._conn.execute(
            "SELECT 1 FROM shard_stamps LIMIT 1"
        ).fetchone():
            counters = [
                int(row["mutation_counter"])
                for row in self._conn.execute(
                    "SELECT DISTINCT mutation_counter FROM index_shards"
                )
            ]
            current = self._conn.execute(
                "SELECT value FROM registry_meta WHERE key ="
                " 'mutation_counter'"
            ).fetchone()
            if (
                current is not None
                and len(counters) == 1
                and counters[0] == int(current[0])
            ):
                self._conn.execute(
                    "INSERT OR REPLACE INTO shard_stamps"
                    " (user_id, kind, mutation_counter)"
                    " SELECT user_id, kind, mutation_counter"
                    " FROM index_shards"
                )
        self._conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")

    def _text_index_stale(self) -> bool:
        """Best-effort drift check: side-table row counts must match the
        record tables (content drift at equal counts is undetectable
        without hashing every document — accepted, since only a pre-v5
        writer can cause drift at all)."""
        for table, side in (("pes", "pe_text"), ("workflows", "wf_text")):
            rows = self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            docs = self._conn.execute(f"SELECT COUNT(*) FROM {side}").fetchone()[0]
            if rows != docs:
                return True
        return False

    def _backfill_text_index(self) -> None:
        """(Re)build the text side tables and the FTS index from the
        record tables.

        The DELETEs fire the FTS delete triggers for whatever documents
        the side tables currently hold; the trailing ``'rebuild'``
        commands then reset the FTS indexes from the content tables
        regardless, which also covers index/content divergence the
        row-count check cannot see.
        """
        docs = _text_documents()
        self._conn.execute("DELETE FROM pe_text")
        self._conn.execute("DELETE FROM wf_text")
        pe_rows = self._conn.execute(
            "SELECT pe_id, pe_name, description FROM pes"
        ).fetchall()
        self._conn.executemany(
            "INSERT INTO pe_text (pe_id, name_norm, desc_doc) VALUES (?, ?, ?)",
            [
                (row["pe_id"], *docs.fts_pe_document(row["pe_name"], row["description"]))
                for row in pe_rows
            ],
        )
        wf_rows = self._conn.execute(
            "SELECT workflow_id, entry_point, workflow_name, description"
            " FROM workflows"
        ).fetchall()
        self._conn.executemany(
            "INSERT INTO wf_text (workflow_id, name_norm, desc_doc)"
            " VALUES (?, ?, ?)",
            [
                (
                    row["workflow_id"],
                    *docs.fts_workflow_document(
                        row["entry_point"],
                        row["workflow_name"],
                        row["description"],
                    ),
                )
                for row in wf_rows
            ],
        )
        self._conn.execute("INSERT INTO pe_fts(pe_fts) VALUES('rebuild')")
        self._conn.execute("INSERT INTO wf_fts(wf_fts) VALUES('rebuild')")

    def close(self) -> None:
        self._conn.close()

    def _bump_mutation(self) -> int:
        """Advance the registry mutation counter (inside the caller's
        transaction) and return the bumped value — the stamp the
        caller's :meth:`_stamp_shards` marks changed shards with."""
        self._conn.execute(
            "UPDATE registry_meta SET value = value + 1"
            " WHERE key = 'mutation_counter'"
        )
        return int(
            self._conn.execute(
                "SELECT value FROM registry_meta WHERE key ="
                " 'mutation_counter'"
            ).fetchone()[0]
        )

    def _stamp_shards(
        self, keys: Iterable[tuple[int, str]], counter: int
    ) -> None:
        """Stamp the shards a mutation changed (same transaction), so
        per-shard freshness survives foreign raw-DAO writers."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO shard_stamps"
            " (user_id, kind, mutation_counter) VALUES (?, ?, ?)",
            [(int(uid), str(kind), int(counter)) for uid, kind in keys],
        )

    def _pe_old_state(
        self, pe_id: int
    ) -> tuple[set[int], bytes | None, bytes | None] | None:
        """The committed ``(owners, desc_bytes, code_bytes)`` of a PE —
        what a mutation diffs against to decide which shards it stamps."""
        row = self._conn.execute(
            "SELECT owners, desc_embedding, code_embedding FROM pes"
            " WHERE pe_id=?",
            (int(pe_id),),
        ).fetchone()
        if row is None:
            return None
        return (
            {int(uid) for uid in json.loads(row["owners"])},
            row["desc_embedding"],
            row["code_embedding"],
        )

    def _wf_old_state(
        self, workflow_id: int
    ) -> tuple[set[int], bytes | None] | None:
        row = self._conn.execute(
            "SELECT owners, desc_embedding FROM workflows"
            " WHERE workflow_id=?",
            (int(workflow_id),),
        ).fetchone()
        if row is None:
            return None
        return (
            {int(uid) for uid in json.loads(row["owners"])},
            row["desc_embedding"],
        )

    # -- join-table sync ---------------------------------------------------
    def _sync_pe_owners(self, pe_id: int, owners: Iterable[int]) -> None:
        self._conn.execute("DELETE FROM pe_owners WHERE pe_id=?", (pe_id,))
        self._conn.executemany(
            "INSERT OR IGNORE INTO pe_owners (pe_id, user_id) VALUES (?, ?)",
            [(pe_id, int(uid)) for uid in owners],
        )

    def _sync_wf_owners(self, workflow_id: int, owners: Iterable[int]) -> None:
        self._conn.execute(
            "DELETE FROM workflow_owners WHERE workflow_id=?", (workflow_id,)
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO workflow_owners (workflow_id, user_id)"
            " VALUES (?, ?)",
            [(workflow_id, int(uid)) for uid in owners],
        )

    def _sync_wf_links(self, workflow_id: int, pe_ids: Iterable[int]) -> None:
        self._conn.execute(
            "DELETE FROM workflow_pes WHERE workflow_id=?", (workflow_id,)
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO workflow_pes (workflow_id, pe_id)"
            " VALUES (?, ?)",
            [(workflow_id, int(pe_id)) for pe_id in pe_ids],
        )

    # -- text side tables (FTS5 content) -----------------------------------
    # explicit DELETE + INSERT rather than INSERT OR REPLACE: REPLACE's
    # implicit delete skips the FTS delete trigger unless
    # recursive_triggers is on, which would corrupt the external-content
    # index
    def _sync_pe_text(self, record: PERecord) -> None:
        name_norm, desc_doc = _text_documents().fts_pe_document(
            record.pe_name, record.description
        )
        self._conn.execute("DELETE FROM pe_text WHERE pe_id=?", (record.pe_id,))
        self._conn.execute(
            "INSERT INTO pe_text (pe_id, name_norm, desc_doc) VALUES (?, ?, ?)",
            (record.pe_id, name_norm, desc_doc),
        )

    def _sync_wf_text(self, record: WorkflowRecord) -> None:
        name_norm, desc_doc = _text_documents().fts_workflow_document(
            record.entry_point, record.workflow_name, record.description
        )
        self._conn.execute(
            "DELETE FROM wf_text WHERE workflow_id=?", (record.workflow_id,)
        )
        self._conn.execute(
            "INSERT INTO wf_text (workflow_id, name_norm, desc_doc)"
            " VALUES (?, ?, ?)",
            (record.workflow_id, name_norm, desc_doc),
        )

    # -- users ------------------------------------------------------------
    def insert_user(self, name: str, password_hash: str) -> UserRecord:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO users (user_name, password_hash) VALUES (?, ?)",
                (name, password_hash),
            )
            return UserRecord(int(cursor.lastrowid), name, password_hash)

    def get_user_by_name(self, name: str) -> UserRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM users WHERE user_name = ?", (name,)
            ).fetchone()
        if row is None:
            return None
        return UserRecord(row["user_id"], row["user_name"], row["password_hash"])

    def all_users(self) -> list[UserRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM users ORDER BY user_id"
            ).fetchall()
        return [
            UserRecord(r["user_id"], r["user_name"], r["password_hash"])
            for r in rows
        ]

    # -- PEs ---------------------------------------------------------------
    @staticmethod
    def _pe_from_row(row: sqlite3.Row) -> PERecord:
        return PERecord(
            pe_id=row["pe_id"],
            pe_name=row["pe_name"],
            description=row["description"],
            description_origin=row["description_origin"],
            pe_code=row["pe_code"],
            pe_source=row["pe_source"],
            pe_imports=json.loads(row["pe_imports"]),
            code_embedding=_unblob(row["code_embedding"]),
            desc_embedding=_unblob(row["desc_embedding"]),
            owners=set(json.loads(row["owners"])),
            revision=int(row["revision"]),
        )

    @staticmethod
    def _pe_params(record: PERecord) -> tuple:
        return (
            record.pe_name,
            record.description,
            record.description_origin,
            record.pe_code,
            record.pe_source,
            json.dumps(record.pe_imports),
            _blob(record.code_embedding),
            _blob(record.desc_embedding),
            json.dumps(sorted(record.owners)),
        )

    def insert_pe(self, record: PERecord) -> PERecord:
        with self._lock, self._conn:
            counter = self._bump_mutation()
            record.revision = 1
            cursor = self._conn.execute(
                """INSERT INTO pes (pe_name, description, description_origin,
                   pe_code, pe_source, pe_imports, code_embedding,
                   desc_embedding, owners, revision)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 1)""",
                self._pe_params(record),
            )
            record.pe_id = int(cursor.lastrowid)
            self._stamp_shards(
                _pe_stamp_keys(
                    set(), set(record.owners),
                    None, _embed_bytes(record.desc_embedding),
                    None, _embed_bytes(record.code_embedding),
                ),
                counter,
            )
            self._sync_pe_owners(record.pe_id, record.owners)
            self._sync_pe_text(record)
            return record

    def insert_pes(self, records: Sequence[PERecord]) -> list[PERecord]:
        """Bulk load: two ``executemany`` round trips for any batch size."""
        if not records:
            return []
        with self._lock, self._conn:
            counter = self._bump_mutation()
            keys: set[tuple[int, str]] = set()
            for record in records:
                keys |= _pe_stamp_keys(
                    set(), set(record.owners),
                    None, _embed_bytes(record.desc_embedding),
                    None, _embed_bytes(record.code_embedding),
                )
            self._stamp_shards(keys, counter)
            base = self._conn.execute(
                "SELECT COALESCE(MAX(pe_id), 0) FROM pes"
            ).fetchone()[0]
            for offset, record in enumerate(records, start=1):
                record.pe_id = base + offset
                record.revision = 1
            self._conn.executemany(
                """INSERT INTO pes (pe_id, pe_name, description,
                   description_origin, pe_code, pe_source, pe_imports,
                   code_embedding, desc_embedding, owners, revision)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 1)""",
                [(r.pe_id, *self._pe_params(r)) for r in records],
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO pe_owners (pe_id, user_id) VALUES (?, ?)",
                [
                    (r.pe_id, int(uid))
                    for r in records
                    for uid in r.owners
                ],
            )
            docs = _text_documents()
            self._conn.executemany(
                "INSERT INTO pe_text (pe_id, name_norm, desc_doc)"
                " VALUES (?, ?, ?)",
                [
                    (r.pe_id, *docs.fts_pe_document(r.pe_name, r.description))
                    for r in records
                ],
            )
            return list(records)

    def update_pe(self, record: PERecord) -> None:
        with self._lock, self._conn:
            counter = self._bump_mutation()
            old = self._pe_old_state(record.pe_id)
            cursor = self._conn.execute(
                """UPDATE pes SET pe_name=?, description=?,
                   description_origin=?, pe_code=?, pe_source=?,
                   pe_imports=?, code_embedding=?, desc_embedding=?, owners=?,
                   revision=? WHERE pe_id=?""",
                (*self._pe_params(record), record.revision + 1, record.pe_id),
            )
            if cursor.rowcount == 0:
                raise NotFoundError(
                    f"PE id {record.pe_id} not found", params={"peId": record.pe_id}
                )
            record.revision += 1
            old_owners, old_desc, old_code = old
            self._stamp_shards(
                _pe_stamp_keys(
                    old_owners, set(record.owners),
                    old_desc, _embed_bytes(record.desc_embedding),
                    old_code, _embed_bytes(record.code_embedding),
                ),
                counter,
            )
            self._sync_pe_owners(record.pe_id, record.owners)
            self._sync_pe_text(record)

    def get_pe(self, pe_id: int) -> PERecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM pes WHERE pe_id = ?", (pe_id,)
            ).fetchone()
        return None if row is None else self._pe_from_row(row)

    def get_pes(self, pe_ids: Sequence[int]) -> list[PERecord]:
        ids = [int(pe_id) for pe_id in pe_ids]
        by_id: dict[int, PERecord] = {}
        with self._lock:
            for chunk in _chunked(ids):
                placeholders = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT * FROM pes WHERE pe_id IN ({placeholders})",
                    tuple(chunk),
                ).fetchall()
                for row in rows:
                    by_id[row["pe_id"]] = self._pe_from_row(row)
        return [by_id[pe_id] for pe_id in ids if pe_id in by_id]

    def find_pe_by_name(self, name: str) -> list[PERecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM pes WHERE pe_name = ? ORDER BY pe_id", (name,)
            ).fetchall()
        return [self._pe_from_row(r) for r in rows]

    def all_pes(self) -> list[PERecord]:
        with self._lock:
            rows = self._conn.execute("SELECT * FROM pes ORDER BY pe_id").fetchall()
        return [self._pe_from_row(r) for r in rows]

    def pes_owned_by(self, user_id: int) -> list[PERecord]:
        with self._lock:
            rows = self._conn.execute(
                """SELECT p.* FROM pes p
                   JOIN pe_owners o ON o.pe_id = p.pe_id
                   WHERE o.user_id = ? ORDER BY p.pe_id""",
                (int(user_id),),
            ).fetchall()
        return [self._pe_from_row(r) for r in rows]

    def pe_ids_owned_by(self, user_id: int) -> list[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT pe_id FROM pe_owners WHERE user_id = ? ORDER BY pe_id",
                (int(user_id),),
            ).fetchall()
        return [row["pe_id"] for row in rows]

    #: OR-chain chunk size for the legacy candidate filter — wide
    #: pattern sets run as multiple fixed-size queries unioned by id,
    #: so one statement never approaches SQLite's host-parameter limit
    #: (there is no pattern-count cap or full-listing fallback anymore)
    _LIKE_CHUNK = 32

    @staticmethod
    def _like(pattern: str) -> str:
        """``%pattern%`` with LIKE metacharacters escaped (ESCAPE '\\')."""
        escaped = (
            pattern.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
        )
        return f"%{escaped}%"

    # -- indexed text ranking (FTS5/BM25 + substring arm) ------------------
    def _text_topk(
        self,
        user_id: int,
        query: str,
        k: int | None,
        *,
        fts: str,
        side: str,
        owners: str,
        id_col: str,
    ) -> list[tuple[int, float]]:
        """One owner-joined SQL query: BM25 goodness (``-bm25()``) from
        the FTS index plus the whole-query substring bonus on
        ``name_norm``, ranked ``(-score, id)`` and LIMITed to ``k`` —
        no record rows are ever materialized here."""
        needle = query.lower().strip()
        if not needle:
            return []
        terms = _text_documents().match_terms(query)
        params: dict = {"uid": int(user_id), "like": self._like(needle)}
        limit = ""
        if k is not None:
            params["k"] = int(k)
            limit = " LIMIT :k"
        if terms:
            params["match"] = " OR ".join(f'"{term}"' for term in terms)
            sql = f"""
                SELECT {id_col} AS entity_id, score FROM (
                    SELECT o.{id_col} AS {id_col},
                           COALESCE(f.goodness, 0.0)
                           + (CASE WHEN t.name_norm LIKE :like ESCAPE '\\'
                              THEN {_NAME_SUBSTRING_BONUS} ELSE 0.0 END)
                           AS score
                    FROM {owners} o
                    JOIN {side} t ON t.{id_col} = o.{id_col}
                    LEFT JOIN (
                        SELECT rowid AS rid, -bm25({fts}) AS goodness
                        FROM {fts} WHERE {fts} MATCH :match
                    ) f ON f.rid = o.{id_col}
                    WHERE o.user_id = :uid
                )
                WHERE score > 0.0
                ORDER BY score DESC, {id_col} ASC{limit}
            """
        else:
            # no scorer words (digits/punctuation query): substring arm
            # only, every hit carries the flat bonus, ids break the tie
            sql = f"""
                SELECT o.{id_col} AS entity_id,
                       {_NAME_SUBSTRING_BONUS} AS score
                FROM {owners} o
                JOIN {side} t ON t.{id_col} = o.{id_col}
                WHERE o.user_id = :uid
                  AND t.name_norm LIKE :like ESCAPE '\\'
                ORDER BY o.{id_col} ASC{limit}
            """
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [(int(row["entity_id"]), float(row["score"])) for row in rows]

    def text_topk_pes(
        self, user_id: int, query: str, k: int | None = None
    ) -> list[tuple[int, float]]:
        return self._text_topk(
            user_id,
            query,
            k,
            fts="pe_fts",
            side="pe_text",
            owners="pe_owners",
            id_col="pe_id",
        )

    def text_topk_workflows(
        self, user_id: int, query: str, k: int | None = None
    ) -> list[tuple[int, float]]:
        return self._text_topk(
            user_id,
            query,
            k,
            fts="wf_fts",
            side="wf_text",
            owners="workflow_owners",
            id_col="workflow_id",
        )

    def pes_owned_by_matching(
        self, user_id: int, patterns: Sequence[str] | None
    ) -> list[PERecord]:
        """Owner-joined SQL candidate filter for the *legacy* text route.

        Only the byte-identical Table-3 parity adapter still calls this
        — the v1 text path ranks inside the FTS index via
        :meth:`text_topk_pes` and never builds patterns.  It survives
        because the legacy contract is the exact Python-scorer output,
        which wants the exact candidate superset from
        :func:`repro.search.text_search.candidate_patterns` (every
        scorer match contains at least one pattern as a substring).
        The escaped case-insensitive LIKE OR-chain runs in fixed-size
        chunks with the chunk results unioned by id, then hydrates once
        ascending.
        """
        if not patterns:  # None or empty: cannot filter
            return self.pes_owned_by(user_id)
        ids: set[int] = set()
        with self._lock:
            for start in range(0, len(patterns), self._LIKE_CHUNK):
                chunk = patterns[start : start + self._LIKE_CHUNK]
                clause = " OR ".join(
                    [
                        "p.pe_name LIKE ? ESCAPE '\\'"
                        " OR p.description LIKE ? ESCAPE '\\'"
                    ]
                    * len(chunk)
                )
                params: list = [int(user_id)]
                for pattern in chunk:
                    like = self._like(pattern)
                    params.extend((like, like))
                rows = self._conn.execute(
                    f"""SELECT p.pe_id FROM pes p
                        JOIN pe_owners o ON o.pe_id = p.pe_id
                        WHERE o.user_id = ? AND ({clause})""",
                    params,
                ).fetchall()
                ids.update(row["pe_id"] for row in rows)
        return self.get_pes(sorted(ids))

    def delete_pe(self, pe_id: int) -> None:
        with self._lock, self._conn:
            counter = self._bump_mutation()
            old = self._pe_old_state(pe_id)
            if old is not None:
                old_owners, old_desc, old_code = old
                self._stamp_shards(
                    _pe_stamp_keys(
                        old_owners, set(), old_desc, None, old_code, None
                    ),
                    counter,
                )
            cursor = self._conn.execute("DELETE FROM pes WHERE pe_id=?", (pe_id,))
            if cursor.rowcount == 0:
                raise NotFoundError(f"PE id {pe_id} not found", params={"peId": pe_id})
            self._conn.execute("DELETE FROM pe_owners WHERE pe_id=?", (pe_id,))
            self._conn.execute("DELETE FROM pe_text WHERE pe_id=?", (pe_id,))
            # back-reference from the link table: touch only the
            # workflows that actually reference this PE, not all rows
            backrefs = self._conn.execute(
                "SELECT workflow_id FROM workflow_pes WHERE pe_id=?", (pe_id,)
            ).fetchall()
            for backref in backrefs:
                row = self._conn.execute(
                    "SELECT pe_ids FROM workflows WHERE workflow_id=?",
                    (backref["workflow_id"],),
                ).fetchone()
                if row is None:
                    continue
                pe_ids = json.loads(row["pe_ids"])
                if pe_id in pe_ids:
                    pe_ids.remove(pe_id)
                    self._conn.execute(
                        "UPDATE workflows SET pe_ids=? WHERE workflow_id=?",
                        (json.dumps(pe_ids), backref["workflow_id"]),
                    )
            self._conn.execute("DELETE FROM workflow_pes WHERE pe_id=?", (pe_id,))

    # -- workflows -----------------------------------------------------------
    @staticmethod
    def _wf_from_row(row: sqlite3.Row) -> WorkflowRecord:
        return WorkflowRecord(
            workflow_id=row["workflow_id"],
            workflow_name=row["workflow_name"],
            entry_point=row["entry_point"],
            description=row["description"],
            workflow_code=row["workflow_code"],
            workflow_source=row["workflow_source"],
            pe_ids=json.loads(row["pe_ids"]),
            desc_embedding=_unblob(row["desc_embedding"]),
            owners=set(json.loads(row["owners"])),
            revision=int(row["revision"]),
        )

    @staticmethod
    def _wf_params(record: WorkflowRecord) -> tuple:
        return (
            record.workflow_name,
            record.entry_point,
            record.description,
            record.workflow_code,
            record.workflow_source,
            json.dumps(record.pe_ids),
            _blob(record.desc_embedding),
            json.dumps(sorted(record.owners)),
        )

    def insert_workflow(self, record: WorkflowRecord) -> WorkflowRecord:
        with self._lock, self._conn:
            counter = self._bump_mutation()
            record.revision = 1
            cursor = self._conn.execute(
                """INSERT INTO workflows (workflow_name, entry_point,
                   description, workflow_code, workflow_source, pe_ids,
                   desc_embedding, owners, revision)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, 1)""",
                self._wf_params(record),
            )
            record.workflow_id = int(cursor.lastrowid)
            self._stamp_shards(
                _wf_stamp_keys(
                    set(), set(record.owners),
                    None, _embed_bytes(record.desc_embedding),
                ),
                counter,
            )
            self._sync_wf_owners(record.workflow_id, record.owners)
            self._sync_wf_links(record.workflow_id, record.pe_ids)
            self._sync_wf_text(record)
            return record

    def insert_workflows(
        self, records: Sequence[WorkflowRecord]
    ) -> list[WorkflowRecord]:
        """Bulk load: three ``executemany`` round trips for any batch size."""
        if not records:
            return []
        with self._lock, self._conn:
            counter = self._bump_mutation()
            keys: set[tuple[int, str]] = set()
            for record in records:
                keys |= _wf_stamp_keys(
                    set(), set(record.owners),
                    None, _embed_bytes(record.desc_embedding),
                )
            self._stamp_shards(keys, counter)
            base = self._conn.execute(
                "SELECT COALESCE(MAX(workflow_id), 0) FROM workflows"
            ).fetchone()[0]
            for offset, record in enumerate(records, start=1):
                record.workflow_id = base + offset
                record.revision = 1
            self._conn.executemany(
                """INSERT INTO workflows (workflow_id, workflow_name,
                   entry_point, description, workflow_code, workflow_source,
                   pe_ids, desc_embedding, owners, revision)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 1)""",
                [(r.workflow_id, *self._wf_params(r)) for r in records],
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO workflow_owners (workflow_id, user_id)"
                " VALUES (?, ?)",
                [
                    (r.workflow_id, int(uid))
                    for r in records
                    for uid in r.owners
                ],
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO workflow_pes (workflow_id, pe_id)"
                " VALUES (?, ?)",
                [
                    (r.workflow_id, int(pe_id))
                    for r in records
                    for pe_id in r.pe_ids
                ],
            )
            docs = _text_documents()
            self._conn.executemany(
                "INSERT INTO wf_text (workflow_id, name_norm, desc_doc)"
                " VALUES (?, ?, ?)",
                [
                    (
                        r.workflow_id,
                        *docs.fts_workflow_document(
                            r.entry_point, r.workflow_name, r.description
                        ),
                    )
                    for r in records
                ],
            )
            return list(records)

    def update_workflow(self, record: WorkflowRecord) -> None:
        with self._lock, self._conn:
            counter = self._bump_mutation()
            old = self._wf_old_state(record.workflow_id)
            cursor = self._conn.execute(
                """UPDATE workflows SET workflow_name=?, entry_point=?,
                   description=?, workflow_code=?, workflow_source=?,
                   pe_ids=?, desc_embedding=?, owners=?, revision=?
                   WHERE workflow_id=?""",
                (
                    *self._wf_params(record),
                    record.revision + 1,
                    record.workflow_id,
                ),
            )
            if cursor.rowcount == 0:
                raise NotFoundError(
                    f"workflow id {record.workflow_id} not found",
                    params={"workflowId": record.workflow_id},
                )
            record.revision += 1
            old_owners, old_desc = old
            self._stamp_shards(
                _wf_stamp_keys(
                    old_owners, set(record.owners),
                    old_desc, _embed_bytes(record.desc_embedding),
                ),
                counter,
            )
            self._sync_wf_owners(record.workflow_id, record.owners)
            self._sync_wf_links(record.workflow_id, record.pe_ids)
            self._sync_wf_text(record)

    def get_workflow(self, workflow_id: int) -> WorkflowRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM workflows WHERE workflow_id = ?", (workflow_id,)
            ).fetchone()
        return None if row is None else self._wf_from_row(row)

    def get_workflows(self, workflow_ids: Sequence[int]) -> list[WorkflowRecord]:
        ids = [int(workflow_id) for workflow_id in workflow_ids]
        by_id: dict[int, WorkflowRecord] = {}
        with self._lock:
            for chunk in _chunked(ids):
                placeholders = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT * FROM workflows WHERE workflow_id"
                    f" IN ({placeholders})",
                    tuple(chunk),
                ).fetchall()
                for row in rows:
                    by_id[row["workflow_id"]] = self._wf_from_row(row)
        return [by_id[wf_id] for wf_id in ids if wf_id in by_id]

    def find_workflow_by_entry_point(self, entry_point: str) -> list[WorkflowRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workflows WHERE entry_point = ? ORDER BY workflow_id",
                (entry_point,),
            ).fetchall()
        return [self._wf_from_row(r) for r in rows]

    def all_workflows(self) -> list[WorkflowRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workflows ORDER BY workflow_id"
            ).fetchall()
        return [self._wf_from_row(r) for r in rows]

    def workflows_owned_by(self, user_id: int) -> list[WorkflowRecord]:
        with self._lock:
            rows = self._conn.execute(
                """SELECT w.* FROM workflows w
                   JOIN workflow_owners o ON o.workflow_id = w.workflow_id
                   WHERE o.user_id = ? ORDER BY w.workflow_id""",
                (int(user_id),),
            ).fetchall()
        return [self._wf_from_row(r) for r in rows]

    def workflow_ids_owned_by(self, user_id: int) -> list[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT workflow_id FROM workflow_owners WHERE user_id = ?"
                " ORDER BY workflow_id",
                (int(user_id),),
            ).fetchall()
        return [row["workflow_id"] for row in rows]

    def workflows_owned_by_matching(
        self, user_id: int, patterns: Sequence[str] | None
    ) -> list[WorkflowRecord]:
        """Legacy-route candidate filter over entry/name/description;
        chunked like :meth:`pes_owned_by_matching`."""
        if not patterns:  # None or empty: cannot filter
            return self.workflows_owned_by(user_id)
        ids: set[int] = set()
        with self._lock:
            for start in range(0, len(patterns), self._LIKE_CHUNK):
                chunk = patterns[start : start + self._LIKE_CHUNK]
                clause = " OR ".join(
                    [
                        "w.entry_point LIKE ? ESCAPE '\\'"
                        " OR w.workflow_name LIKE ? ESCAPE '\\'"
                        " OR w.description LIKE ? ESCAPE '\\'"
                    ]
                    * len(chunk)
                )
                params: list = [int(user_id)]
                for pattern in chunk:
                    like = self._like(pattern)
                    params.extend((like, like, like))
                rows = self._conn.execute(
                    f"""SELECT w.workflow_id FROM workflows w
                        JOIN workflow_owners o
                          ON o.workflow_id = w.workflow_id
                        WHERE o.user_id = ? AND ({clause})""",
                    params,
                ).fetchall()
                ids.update(row["workflow_id"] for row in rows)
        return self.get_workflows(sorted(ids))

    def delete_workflow(self, workflow_id: int) -> None:
        with self._lock, self._conn:
            counter = self._bump_mutation()
            old = self._wf_old_state(workflow_id)
            if old is not None:
                old_owners, old_desc = old
                self._stamp_shards(
                    _wf_stamp_keys(old_owners, set(), old_desc, None),
                    counter,
                )
            cursor = self._conn.execute(
                "DELETE FROM workflows WHERE workflow_id=?", (workflow_id,)
            )
            if cursor.rowcount == 0:
                raise NotFoundError(
                    f"workflow id {workflow_id} not found",
                    params={"workflowId": workflow_id},
                )
            self._conn.execute(
                "DELETE FROM workflow_owners WHERE workflow_id=?", (workflow_id,)
            )
            self._conn.execute(
                "DELETE FROM workflow_pes WHERE workflow_id=?", (workflow_id,)
            )
            self._conn.execute(
                "DELETE FROM wf_text WHERE workflow_id=?", (workflow_id,)
            )

    # -- index-shard persistence ------------------------------------------
    def mutation_counter(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM registry_meta WHERE key='mutation_counter'"
            ).fetchone()
        return 0 if row is None else int(row["value"])

    @staticmethod
    def _shard_payload_row(user_id, kind, counter, ids, matrix):
        ids = np.asarray(ids, dtype=np.int64)
        matrix = np.asarray(matrix, dtype=np.float32)
        return (
            int(user_id),
            str(kind),
            int(counter),
            int(matrix.shape[1]) if matrix.ndim == 2 else 0,
            int(ids.shape[0]),
            ids.tobytes(),
            matrix.tobytes(),
        )

    def save_index_shards(
        self,
        shards: Mapping[tuple[int, str], tuple[np.ndarray, np.ndarray]],
        counter: int,
    ) -> None:
        """Replace the slab snapshot wholesale, stamped at ``counter``.

        Slabs are the stacked float32 rows and int64 ids exactly as
        :meth:`~repro.search.index.VectorIndex.export_shards` emits them
        — one row per table entry per (user, kind), so a fresh attach
        reads them back with zero record deserialization.  Being a
        truth assertion for the *whole* index, it also drops every
        journaled delta and stamps each written shard.
        """
        payload = [
            self._shard_payload_row(user_id, kind, counter, ids, matrix)
            for (user_id, kind), (ids, matrix) in shards.items()
        ]
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM index_shards")
            self._conn.execute("DELETE FROM index_deltas")
            self._conn.executemany(
                """INSERT INTO index_shards
                   (user_id, kind, mutation_counter, dim, rows, ids, vectors)
                   VALUES (?, ?, ?, ?, ?, ?, ?)""",
                payload,
            )
            self._conn.executemany(
                "INSERT INTO shard_stamps (user_id, kind, mutation_counter)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(user_id, kind) DO UPDATE SET mutation_counter ="
                " MAX(mutation_counter, excluded.mutation_counter)",
                [(row[0], row[1], int(counter)) for row in payload],
            )

    def shard_stamps(self) -> dict[tuple[int, str], int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT user_id, kind, mutation_counter FROM shard_stamps"
            ).fetchall()
        return {
            (int(row["user_id"]), str(row["kind"])): int(
                row["mutation_counter"]
            )
            for row in rows
        }

    def upsert_index_shards(
        self,
        shards: Mapping[tuple[int, str], tuple[np.ndarray, np.ndarray]],
        stamp: int,
    ) -> None:
        """Per-shard base replace + compaction fold at ``stamp``.

        Only the given shards are touched: each gets its base slab
        replaced, its deltas with counter ``<= stamp`` dropped (folded
        into the new base), and its expected stamp raised to at least
        ``stamp`` — deltas above the stamp (a racing writer) survive
        and correctly leave the shard stale.
        """
        stamp = int(stamp)
        payload = [
            self._shard_payload_row(user_id, kind, stamp, ids, matrix)
            for (user_id, kind), (ids, matrix) in shards.items()
        ]
        with self._lock, self._conn:
            self._conn.executemany(
                """INSERT OR REPLACE INTO index_shards
                   (user_id, kind, mutation_counter, dim, rows, ids, vectors)
                   VALUES (?, ?, ?, ?, ?, ?, ?)""",
                payload,
            )
            self._conn.executemany(
                "DELETE FROM index_deltas WHERE user_id=? AND kind=?"
                " AND mutation_counter<=?",
                [(row[0], row[1], stamp) for row in payload],
            )
            self._conn.executemany(
                "INSERT INTO shard_stamps (user_id, kind, mutation_counter)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(user_id, kind) DO UPDATE SET mutation_counter ="
                " MAX(mutation_counter, excluded.mutation_counter)",
                [(row[0], row[1], stamp) for row in payload],
            )

    def append_index_delta(
        self,
        user_id: int,
        kind: str,
        op: str,
        rids: np.ndarray,
        vectors: np.ndarray | None,
        counter: int,
    ) -> tuple[int, int]:
        ids = np.asarray(rids, dtype=np.int64).reshape(-1)
        if vectors is None:
            vecs = np.empty((ids.shape[0], 0), dtype=np.float32)
        else:
            vecs = np.asarray(vectors, dtype=np.float32)
            if vecs.ndim == 1:
                vecs = vecs.reshape(1, -1)
        with self._lock, self._conn:
            self._conn.execute(
                """INSERT INTO index_deltas
                   (user_id, kind, op, mutation_counter, dim, rows, ids,
                    vectors)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?)""",
                (
                    int(user_id),
                    str(kind),
                    str(op),
                    int(counter),
                    int(vecs.shape[1]),
                    int(ids.shape[0]),
                    ids.tobytes(),
                    vecs.tobytes(),
                ),
            )
            row = self._conn.execute(
                "SELECT COUNT(*) AS n,"
                " COALESCE(SUM(LENGTH(ids) + LENGTH(vectors)), 0) AS b"
                " FROM index_deltas WHERE user_id=? AND kind=?",
                (int(user_id), str(kind)),
            ).fetchone()
        return int(row["n"]), int(row["b"])

    def load_index_shards(
        self,
    ) -> tuple[
        dict[tuple[int, str], tuple[np.ndarray, np.ndarray, int]], int
    ]:
        """Replay each base slab through its delta chain, per shard.

        A corrupt blob, torn row, or non-monotonic chain discards only
        that shard (counted in ``discarded``) — never the whole
        snapshot.
        """
        with self._lock:
            base_rows = self._conn.execute(
                "SELECT user_id, kind, mutation_counter, dim, rows, ids,"
                " vectors FROM index_shards"
            ).fetchall()
            delta_rows = self._conn.execute(
                "SELECT user_id, kind, op, mutation_counter, dim, rows, ids,"
                " vectors FROM index_deltas ORDER BY delta_id"
            ).fetchall()
        bases: dict[tuple[int, str], tuple] = {}
        bad: set[tuple[int, str]] = set()
        for row in base_rows:
            key = (int(row["user_id"]), str(row["kind"]))
            try:
                ids, matrix = self._decode_slab_row(row)
            except ValueError:
                bad.add(key)
                continue
            bases[key] = (int(row["mutation_counter"]), ids, matrix)
        chains: dict[tuple[int, str], list] = {}
        for row in delta_rows:
            key = (int(row["user_id"]), str(row["kind"]))
            try:
                ids, vecs = self._decode_slab_row(row)
            except ValueError:
                bad.add(key)
                continue
            chains.setdefault(key, []).append(
                (
                    int(row["mutation_counter"]),
                    str(row["op"]),
                    ids,
                    vecs if str(row["op"]) == _OP_ADD else None,
                )
            )
        shards: dict[tuple[int, str], tuple] = {}
        discarded = 0
        for key in sorted(set(bases) | set(chains) | bad):
            if key in bad:
                discarded += 1
                continue
            try:
                shards[key] = _replay_shard(
                    bases.get(key), chains.get(key, [])
                )
            except ValueError:
                discarded += 1
        return shards, discarded

    @staticmethod
    def _decode_slab_row(row) -> tuple[np.ndarray, np.ndarray]:
        """ids + 2D float32 matrix from one base/delta row, validated
        against the declared rows/dim; raises ``ValueError`` on any
        truncated or inconsistent blob."""
        rows, dim = int(row["rows"]), int(row["dim"])
        if rows < 0 or dim < 0:
            raise ValueError("negative shape")
        ids_blob, vec_blob = row["ids"], row["vectors"]
        if len(ids_blob) != rows * 8 or len(vec_blob) != rows * dim * 4:
            raise ValueError("truncated blob")
        ids = np.frombuffer(ids_blob, dtype=np.int64).copy()
        matrix = (
            np.frombuffer(vec_blob, dtype=np.float32)
            .reshape(rows, dim)
            .copy()
        )
        return ids, matrix

    def index_shards_meta(self) -> dict[str, int | None]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT mutation_counter, rows FROM index_shards"
            ).fetchall()
            delta = self._conn.execute(
                "SELECT COUNT(*) AS n,"
                " COALESCE(SUM(LENGTH(ids) + LENGTH(vectors)), 0) AS b"
                " FROM index_deltas"
            ).fetchone()
        counters = {row["mutation_counter"] for row in rows}
        return {
            "counter": counters.pop() if len(counters) == 1 else None,
            "shards": len(rows),
            "rows": sum(row["rows"] for row in rows),
            "deltas": int(delta["n"]),
            "deltaBytes": int(delta["b"]),
        }

    def shard_chain_meta(self) -> dict[tuple[int, str], dict[str, int]]:
        with self._lock:
            base_rows = self._conn.execute(
                "SELECT user_id, kind, mutation_counter, rows"
                " FROM index_shards"
            ).fetchall()
            delta_rows = self._conn.execute(
                "SELECT user_id, kind, COUNT(*) AS n,"
                " COALESCE(SUM(LENGTH(ids) + LENGTH(vectors)), 0) AS b,"
                " MAX(mutation_counter) AS tip"
                " FROM index_deltas GROUP BY user_id, kind"
            ).fetchall()
        meta: dict[tuple[int, str], dict[str, int]] = {}
        for row in base_rows:
            meta[(int(row["user_id"]), str(row["kind"]))] = {
                "baseCounter": int(row["mutation_counter"]),
                "rows": int(row["rows"]),
                "chainLen": 0,
                "chainBytes": 0,
                "tip": int(row["mutation_counter"]),
            }
        for row in delta_rows:
            entry = meta.setdefault(
                (int(row["user_id"]), str(row["kind"])),
                {"baseCounter": None, "rows": 0},
            )
            entry["chainLen"] = int(row["n"])
            entry["chainBytes"] = int(row["b"])
            entry["tip"] = int(row["tip"])
        return meta

    # -- idempotency receipts ---------------------------------------------
    def get_write_receipt(
        self, user_id: int, key: str
    ) -> tuple[str, int, dict] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT fingerprint, status, body FROM write_receipts"
                " WHERE user_id=? AND idem_key=?",
                (int(user_id), str(key)),
            ).fetchone()
        if row is None:
            return None
        return row["fingerprint"], int(row["status"]), json.loads(row["body"])

    def save_write_receipt(
        self,
        user_id: int,
        key: str,
        fingerprint: str,
        status: int,
        body: dict,
        created_at: float = 0.0,
    ) -> None:
        # deliberately NOT a registry mutation: no _bump_mutation(),
        # so a replayed write leaves the counter (and any persisted
        # shard snapshot's freshness) untouched
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO write_receipts"
                " (user_id, idem_key, fingerprint, status, body, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    int(user_id),
                    str(key),
                    str(fingerprint),
                    int(status),
                    json.dumps(body),
                    float(created_at),
                ),
            )

    def claim_write_receipt(
        self, user_id: int, key: str, fingerprint: str, created_at: float = 0.0
    ) -> bool:
        """``INSERT OR IGNORE`` of a pending row — SQLite serializes the
        insert across *processes* sharing the file, so exactly one
        writer in a fleet wins the key; everyone else sees the row."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO write_receipts"
                " (user_id, idem_key, fingerprint, status, body, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    int(user_id),
                    str(key),
                    str(fingerprint),
                    RECEIPT_PENDING,
                    "{}",
                    float(created_at),
                ),
            )
            return cursor.rowcount == 1

    def finalize_write_receipt(
        self,
        user_id: int,
        key: str,
        fingerprint: str,
        status: int,
        body: dict,
        created_at: float = 0.0,
    ) -> None:
        self.save_write_receipt(
            user_id, key, fingerprint, status, body, created_at
        )

    def release_write_receipt(self, user_id: int, key: str) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM write_receipts WHERE user_id=? AND idem_key=?"
                " AND status=?",
                (int(user_id), str(key), RECEIPT_PENDING),
            )

    def prune_write_receipts(
        self,
        now: float,
        ttl: float | None = None,
        cap: int | None = None,
    ) -> int:
        dropped = 0
        with self._lock, self._conn:
            if ttl is not None:
                cursor = self._conn.execute(
                    "DELETE FROM write_receipts WHERE status != ?"
                    " AND created_at <= ?",
                    (RECEIPT_PENDING, float(now) - float(ttl)),
                )
                dropped += cursor.rowcount
            if cap is not None:
                total = self._conn.execute(
                    "SELECT COUNT(*) FROM write_receipts WHERE status != ?",
                    (RECEIPT_PENDING,),
                ).fetchone()[0]
                overflow = int(total) - int(cap)
                if overflow > 0:
                    cursor = self._conn.execute(
                        "DELETE FROM write_receipts WHERE (user_id, idem_key)"
                        " IN (SELECT user_id, idem_key FROM write_receipts"
                        "     WHERE status != ?"
                        "     ORDER BY created_at ASC, user_id ASC,"
                        "     idem_key ASC LIMIT ?)",
                        (RECEIPT_PENDING, overflow),
                    )
                    dropped += cursor.rowcount
        return dropped

    # -- persisted IVF training state -------------------------------------
    def save_ivf_states(
        self,
        states: Mapping[tuple[int, str], tuple[np.ndarray, list[np.ndarray]]],
        stamps: Mapping[tuple[int, str], int] | int,
    ) -> None:
        """Upsert per-shard IVF training state at its shard's stamp.

        Per (user, kind): the float32 centroid matrix, plus the
        inverted lists flattened to one int64 member vector with an
        int64 per-list size vector — the row indices refer to the slab
        content at the *same* stamp.  Shards not in ``states`` keep
        their rows (stale by stamp, never torn).
        """
        payload = []
        for (user_id, kind), (centroids, lists) in states.items():
            centroids = np.asarray(centroids, dtype=np.float32)
            sizes = np.asarray([len(members) for members in lists], dtype=np.int64)
            members = (
                np.concatenate(
                    [np.asarray(m, dtype=np.int64) for m in lists]
                )
                if lists
                else np.empty(0, dtype=np.int64)
            )
            payload.append(
                (
                    int(user_id),
                    str(kind),
                    _state_stamp(stamps, (int(user_id), str(kind))),
                    int(centroids.shape[1]) if centroids.ndim == 2 else 0,
                    int(centroids.shape[0]),
                    int(members.shape[0]),
                    centroids.tobytes(),
                    sizes.tobytes(),
                    members.tobytes(),
                )
            )
        with self._lock, self._conn:
            self._conn.executemany(
                """INSERT OR REPLACE INTO ivf_states
                   (user_id, kind, mutation_counter, dim, nlist, rows,
                    centroids, list_sizes, members)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)""",
                payload,
            )

    def load_ivf_states(
        self,
    ) -> tuple[
        dict[tuple[int, str], int],
        dict[tuple[int, str], tuple[np.ndarray, list[np.ndarray]]],
    ]:
        """Per-shard ``(stamps, states)``; a truncated or inconsistent
        row is skipped individually (that shard simply retrains)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT user_id, kind, mutation_counter, dim, nlist, rows,"
                " centroids, list_sizes, members FROM ivf_states"
            ).fetchall()
        stamps: dict[tuple[int, str], int] = {}
        states: dict[tuple[int, str], tuple[np.ndarray, list[np.ndarray]]] = {}
        for row in rows:
            key = (int(row["user_id"]), str(row["kind"]))
            try:
                centroids = (
                    np.frombuffer(row["centroids"], dtype=np.float32)
                    .reshape(row["nlist"], row["dim"])
                    .copy()
                )
                sizes = np.frombuffer(row["list_sizes"], dtype=np.int64)
                members = np.frombuffer(row["members"], dtype=np.int64)
            except ValueError:
                continue  # truncated/corrupt row — this shard retrains
            if sizes.shape[0] != row["nlist"] or int(sizes.sum()) != int(
                members.shape[0]
            ) or int(members.shape[0]) != row["rows"]:
                continue  # torn row — this shard retrains
            lists, start = [], 0
            for size in sizes:
                lists.append(members[start : start + int(size)].copy())
                start += int(size)
            stamps[key] = int(row["mutation_counter"])
            states[key] = (centroids, lists)
        return stamps, states

    # -- persisted HNSW graph state ----------------------------------------
    def save_hnsw_states(
        self,
        states: Mapping[tuple[int, str], tuple[np.ndarray, np.ndarray]],
        stamps: Mapping[tuple[int, str], int] | int,
    ) -> None:
        """Upsert per-shard HNSW graph state at its shard's stamp.

        Per (user, kind): the int64 level assignment (one entry per
        slab row) and the flattened int64 level-0 adjacency (rows × m0,
        ``-1``-padded); row indices refer to the slab content at the
        *same* stamp.  Same upsert semantics as
        :meth:`save_ivf_states`.
        """
        payload = []
        for (user_id, kind), (levels, neighbors) in states.items():
            levels = np.asarray(levels, dtype=np.int64)
            neighbors = np.asarray(neighbors, dtype=np.int64)
            payload.append(
                (
                    int(user_id),
                    str(kind),
                    _state_stamp(stamps, (int(user_id), str(kind))),
                    int(levels.shape[0]),
                    int(neighbors.shape[1]) if neighbors.ndim == 2 else 0,
                    levels.tobytes(),
                    neighbors.tobytes(),
                )
            )
        with self._lock, self._conn:
            self._conn.executemany(
                """INSERT OR REPLACE INTO hnsw_states
                   (user_id, kind, mutation_counter, rows, m0, levels,
                    neighbors)
                   VALUES (?, ?, ?, ?, ?, ?, ?)""",
                payload,
            )

    def load_hnsw_states(
        self,
    ) -> tuple[
        dict[tuple[int, str], int],
        dict[tuple[int, str], tuple[np.ndarray, np.ndarray]],
    ]:
        """Per-shard ``(stamps, states)``; a truncated or inconsistent
        row is skipped individually (that shard simply rebuilds)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT user_id, kind, mutation_counter, rows, m0, levels,"
                " neighbors FROM hnsw_states"
            ).fetchall()
        stamps: dict[tuple[int, str], int] = {}
        states: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]] = {}
        for row in rows:
            key = (int(row["user_id"]), str(row["kind"]))
            try:
                levels = np.frombuffer(row["levels"], dtype=np.int64).copy()
                neighbors = (
                    np.frombuffer(row["neighbors"], dtype=np.int64)
                    .reshape(row["rows"], row["m0"])
                    .copy()
                )
            except ValueError:
                continue  # truncated/corrupt row — this shard rebuilds
            if levels.shape[0] != row["rows"]:
                continue  # torn row — this shard rebuilds
            stamps[key] = int(row["mutation_counter"])
            states[key] = (levels, neighbors)
        return stamps, states
