"""Registry entities — the Model layer (paper §3.2.4, Table 2, Figure 4).

Object-oriented representations of system data.  Embeddings are float32
NumPy vectors in memory; ``to_json``/``from_json`` convert them to plain
lists for the JSON wire format and the DAO layer converts them to bytes
for SQLite storage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np


def hash_password(password: str, salt: str = "laminar") -> str:
    """Salted SHA-256 password digest (never store plaintext)."""
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


def _embedding_to_json(vec: np.ndarray | None) -> list[float] | None:
    if vec is None:
        return None
    return [float(x) for x in np.asarray(vec, dtype=np.float32)]


def _embedding_from_json(data: Any) -> np.ndarray | None:
    if data is None:
        return None
    return np.asarray(data, dtype=np.float32)


@dataclass
class UserRecord:
    """A registered user (Table 2: userId, userName, password)."""

    user_id: int
    user_name: str
    password_hash: str

    def to_json(self, *, include_password: bool = False) -> dict[str, Any]:
        body: dict[str, Any] = {
            "userId": self.user_id,
            "userName": self.user_name,
        }
        if include_password:
            body["password"] = self.password_hash
        return body


@dataclass
class PERecord:
    """A registered Processing Element (Table 2).

    ``pe_code`` is the base64 cloudpickle payload; ``pe_source`` the
    source text used for search/summarization/completion; ``pe_imports``
    the auto-detected requirement list shipped to the Execution Engine.
    """

    pe_id: int
    pe_name: str
    description: str
    pe_code: str
    pe_source: str = ""
    pe_imports: list[str] = field(default_factory=list)
    code_embedding: np.ndarray | None = None
    desc_embedding: np.ndarray | None = None
    #: whether the description was user-provided or auto-summarized
    description_origin: str = "user"
    owners: set[int] = field(default_factory=set)
    #: per-record revision for conditional writes (v1 ``ifVersion``):
    #: 1 on insert, +1 on every update (DAO-managed).  Deliberately NOT
    #: part of :meth:`to_json` — the legacy wire shapes stay
    #: byte-identical; the v1 write envelope surfaces it explicitly.
    revision: int = 1

    def identity_key(self) -> str:
        """Dedup identity (§3.1): same class name + same code payload."""
        digest = hashlib.sha256(self.pe_code.encode("ascii")).hexdigest()[:16]
        return f"{self.pe_name}:{digest}"

    def to_json(self, *, include_embeddings: bool = False) -> dict[str, Any]:
        body: dict[str, Any] = {
            "peId": self.pe_id,
            "peName": self.pe_name,
            "description": self.description,
            "descriptionOrigin": self.description_origin,
            "peCode": self.pe_code,
            "peSource": self.pe_source,
            "peImports": list(self.pe_imports),
            "owners": sorted(self.owners),
        }
        if include_embeddings:
            body["codeEmbedding"] = _embedding_to_json(self.code_embedding)
            body["descEmbedding"] = _embedding_to_json(self.desc_embedding)
        return body

    @classmethod
    def from_json(cls, body: dict[str, Any]) -> "PERecord":
        return cls(
            pe_id=int(body.get("peId", 0)),
            pe_name=str(body["peName"]),
            description=str(body.get("description", "")),
            pe_code=str(body.get("peCode", "")),
            pe_source=str(body.get("peSource", "")),
            pe_imports=list(body.get("peImports", [])),
            code_embedding=_embedding_from_json(body.get("codeEmbedding")),
            desc_embedding=_embedding_from_json(body.get("descEmbedding")),
            description_origin=str(body.get("descriptionOrigin", "user")),
            owners=set(body.get("owners", [])),
        )


@dataclass
class WorkflowRecord:
    """A registered workflow (Table 2).

    ``entry_point`` is the unique name identifier users retrieve/run by;
    ``pe_ids`` realizes the two-way many-to-many PE association.
    """

    workflow_id: int
    workflow_name: str
    entry_point: str
    description: str
    workflow_code: str
    workflow_source: str = ""
    pe_ids: list[int] = field(default_factory=list)
    #: description embedding for workflow-level semantic search (the §8
    #: "enhance deep learning search for workflows" extension)
    desc_embedding: np.ndarray | None = None
    owners: set[int] = field(default_factory=set)
    #: per-record revision for conditional writes (see PERecord.revision)
    revision: int = 1

    def identity_key(self) -> str:
        digest = hashlib.sha256(self.workflow_code.encode("ascii")).hexdigest()[:16]
        return f"{self.entry_point}:{digest}"

    def to_json(self, *, include_embeddings: bool = False) -> dict[str, Any]:
        body = {
            "workflowId": self.workflow_id,
            "workflowName": self.workflow_name,
            "entryPoint": self.entry_point,
            "description": self.description,
            "workflowCode": self.workflow_code,
            "workflowSource": self.workflow_source,
            "peIds": list(self.pe_ids),
            "owners": sorted(self.owners),
        }
        if include_embeddings:
            body["descEmbedding"] = _embedding_to_json(self.desc_embedding)
        return body

    @classmethod
    def from_json(cls, body: dict[str, Any]) -> "WorkflowRecord":
        return cls(
            workflow_id=int(body.get("workflowId", 0)),
            workflow_name=str(body["workflowName"]),
            entry_point=str(body.get("entryPoint", body["workflowName"])),
            description=str(body.get("description", "")),
            workflow_code=str(body.get("workflowCode", "")),
            workflow_source=str(body.get("workflowSource", "")),
            pe_ids=list(body.get("peIds", [])),
            desc_embedding=_embedding_from_json(body.get("descEmbedding")),
            owners=set(body.get("owners", [])),
        )
