"""Registry service layer — business rules over the DAO (paper §3.1).

Implements the ownership semantics the paper describes:

* registering a PE/workflow that already exists (same identity) adds the
  caller as an additional *owner* rather than duplicating the entry;
* users only see and manage entities they own (privacy rule);
* removing dissociates the caller; the entity itself is deleted once no
  owners remain;
* the PE<->workflow association is two-way many-to-many, so "all PEs of a
  workflow" is a single lookup (the querying benefit called out in §3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (
    AuthenticationError,
    DuplicateError,
    NotFoundError,
    ValidationError,
)
from repro.registry.dao import RegistryDAO
from repro.registry.entities import (
    PERecord,
    UserRecord,
    WorkflowRecord,
    hash_password,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.backend import IndexBackend


class RegistryService:
    """All registry business logic, backend-agnostic.

    When constructed with a :class:`~repro.search.index.VectorIndex`,
    the service keeps the per-owner search shards synchronized with every
    PE/workflow mutation: registration adds the stored embeddings under
    each owner's shard, removal drops them, and a pre-populated DAO
    (e.g. a reopened SQLite registry) is bulk-loaded at attach time.
    """

    def __init__(
        self, dao: RegistryDAO, index: "IndexBackend | None" = None
    ) -> None:
        self.dao = dao
        self.index = None
        #: the DAO mutation counter the in-memory index is known to
        #: reflect; persist_shards stamps snapshots with this, never
        #: with a re-read (a foreign process's write between index
        #: sync and stamping would otherwise mark a stale snapshot
        #: fresh).  Lost-update races on the += only under-count,
        #: which skips a persist — the safe direction.
        self._index_counter = 0
        #: approximate companion backends (e.g. IVF) registered via
        #: attach_approx_backend; their training state persists and
        #: restores alongside the slab snapshot
        self._companions: list = []
        #: mirror backends (e.g. the scatter/gather fan-out) that keep
        #: their *own* copies of every shard: every index mutation fans
        #: out to them, so their results stay bitwise identical to the
        #: authoritative exact index
        self._mirrors: list = []
        if index is not None:
            self.attach_index(index)

    # ------------------------------------------------------------------
    # Search-index maintenance
    # ------------------------------------------------------------------
    def attach_index(
        self, index: "IndexBackend", *, persist: bool = True
    ) -> str:
        """Adopt ``index`` (any registered backend — select by name via
        :func:`repro.search.backend.create_backend`) and populate it;
        returns ``"fresh"`` or ``"rebuilt"``.

        Cold-start fast path: when the DAO holds a persisted slab
        snapshot stamped with the *current* registry mutation counter,
        the stacked float32 slabs are loaded directly into the index —
        zero record deserialization, no ``all_pes()`` pass.  Any counter
        mismatch (the registry mutated since the snapshot) falls back to
        the O(corpus) rebuild: one pass over the DAO accumulates each
        (user, kind) shard's ids and vectors, every shard is stacked in
        a single :meth:`~repro.search.index.VectorIndex.add_many` call,
        and (with ``persist``) the rebuilt slabs are saved back so the
        *next* cold start takes the fast path.
        """
        from repro.search.index import KIND_CODE, KIND_DESC, KIND_WORKFLOW

        self.index = index
        counter = self.dao.mutation_counter()
        self._index_counter = counter
        stored = self.dao.load_index_shards()
        if stored is not None and stored[0] == counter:
            for (user_id, kind), (ids, matrix) in stored[1].items():
                index.add_many(user_id, kind, [int(i) for i in ids], matrix)
            return "fresh"

        shards: dict[tuple[int, str], tuple[list[int], list]] = {}

        def accumulate(user_id: int, kind: str, rid: int, vector) -> None:
            ids, vectors = shards.setdefault((user_id, kind), ([], []))
            ids.append(rid)
            vectors.append(vector)

        for record in self.dao.all_pes():
            for user_id in record.owners:
                if record.desc_embedding is not None:
                    accumulate(
                        user_id, KIND_DESC, record.pe_id, record.desc_embedding
                    )
                if record.code_embedding is not None:
                    accumulate(
                        user_id, KIND_CODE, record.pe_id, record.code_embedding
                    )
        for record in self.dao.all_workflows():
            for user_id in record.owners:
                if record.desc_embedding is not None:
                    accumulate(
                        user_id,
                        KIND_WORKFLOW,
                        record.workflow_id,
                        record.desc_embedding,
                    )
        for (user_id, kind), (ids, vectors) in shards.items():
            index.add_many(user_id, kind, ids, vectors)
        if persist:
            self.persist_shards()
        return "rebuilt"

    def _note_write(self) -> None:
        """Record one DAO write performed *through this service* (the
        index was updated in the same call, so it still reflects the
        registry at the bumped counter)."""
        self._index_counter += 1

    def persist_shards(self) -> bool:
        """Save the index's slabs through the DAO for zero-rebuild restarts.

        The snapshot is stamped with the counter the index is *known*
        to reflect (attach time plus this service's own writes) — never
        a fresh counter read, which could cover a foreign process's
        write this index never saw.  If the DAO's counter disagrees
        with that stamp before or after the export (someone else wrote,
        or wrote mid-export), the save is skipped: a snapshot must
        never claim freshness it does not have, and the next attach
        simply rebuilds.  Returns whether a snapshot was written.
        """
        if self.index is None:
            return False
        stamp = self._index_counter
        if self.dao.mutation_counter() != stamp:
            return False
        shards = self.index.snapshot()
        if self.dao.mutation_counter() != stamp:
            return False
        self.dao.save_index_shards(shards, stamp)
        # companion training state (e.g. IVF lists) rides along at the
        # same stamp — persist_approx_states re-verifies freshness and
        # simply skips when nothing valid is trained
        self.persist_approx_states()
        return True

    @staticmethod
    def _state_store(backend) -> str:
        """Which DAO store a companion's state lives in (``"ivf"`` or
        ``"hnsw"``); backends declare it via a ``state_store``
        attribute, defaulting to the historical IVF store."""
        return str(getattr(backend, "state_store", "ivf"))

    def _load_states(self, store: str):
        if store == "hnsw":
            return self.dao.load_hnsw_states()
        return self.dao.load_ivf_states()

    def _save_states(self, store: str, states: dict, stamp: int) -> None:
        if store == "hnsw":
            self.dao.save_hnsw_states(states, stamp)
        else:
            self.dao.save_ivf_states(states, stamp)

    def attach_approx_backend(self, backend) -> str:
        """Adopt an approximate companion backend (the IVF or HNSW
        engine) and restore its persisted training state when still
        fresh.

        The stored per-(user, kind) state (centroids + inverted lists,
        or graph levels + adjacency) is only meaningful against the
        slab contents at the counter it was stamped with — exactly what
        the in-memory shards hold when the stamp equals
        ``_index_counter`` (a fresh slab load *or* a rebuild both leave
        ascending-id-ordered rows, which is the layout stored row
        indices refer to).  Any mismatch (stale, torn, absent) simply
        leaves the backend untrained: it rebuilds lazily, which is
        always correct.  Returns ``"restored"``, ``"stale"`` or
        ``"untrained"``.
        """
        if backend not in self._companions:
            self._companions.append(backend)
        stored = self._load_states(self._state_store(backend))
        if stored is None:
            return "untrained"
        counter, states = stored
        if self.index is None or counter != self._index_counter:
            return "stale"
        adopted = backend.adopt_states(states)
        return "restored" if adopted else "untrained"

    def persist_approx_states(self) -> bool:
        """Save companion backends' trained state next to the slabs.

        Same freshness protocol as :meth:`persist_shards`: the export
        is stamped with the counter the index is known to reflect and
        skipped whenever the DAO's counter disagrees before or after
        (state must never claim freshness it does not have).  Stale
        trained shards are excluded by the export itself.  Exports are
        grouped per state store, so IVF and HNSW companions persist
        side by side without clobbering each other.  Returns whether
        any snapshot was written.
        """
        if self.index is None or not self._companions:
            return False
        stamp = self._index_counter
        if self.dao.mutation_counter() != stamp:
            return False
        by_store: dict[str, dict] = {}
        for backend in self._companions:
            exported = backend.export_states()
            if exported:
                by_store.setdefault(self._state_store(backend), {}).update(
                    exported
                )
        if not by_store:
            return False
        if self.dao.mutation_counter() != stamp:
            return False
        for store, states in by_store.items():
            self._save_states(store, states, stamp)
        return True

    def shard_persistence(self) -> dict:
        """Freshness report for the persisted slab snapshot."""
        meta = self.dao.index_shards_meta()
        current = self.dao.mutation_counter()
        stored = meta.get("counter")
        return {
            "storedCounter": stored,
            "currentCounter": current,
            "shards": meta.get("shards", 0),
            "rows": meta.get("rows", 0),
            "fresh": stored is not None and stored == current,
        }

    def attach_mirror(self, backend) -> None:
        """Adopt a mirror backend: bulk-load the current shards into it
        and fan every future index mutation out to it.

        Mirrors (the scatter/gather fan-out above all) hold their own
        slab copies — possibly across worker processes — so the initial
        load replays the authoritative index's snapshot verbatim
        (bitwise: slabs are copied, never recomputed).
        """
        if backend in self._mirrors:
            return
        if self.index is not None:
            for (user_id, kind), (ids, matrix) in self.index.snapshot().items():
                backend.add_many(user_id, kind, [int(i) for i in ids], matrix)
        self._mirrors.append(backend)

    def _index_targets(self) -> list:
        if self.index is None:
            return []
        return [self.index, *self._mirrors]

    def _index_pe(self, user_id: int, record: PERecord) -> None:
        from repro.search.index import KIND_CODE, KIND_DESC

        for index in self._index_targets():
            if record.desc_embedding is not None:
                index.add(user_id, KIND_DESC, record.pe_id, record.desc_embedding)
            if record.code_embedding is not None:
                index.add(user_id, KIND_CODE, record.pe_id, record.code_embedding)

    def _unindex_pe(self, user_id: int, pe_id: int) -> None:
        from repro.search.index import KIND_CODE, KIND_DESC

        for index in self._index_targets():
            index.remove(user_id, KIND_DESC, pe_id)
            index.remove(user_id, KIND_CODE, pe_id)

    def _index_workflow(self, user_id: int, record: WorkflowRecord) -> None:
        from repro.search.index import KIND_WORKFLOW

        for index in self._index_targets():
            if record.desc_embedding is not None:
                index.add(
                    user_id, KIND_WORKFLOW, record.workflow_id, record.desc_embedding
                )

    def _unindex_workflow(self, user_id: int, workflow_id: int) -> None:
        from repro.search.index import KIND_WORKFLOW

        for index in self._index_targets():
            index.remove(user_id, KIND_WORKFLOW, workflow_id)

    # ------------------------------------------------------------------
    # Users / auth
    # ------------------------------------------------------------------
    def register_user(self, name: str, password: str) -> UserRecord:
        if not name or not name.strip():
            raise ValidationError("user name must be non-empty", params={"user": name})
        if not password:
            raise ValidationError("password must be non-empty")
        if self.dao.get_user_by_name(name) is not None:
            raise DuplicateError(
                f"user {name!r} already exists", params={"user": name}
            )
        return self.dao.insert_user(name, hash_password(password))

    def authenticate(self, name: str, password: str) -> UserRecord:
        user = self.dao.get_user_by_name(name)
        if user is None or user.password_hash != hash_password(password):
            raise AuthenticationError(
                "invalid login credentials", params={"user": name}
            )
        return user

    def get_user(self, name: str) -> UserRecord:
        user = self.dao.get_user_by_name(name)
        if user is None:
            raise NotFoundError(f"unknown user {name!r}", params={"user": name})
        return user

    def all_users(self) -> list[UserRecord]:
        return self.dao.all_users()

    # ------------------------------------------------------------------
    # PEs
    # ------------------------------------------------------------------
    def add_pe(self, user: UserRecord, record: PERecord) -> PERecord:
        """Register a PE, applying the §3.1 dedup-by-identity rule."""
        return self.register_pe(user, record)[0]

    def _dedup_pe_hit(
        self, user: UserRecord, record: PERecord
    ) -> PERecord | None:
        """The §3.1 dedup resolution: an identity match grants the
        caller ownership (and indexes the record for them); ``None``
        means the registration is genuinely new."""
        identity = record.identity_key()
        for existing in self.dao.find_pe_by_name(record.pe_name):
            if existing.identity_key() == identity:
                if user.user_id not in existing.owners:
                    existing.owners.add(user.user_id)
                    self.dao.update_pe(existing)
                    self._note_write()
                self._index_pe(user.user_id, existing)
                return existing
        return None

    def register_pe(
        self, user: UserRecord, record: PERecord
    ) -> tuple[PERecord, bool]:
        """Dedup-or-insert; returns ``(stored, created)``.

        ``created`` is False when the §3.1 identity rule resolved the
        registration onto an existing record (ownership granted, or the
        caller already owned it) — the v1 write envelope surfaces the
        distinction while ``add_pe`` keeps the historical signature.
        """
        hit = self._dedup_pe_hit(user, record)
        if hit is not None:
            return hit, False
        record.owners = {user.user_id}
        stored = self.dao.insert_pe(record)
        self._note_write()
        self._index_pe(user.user_id, stored)
        return stored, True

    def upsert_pe(
        self, user: UserRecord, current: PERecord, record: PERecord
    ) -> tuple[PERecord, bool]:
        """Replace the user's name binding: ``record`` supersedes
        ``current`` (same name, different identity).

        The new content resolves through the §3.1 dedup first (joining
        an existing identical record or inserting), then the caller's
        stake in the old record is released — dissociation when other
        owners remain (a PUT never rewrites another tenant's record),
        deletion when the caller was the sole owner.  After this, the
        user's by-name lookups, deletes and conditional writes all
        resolve to the record now holding the PUT content.
        """
        stored, created = self.register_pe(user, record)
        self.remove_pe_record(user, current)
        return stored, created

    def revise_pe(
        self, user: UserRecord, current: PERecord, record: PERecord
    ) -> tuple[PERecord, bool]:
        """In-place metadata revision: same identity (name + code),
        changed description/source/imports/embeddings.

        The record id stays stable and the revision bumps.  Identical
        identity means there is exactly ONE record (the §3.1 invariant),
        so every owner sees the revision — shared identity is shared
        metadata by construction; a caller wanting private metadata
        must change the code payload (which forks via upsert).
        """
        current.description = record.description
        current.description_origin = record.description_origin
        current.pe_source = record.pe_source
        current.pe_imports = list(record.pe_imports)
        current.desc_embedding = record.desc_embedding
        current.code_embedding = record.code_embedding
        self.dao.update_pe(current)
        self._note_write()
        for owner in current.owners:
            self._index_pe(owner, current)
        return current, False

    def register_pes_bulk(
        self, user: UserRecord, records: list[PERecord], *, persist: bool = True
    ) -> tuple[list[PERecord], list[bool]]:
        """Bulk registration: one DAO ``executemany`` insert, one index
        ``add_many`` per shard kind, one shard persist.

        Applies the same §3.1 dedup-by-identity rule as
        :meth:`register_pe` — against the registry *and* within the
        batch itself (two identical items resolve to one record).
        Returns the stored records in item order plus per-item
        ``created`` flags.
        """
        from repro.search.index import KIND_CODE, KIND_DESC

        stored: list[PERecord] = []
        created: list[bool] = []
        fresh: list[PERecord] = []
        by_identity: dict[str, PERecord] = {}
        for record in records:
            identity = record.identity_key()
            batch_hit = by_identity.get(identity)
            if batch_hit is not None:
                # in-batch duplicate: resolves to whatever the first
                # occurrence resolved to.  Never index here — a fresh
                # first occurrence has no id yet (it is inserted and
                # indexed with its real id after the loop), and a
                # registry hit was already indexed then.
                stored.append(batch_hit)
                created.append(False)
                continue
            hit = self._dedup_pe_hit(user, record)
            if hit is not None:
                by_identity[identity] = hit
                stored.append(hit)
                created.append(False)
                continue
            record.owners = {user.user_id}
            fresh.append(record)
            by_identity[identity] = record
            stored.append(record)
            created.append(True)
        if fresh:
            self.dao.insert_pes(fresh)
            # both DAOs treat a bulk insert as ONE mutation event
            self._note_write()
            desc = [
                (r.pe_id, r.desc_embedding)
                for r in fresh
                if r.desc_embedding is not None
            ]
            code = [
                (r.pe_id, r.code_embedding)
                for r in fresh
                if r.code_embedding is not None
            ]
            for index in self._index_targets():
                if desc:
                    index.add_many(
                        user.user_id,
                        KIND_DESC,
                        [rid for rid, _ in desc],
                        [vec for _, vec in desc],
                    )
                if code:
                    index.add_many(
                        user.user_id,
                        KIND_CODE,
                        [rid for rid, _ in code],
                        [vec for _, vec in code],
                    )
        if persist:
            self.persist_shards()
        return stored, created

    def _owned_pe(self, user: UserRecord, pe_id: int) -> PERecord:
        record = self.dao.get_pe(pe_id)
        if record is None or user.user_id not in record.owners:
            raise NotFoundError(
                f"PE id {pe_id} not found for user {user.user_name!r}",
                params={"peId": pe_id, "user": user.user_name},
            )
        return record

    def get_pe_by_id(self, user: UserRecord, pe_id: int) -> PERecord:
        return self._owned_pe(user, pe_id)

    def get_pe_by_name(self, user: UserRecord, name: str) -> PERecord:
        for record in self.dao.find_pe_by_name(name):
            if user.user_id in record.owners:
                return record
        raise NotFoundError(
            f"PE {name!r} not found for user {user.user_name!r}",
            params={"peName": name, "user": user.user_name},
        )

    def user_pes(self, user: UserRecord) -> list[PERecord]:
        """The user's PEs, ascending id — owner-scoped at the DAO."""
        return self.dao.pes_owned_by(user.user_id)

    def owned_pe_ids(self, user: UserRecord) -> list[int]:
        """Ascending owned PE ids; no row materialization at all."""
        return self.dao.pe_ids_owned_by(user.user_id)

    def resolve_pes(self, user: UserRecord, pe_ids: list[int]) -> list[PERecord]:
        """Batch-hydrate ``pe_ids`` in order, dropping non-owned records.

        The top-k serving path: the searcher ranks on the index shard
        and materializes only the winners through this call.  Ids that
        vanished or changed hands since ranking are silently skipped —
        the caller's result is then slightly under-filled rather than
        wrong.
        """
        return [
            record
            for record in self.dao.get_pes(pe_ids)
            if user.user_id in record.owners
        ]

    def text_candidate_pes(self, user: UserRecord, query: str) -> list[PERecord]:
        """Candidate PEs for the **legacy** Python text scorer.

        Serves only the legacy Table-3 parity adapter, whose contract
        is the byte-identical historical scorer output.  The SQL
        ``LIKE`` filter (``RegistryDAO.pes_owned_by_matching``) is a
        strict superset of the scorer's matches, so scoring the
        candidates yields exactly the historical results.  The v1
        ``queryType=text`` path ranks in the FTS5 index instead — see
        :meth:`text_topk_pes`.
        """
        from repro.search.text_search import candidate_patterns

        return self.dao.pes_owned_by_matching(
            user.user_id, candidate_patterns(query)
        )

    def text_topk_pes(
        self, user: UserRecord, query: str, k: int | None = None
    ) -> list[tuple[PERecord, float]]:
        """Indexed BM25+substring text ranking — O(k) hydration.

        The DAO ranks owned PE ids inside its inverted index
        (``RegistryDAO.text_topk_pes``); only the winners are
        materialized, mirroring the semantic top-k serving shape.
        Returns ``(record, score)`` pairs in rank order; ids that
        vanished or changed hands since ranking are skipped.
        """
        ranked = self.dao.text_topk_pes(user.user_id, query, k)
        by_id = {
            record.pe_id: record
            for record in self.dao.get_pes([i for i, _ in ranked])
            if user.user_id in record.owners
        }
        return [
            (by_id[i], score) for i, score in ranked if i in by_id
        ]

    def remove_pe(self, user: UserRecord, pe_id: int) -> None:
        """Dissociate the user; delete the PE once ownerless."""
        self.remove_pe_record(user, self._owned_pe(user, pe_id))

    def remove_pe_record(self, user: UserRecord, record: PERecord) -> None:
        """Remove an already-fetched owned record (no re-fetch).

        The write core resolves the target once for its revision check;
        re-reading it here would unblob the embeddings a second time
        inside the write lock.
        """
        record.owners.discard(user.user_id)
        if record.owners:
            self.dao.update_pe(record)
        else:
            self.dao.delete_pe(record.pe_id)
        self._note_write()
        self._unindex_pe(user.user_id, record.pe_id)

    def remove_pe_by_name(self, user: UserRecord, name: str) -> None:
        record = self.get_pe_by_name(user, name)
        self.remove_pe(user, record.pe_id)

    # ------------------------------------------------------------------
    # Workflows
    # ------------------------------------------------------------------
    def add_workflow(
        self, user: UserRecord, record: WorkflowRecord
    ) -> WorkflowRecord:
        return self.register_workflow(user, record)[0]

    def register_workflow(
        self, user: UserRecord, record: WorkflowRecord
    ) -> tuple[WorkflowRecord, bool]:
        """Dedup-or-insert; returns ``(stored, created)`` (see register_pe)."""
        for existing in self.dao.find_workflow_by_entry_point(record.entry_point):
            if existing.identity_key() == record.identity_key():
                if user.user_id not in existing.owners:
                    existing.owners.add(user.user_id)
                    self.dao.update_workflow(existing)
                    self._note_write()
                self._index_workflow(user.user_id, existing)
                return existing, False
        record.owners = {user.user_id}
        stored = self.dao.insert_workflow(record)
        self._note_write()
        self._index_workflow(user.user_id, stored)
        return stored, True

    def upsert_workflow(
        self, user: UserRecord, current: WorkflowRecord, record: WorkflowRecord
    ) -> tuple[WorkflowRecord, bool]:
        """Replace the user's entry-point binding (see :meth:`upsert_pe`)."""
        stored, created = self.register_workflow(user, record)
        self.remove_workflow_record(user, current)
        return stored, created

    def revise_workflow(
        self, user: UserRecord, current: WorkflowRecord, record: WorkflowRecord
    ) -> tuple[WorkflowRecord, bool]:
        """In-place metadata revision (see :meth:`revise_pe`)."""
        current.workflow_name = record.workflow_name
        current.description = record.description
        current.workflow_source = record.workflow_source
        current.pe_ids = list(record.pe_ids)
        current.desc_embedding = record.desc_embedding
        self.dao.update_workflow(current)
        self._note_write()
        for owner in current.owners:
            self._index_workflow(owner, current)
        return current, False

    def _owned_workflow(self, user: UserRecord, workflow_id: int) -> WorkflowRecord:
        record = self.dao.get_workflow(workflow_id)
        if record is None or user.user_id not in record.owners:
            raise NotFoundError(
                f"workflow id {workflow_id} not found for user "
                f"{user.user_name!r}",
                params={"workflowId": workflow_id, "user": user.user_name},
            )
        return record

    def get_workflow_by_id(
        self, user: UserRecord, workflow_id: int
    ) -> WorkflowRecord:
        return self._owned_workflow(user, workflow_id)

    def get_workflow_by_name(self, user: UserRecord, name: str) -> WorkflowRecord:
        for record in self.dao.find_workflow_by_entry_point(name):
            if user.user_id in record.owners:
                return record
        raise NotFoundError(
            f"workflow {name!r} not found for user {user.user_name!r}",
            params={"entryPoint": name, "user": user.user_name},
        )

    def user_workflows(self, user: UserRecord) -> list[WorkflowRecord]:
        """The user's workflows, ascending id — owner-scoped at the DAO."""
        return self.dao.workflows_owned_by(user.user_id)

    def owned_workflow_ids(self, user: UserRecord) -> list[int]:
        """Ascending owned workflow ids; no row materialization at all."""
        return self.dao.workflow_ids_owned_by(user.user_id)

    def resolve_workflows(
        self, user: UserRecord, workflow_ids: list[int]
    ) -> list[WorkflowRecord]:
        """Batch-hydrate ``workflow_ids`` in order, dropping non-owned."""
        return [
            record
            for record in self.dao.get_workflows(workflow_ids)
            if user.user_id in record.owners
        ]

    def text_candidate_workflows(
        self, user: UserRecord, query: str
    ) -> list[WorkflowRecord]:
        """Candidate workflows for the **legacy** Python text scorer
        (legacy Table-3 parity adapter only; see
        :meth:`text_candidate_pes`)."""
        from repro.search.text_search import candidate_patterns

        return self.dao.workflows_owned_by_matching(
            user.user_id, candidate_patterns(query)
        )

    def text_topk_workflows(
        self, user: UserRecord, query: str, k: int | None = None
    ) -> list[tuple[WorkflowRecord, float]]:
        """Indexed BM25+substring workflow ranking (see
        :meth:`text_topk_pes`)."""
        ranked = self.dao.text_topk_workflows(user.user_id, query, k)
        by_id = {
            record.workflow_id: record
            for record in self.dao.get_workflows([i for i, _ in ranked])
            if user.user_id in record.owners
        }
        return [
            (by_id[i], score) for i, score in ranked if i in by_id
        ]

    def remove_workflow(self, user: UserRecord, workflow_id: int) -> None:
        self.remove_workflow_record(
            user, self._owned_workflow(user, workflow_id)
        )

    def remove_workflow_record(
        self, user: UserRecord, record: WorkflowRecord
    ) -> None:
        """Remove an already-fetched owned record (no re-fetch)."""
        record.owners.discard(user.user_id)
        if record.owners:
            self.dao.update_workflow(record)
        else:
            self.dao.delete_workflow(record.workflow_id)
        self._note_write()
        self._unindex_workflow(user.user_id, record.workflow_id)

    def remove_workflow_by_name(self, user: UserRecord, name: str) -> None:
        record = self.get_workflow_by_name(user, name)
        self.remove_workflow(user, record.workflow_id)

    # ------------------------------------------------------------------
    # Associations
    # ------------------------------------------------------------------
    def link_pe_to_workflow(
        self, user: UserRecord, workflow_id: int, pe_id: int
    ) -> WorkflowRecord:
        """PUT /registry/{user}/workflow/{workflowId}/pe/{peId}."""
        workflow = self._owned_workflow(user, workflow_id)
        self._owned_pe(user, pe_id)
        if pe_id not in workflow.pe_ids:
            workflow.pe_ids.append(pe_id)
            self.dao.update_workflow(workflow)
            self._note_write()
        return workflow

    def workflow_pes(
        self, user: UserRecord, workflow_id: int
    ) -> list[PERecord]:
        workflow = self._owned_workflow(user, workflow_id)
        records = []
        for pe_id in workflow.pe_ids:
            record = self.dao.get_pe(pe_id)
            if record is not None:
                records.append(record)
        return records

    def workflow_pes_by_name(self, user: UserRecord, name: str) -> list[PERecord]:
        workflow = self.get_workflow_by_name(user, name)
        return self.workflow_pes(user, workflow.workflow_id)
