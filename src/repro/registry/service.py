"""Registry service layer — business rules over the DAO (paper §3.1).

Implements the ownership semantics the paper describes:

* registering a PE/workflow that already exists (same identity) adds the
  caller as an additional *owner* rather than duplicating the entry;
* users only see and manage entities they own (privacy rule);
* removing dissociates the caller; the entity itself is deleted once no
  owners remain;
* the PE<->workflow association is two-way many-to-many, so "all PEs of a
  workflow" is a single lookup (the querying benefit called out in §3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    AuthenticationError,
    DuplicateError,
    NotFoundError,
    ValidationError,
)
from repro.registry.dao import RegistryDAO, _embed_bytes
from repro.registry.entities import (
    PERecord,
    UserRecord,
    WorkflowRecord,
    hash_password,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.backend import IndexBackend


class RegistryService:
    """All registry business logic, backend-agnostic.

    When constructed with a :class:`~repro.search.index.VectorIndex`,
    the service keeps the per-owner search shards synchronized with every
    PE/workflow mutation: registration adds the stored embeddings under
    each owner's shard, removal drops them, and a pre-populated DAO
    (e.g. a reopened SQLite registry) is bulk-loaded at attach time.
    """

    def __init__(
        self, dao: RegistryDAO, index: "IndexBackend | None" = None
    ) -> None:
        self.dao = dao
        self.index = None
        #: the DAO mutation counter the in-memory index is known to
        #: reflect; persist_shards stamps snapshots with this, never
        #: with a re-read (a foreign process's write between index
        #: sync and stamping would otherwise mark a stale snapshot
        #: fresh).  Lost-update races on the += only under-count,
        #: which skips a persist — the safe direction.
        self._index_counter = 0
        #: approximate companion backends (e.g. IVF) registered via
        #: attach_approx_backend; their training state persists and
        #: restores alongside the slab snapshot
        self._companions: list = []
        #: mirror backends (e.g. the scatter/gather fan-out) that keep
        #: their *own* copies of every shard: every index mutation fans
        #: out to them, so their results stay bitwise identical to the
        #: authoritative exact index
        self._mirrors: list = []
        #: journal index deltas inline with every write (enabled by
        #: attach_index's ``persist`` flag): each mutation appends a
        #: small add/remove row batch to the DAO's delta journal at the
        #: counter the DAO stamped, so the persisted state tracks the
        #: live index at O(delta) cost instead of whole-snapshot
        #: rewrites
        self._persist = False
        #: compaction thresholds: once a shard's journal chain exceeds
        #: either bound, the chain is folded back into its base slab
        #: (one per-shard upsert) so replay cost stays bounded
        self.compact_after_deltas = 64
        self.compact_after_bytes = 4 * 1024 * 1024
        #: journal telemetry for ``repro stats --shards``
        self._journal_rows = 0
        self._journal_bytes = 0
        self._compactions = 0
        #: shards the last attach had to discard (corrupt/torn rows)
        self._attach_discarded = 0
        if index is not None:
            self.attach_index(index)

    # ------------------------------------------------------------------
    # Search-index maintenance
    # ------------------------------------------------------------------
    def attach_index(
        self, index: "IndexBackend", *, persist: bool = True
    ) -> str:
        """Adopt ``index`` (any registered backend — select by name via
        :func:`repro.search.backend.create_backend`) and populate it;
        returns ``"fresh"``, ``"partial"`` or ``"rebuilt"``.

        Cold start is O(delta), per shard: every persisted base slab is
        replayed through its delta journal chain, and a shard whose
        replayed chain tip equals its expected mutation stamp
        (:meth:`~repro.registry.dao.RegistryDAO.shard_stamps`) loads
        straight into the index — zero record deserialization.  Only
        shards that are stale (a write this journal never saw — e.g. a
        foreign process's), torn or corrupt are rebuilt, each from its
        *own* owner's records (``pes_owned_by``/``workflows_owned_by``,
        never an ``all_pes()`` pass), and (with ``persist``) upserted
        back so the next cold start takes the fast path.  One tenant's
        write therefore never invalidates anyone else's slab.

        A registry with no per-shard stamps at all (pre-v6 file whose
        stamps could not be provably seeded, or an empty DAO) falls
        back to the legacy full O(corpus) rebuild.

        ``persist`` also arms inline delta journaling: every subsequent
        write through this service appends its row batch to the journal
        at the counter the DAO stamped (see :meth:`_journal_delta`).
        """
        from repro.search.index import KIND_CODE, KIND_DESC, KIND_WORKFLOW

        self.index = index
        self._persist = persist
        counter = self.dao.mutation_counter()
        self._index_counter = counter
        stamps = self.dao.shard_stamps()
        loaded, discarded = self.dao.load_index_shards()
        self._attach_discarded = discarded

        if not stamps:
            # pre-v6 rows without provable stamps (or an empty DAO):
            # rebuild wholesale — persisting re-seeds per-shard stamps
            self._rebuild_full(index)
            if persist:
                self._save_full_snapshot()
            return "rebuilt"

        fresh = {
            key
            for key, (_ids, _matrix, tip) in loaded.items()
            if stamps.get(key) == tip
        }
        for key in sorted(fresh):
            ids, matrix, _tip = loaded[key]
            if ids.shape[0]:
                index.add_many(key[0], key[1], ids, matrix)

        stale = sorted((set(stamps) | set(loaded)) - fresh)
        rebuilt: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]] = {}
        pe_users = sorted(
            {u for (u, kind) in stale if kind in (KIND_DESC, KIND_CODE)}
        )
        wf_users = sorted({u for (u, kind) in stale if kind == KIND_WORKFLOW})
        stale_set = set(stale)
        for user_id in pe_users:
            want = {
                kind
                for kind in (KIND_DESC, KIND_CODE)
                if (user_id, kind) in stale_set
            }
            rows: dict[str, list] = {kind: [] for kind in want}
            for record in self.dao.pes_owned_by(user_id):
                if KIND_DESC in want and record.desc_embedding is not None:
                    rows[KIND_DESC].append(
                        (record.pe_id, record.desc_embedding)
                    )
                if KIND_CODE in want and record.code_embedding is not None:
                    rows[KIND_CODE].append(
                        (record.pe_id, record.code_embedding)
                    )
            for kind in want:
                rebuilt[(user_id, kind)] = self._stack_shard(rows[kind])
        for user_id in wf_users:
            rows = [
                (record.workflow_id, record.desc_embedding)
                for record in self.dao.workflows_owned_by(user_id)
                if record.desc_embedding is not None
            ]
            rebuilt[(user_id, KIND_WORKFLOW)] = self._stack_shard(rows)
        for (user_id, kind), (ids, matrix) in rebuilt.items():
            if ids.shape[0]:
                index.add_many(user_id, kind, ids, matrix)
        if rebuilt and persist:
            # stamped at the counter read above; upsert_index_shards
            # max-seeds stamps, so a racing foreign write (which stamps
            # higher) correctly leaves its shard stale
            self.dao.upsert_index_shards(rebuilt, counter)
        if persist:
            consume = getattr(index, "consume_dirty", None)
            if consume is not None:
                consume()
        if not stale:
            return "fresh"
        return "partial" if fresh else "rebuilt"

    @staticmethod
    def _stack_shard(
        rows: list[tuple[int, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, matrix)`` slab layout from ascending ``(id, vector)``
        rows — the empty shard keeps an explicit (0, 0) matrix so its
        stamp stays satisfiable once persisted."""
        if not rows:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, 0), dtype=np.float32),
            )
        ids = np.asarray([rid for rid, _ in rows], dtype=np.int64)
        matrix = np.ascontiguousarray(
            np.stack(
                [np.asarray(vec, dtype=np.float32) for _, vec in rows]
            ),
            dtype=np.float32,
        )
        return ids, matrix

    def _rebuild_full(self, index: "IndexBackend") -> None:
        """Legacy O(corpus) rebuild: one pass over every record."""
        from repro.search.index import KIND_CODE, KIND_DESC, KIND_WORKFLOW

        shards: dict[tuple[int, str], tuple[list[int], list]] = {}

        def accumulate(user_id: int, kind: str, rid: int, vector) -> None:
            ids, vectors = shards.setdefault((user_id, kind), ([], []))
            ids.append(rid)
            vectors.append(vector)

        for record in self.dao.all_pes():
            for user_id in record.owners:
                if record.desc_embedding is not None:
                    accumulate(
                        user_id, KIND_DESC, record.pe_id, record.desc_embedding
                    )
                if record.code_embedding is not None:
                    accumulate(
                        user_id, KIND_CODE, record.pe_id, record.code_embedding
                    )
        for record in self.dao.all_workflows():
            for user_id in record.owners:
                if record.desc_embedding is not None:
                    accumulate(
                        user_id,
                        KIND_WORKFLOW,
                        record.workflow_id,
                        record.desc_embedding,
                    )
        for (user_id, kind), (ids, vectors) in shards.items():
            index.add_many(user_id, kind, ids, vectors)

    def _note_write(self) -> None:
        """Record one DAO write performed *through this service* (the
        index was updated in the same call, so it still reflects the
        registry at the bumped counter)."""
        self._index_counter += 1

    def _journal_delta(
        self,
        user_id: int,
        kind: str,
        op: str,
        rids,
        vectors=None,
        *,
        allow_compact: bool = True,
    ) -> None:
        """Append one add/remove row batch to the shard's delta journal.

        Called on every write path *after* the mutation has been applied
        to the live index (a threshold-crossing append compacts the
        chain inline from a live-index snapshot, so the snapshot must
        already contain this batch), for
        exactly the shards the DAO's stamping rule marked changed — the
        journal row carries the counter the DAO stamped, so an honest
        chain's tip equals the shard's expected stamp and the next
        attach loads it without touching a single record.  If a foreign
        process wrote between attach and now, the tracked counter lags
        the DAO's and every later stamp exceeds the journaled tip —
        conservatively stale, so those shards rebuild.  Appends are
        intentionally unguarded: a crash *between* mutation and append
        leaves stamp > tip, which is also just stale.

        Past :attr:`compact_after_deltas` / :attr:`compact_after_bytes`
        the chain is folded back into the base slab inline —  unless
        ``allow_compact`` is off: a bulk caller that will issue one
        ``persist_shards()`` when it finishes (the ingest pipeline)
        opts out, because every mid-stream fold re-exports the whole
        growing slab only for the final persist to do it again.
        """
        if not self._persist or self.index is None:
            return
        ids = np.asarray(rids, dtype=np.int64).reshape(-1)
        vecs = None
        if vectors is not None:
            vecs = np.asarray(vectors, dtype=np.float32)
            if vecs.ndim == 1:
                vecs = vecs.reshape(1, -1)
        chain_len, chain_bytes = self.dao.append_index_delta(
            user_id, kind, op, ids, vecs, self._index_counter
        )
        self._journal_rows += 1
        self._journal_bytes += int(ids.nbytes) + (
            0 if vecs is None else int(vecs.nbytes)
        )
        if allow_compact and (
            chain_len >= self.compact_after_deltas
            or chain_bytes >= self.compact_after_bytes
        ):
            self._compact_shard((int(user_id), str(kind)))

    def _journal_pe(self, user_id: int, record: PERecord, op: str) -> None:
        """Journal a PE's row under ``user_id`` for every kind it embeds
        — the same kinds the DAO's stamping rule touches."""
        from repro.search.index import KIND_CODE, KIND_DESC

        for kind, vec in (
            (KIND_DESC, record.desc_embedding),
            (KIND_CODE, record.code_embedding),
        ):
            if vec is None:
                continue
            self._journal_delta(
                user_id,
                kind,
                op,
                [record.pe_id],
                [vec] if op == "add" else None,
            )

    def _journal_workflow(
        self, user_id: int, record: WorkflowRecord, op: str
    ) -> None:
        from repro.search.index import KIND_WORKFLOW

        if record.desc_embedding is None:
            return
        self._journal_delta(
            user_id,
            KIND_WORKFLOW,
            op,
            [record.workflow_id],
            [record.desc_embedding] if op == "add" else None,
        )

    def _compact_shard(self, key: tuple[int, str]) -> bool:
        """Fold one shard's delta chain into its base slab.

        Guarded by the usual counter check (a foreign write makes the
        live slab unciteable as truth); the upsert deletes the folded
        deltas and max-raises the stamp, so a post-check racing write
        still leaves the shard stale rather than wrongly fresh.
        """
        if self.index is None or not hasattr(self.index, "consume_dirty"):
            return False
        stamp = self._index_counter
        if self.dao.mutation_counter() != stamp:
            return False
        shards = self.index.snapshot(keys={key})
        if key not in shards:
            shards[key] = self._stack_shard([])
        if self.dao.mutation_counter() != stamp:
            return False
        self.dao.upsert_index_shards(shards, stamp)
        self._compactions += 1
        return True

    def _save_full_snapshot(self) -> bool:
        """Wholesale snapshot save — the truth assertion used after a
        full rebuild and for backends without dirty-shard tracking."""
        stamp = self._index_counter
        if self.dao.mutation_counter() != stamp:
            return False
        shards = self.index.snapshot()
        if self.dao.mutation_counter() != stamp:
            return False
        self.dao.save_index_shards(shards, stamp)
        consume = getattr(self.index, "consume_dirty", None)
        if consume is not None:
            consume()
        self.persist_approx_states()
        return True

    def persist_shards(self) -> bool:
        """Flush the index's unpersisted shards through the DAO.

        With inline journaling armed, a dirty shard whose journal chain
        tip already equals its expected stamp needs nothing — the
        journal *is* its persistence — so this degenerates to a cheap
        metadata check.  Shards the journal does not cover (mutated
        while journaling was off) are upserted individually; backends
        without dirty-shard tracking fall back to the wholesale
        snapshot.  The export is stamped with the counter the index is
        *known* to reflect — never a fresh counter read, which could
        cover a foreign process's write this index never saw — and
        skipped when the DAO's counter disagrees before or after the
        export.  Returns whether the persisted state is consistent at
        that stamp.
        """
        if self.index is None:
            return False
        if getattr(self.index, "dirty_keys", None) is None:
            return self._save_full_snapshot()
        stamp = self._index_counter
        if self.dao.mutation_counter() != stamp:
            return False
        dirty = set(self.index.dirty_keys())
        if dirty:
            stamps = self.dao.shard_stamps()
            chains = self.dao.shard_chain_meta()
            pending = {
                key
                for key in dirty
                if chains.get(key, {}).get("tip") is None
                or chains.get(key, {}).get("tip") != stamps.get(key)
            }
            if pending:
                shards = self.index.snapshot(keys=pending)
                for key in pending - set(shards):
                    # the shard emptied out: persist the explicit empty
                    # slab so its stamp stays satisfiable
                    shards[key] = self._stack_shard([])
                if self.dao.mutation_counter() != stamp:
                    return False
                self.dao.upsert_index_shards(shards, stamp)
        self.index.consume_dirty()
        self.persist_approx_states()
        return True

    @staticmethod
    def _state_store(backend) -> str:
        """Which DAO store a companion's state lives in (``"ivf"`` or
        ``"hnsw"``); backends declare it via a ``state_store``
        attribute, defaulting to the historical IVF store."""
        return str(getattr(backend, "state_store", "ivf"))

    def _load_states(self, store: str):
        if store == "hnsw":
            return self.dao.load_hnsw_states()
        return self.dao.load_ivf_states()

    def _save_states(self, store: str, states: dict, stamp: int) -> None:
        if store == "hnsw":
            self.dao.save_hnsw_states(states, stamp)
        else:
            self.dao.save_ivf_states(states, stamp)

    def attach_approx_backend(self, backend) -> str:
        """Adopt an approximate companion backend (the IVF or HNSW
        engine) and restore its persisted training state, per shard.

        A stored per-(user, kind) state (centroids + inverted lists, or
        graph levels + adjacency) is only meaningful against the slab
        contents at the stamp it carries, so it is adopted iff its
        stamp equals the shard's *current* expected stamp
        (``shard_stamps``) — the live shard then holds exactly those
        rows (fresh load and rebuild both leave ascending-id order,
        which is the layout stored row indices refer to).  One stale
        shard no longer discards every other shard's state.  Mismatched
        shards rebuild lazily, which is always correct.  Returns
        ``"restored"``, ``"stale"`` or ``"untrained"``.
        """
        if backend not in self._companions:
            self._companions.append(backend)
        stored_stamps, states = self._load_states(self._state_store(backend))
        if not states:
            return "untrained"
        if self.index is None:
            return "stale"
        shard_stamps = self.dao.shard_stamps()
        fresh = {
            key: state
            for key, state in states.items()
            if key in shard_stamps
            and stored_stamps.get(key) == shard_stamps[key]
        }
        if not fresh:
            return "stale"
        adopted = backend.adopt_states(fresh)
        return "restored" if adopted else "untrained"

    def persist_approx_states(self) -> bool:
        """Save companion backends' trained state next to the slabs.

        Same freshness protocol as :meth:`persist_shards`: exports are
        skipped whenever the DAO's counter disagrees with the tracked
        one before or after (state must never claim freshness it does
        not have).  Each shard's state is stamped with that *shard's*
        expected stamp — its slab content is unchanged since then, and
        attach compares per shard — and the save is a per-shard upsert,
        so IVF and HNSW companions persist side by side and untouched
        shards keep their rows.  Stale trained shards are excluded by
        the export itself.  Returns whether any snapshot was written.
        """
        if self.index is None or not self._companions:
            return False
        stamp = self._index_counter
        if self.dao.mutation_counter() != stamp:
            return False
        by_store: dict[str, dict] = {}
        for backend in self._companions:
            exported = backend.export_states()
            if exported:
                by_store.setdefault(self._state_store(backend), {}).update(
                    exported
                )
        if not by_store:
            return False
        shard_stamps = self.dao.shard_stamps()
        if self.dao.mutation_counter() != stamp:
            return False
        for store, states in by_store.items():
            per_key = {
                key: shard_stamps.get(key, stamp) for key in states
            }
            self._save_states(store, states, per_key)
        return True

    def shard_persistence(self) -> dict:
        """Freshness report for the persisted per-shard state.

        ``perShard`` maps ``"user/kind"`` to that shard's expected
        stamp, journaled chain tip, chain length/bytes and freshness
        (``tip == stamp``); ``journal`` totals this service's inline
        delta appends (the bytes written per mutation the stats CLI
        reports).  The legacy top-level keys (``storedCounter``,
        ``fresh``, ...) are kept for existing callers — ``fresh`` now
        means *every* known shard replays to its expected stamp.
        """
        meta = self.dao.index_shards_meta()
        stamps = self.dao.shard_stamps()
        chains = self.dao.shard_chain_meta()
        current = self.dao.mutation_counter()
        per_shard: dict[str, dict] = {}
        fresh_shards = 0
        for key in sorted(set(stamps) | set(chains)):
            chain = chains.get(key, {})
            tip = chain.get("tip")
            stamp = stamps.get(key)
            fresh = tip is not None and tip == stamp
            fresh_shards += int(fresh)
            per_shard[f"{key[0]}/{key[1]}"] = {
                "stamp": stamp,
                "tip": tip,
                "rows": chain.get("rows", 0),
                "chainLen": chain.get("chainLen", 0),
                "chainBytes": chain.get("chainBytes", 0),
                "fresh": fresh,
            }
        total = len(per_shard)
        stored = meta.get("counter")
        return {
            "storedCounter": stored,
            "currentCounter": current,
            "shards": meta.get("shards", 0),
            "rows": meta.get("rows", 0),
            "deltas": meta.get("deltas", 0),
            "deltaBytes": meta.get("deltaBytes", 0),
            "fresh": total > 0 and fresh_shards == total,
            "freshShards": fresh_shards,
            "staleShards": total - fresh_shards,
            "discardedShards": self._attach_discarded,
            "perShard": per_shard,
            "journal": {
                "rows": self._journal_rows,
                "bytes": self._journal_bytes,
                "compactions": self._compactions,
                "bytesPerMutation": (
                    self._journal_bytes / self._journal_rows
                    if self._journal_rows
                    else 0.0
                ),
            },
        }

    def attach_mirror(self, backend) -> None:
        """Adopt a mirror backend: bulk-load the current shards into it
        and fan every future index mutation out to it.

        Mirrors (the scatter/gather fan-out above all) hold their own
        slab copies — possibly across worker processes — so the initial
        load replays the authoritative index's snapshot verbatim
        (bitwise: slabs are copied, never recomputed).
        """
        if backend in self._mirrors:
            return
        if self.index is not None:
            for (user_id, kind), (ids, matrix) in self.index.snapshot().items():
                backend.add_many(user_id, kind, ids, matrix)
        self._mirrors.append(backend)

    def _index_targets(self) -> list:
        if self.index is None:
            return []
        return [self.index, *self._mirrors]

    def _index_pe(self, user_id: int, record: PERecord) -> None:
        from repro.search.index import KIND_CODE, KIND_DESC

        for index in self._index_targets():
            if record.desc_embedding is not None:
                index.add(user_id, KIND_DESC, record.pe_id, record.desc_embedding)
            if record.code_embedding is not None:
                index.add(user_id, KIND_CODE, record.pe_id, record.code_embedding)

    def _unindex_pe(self, user_id: int, pe_id: int) -> None:
        from repro.search.index import KIND_CODE, KIND_DESC

        for index in self._index_targets():
            index.remove(user_id, KIND_DESC, pe_id)
            index.remove(user_id, KIND_CODE, pe_id)

    def _index_workflow(self, user_id: int, record: WorkflowRecord) -> None:
        from repro.search.index import KIND_WORKFLOW

        for index in self._index_targets():
            if record.desc_embedding is not None:
                index.add(
                    user_id, KIND_WORKFLOW, record.workflow_id, record.desc_embedding
                )

    def _unindex_workflow(self, user_id: int, workflow_id: int) -> None:
        from repro.search.index import KIND_WORKFLOW

        for index in self._index_targets():
            index.remove(user_id, KIND_WORKFLOW, workflow_id)

    # ------------------------------------------------------------------
    # Users / auth
    # ------------------------------------------------------------------
    def register_user(self, name: str, password: str) -> UserRecord:
        if not name or not name.strip():
            raise ValidationError("user name must be non-empty", params={"user": name})
        if not password:
            raise ValidationError("password must be non-empty")
        if self.dao.get_user_by_name(name) is not None:
            raise DuplicateError(
                f"user {name!r} already exists", params={"user": name}
            )
        return self.dao.insert_user(name, hash_password(password))

    def authenticate(self, name: str, password: str) -> UserRecord:
        user = self.dao.get_user_by_name(name)
        if user is None or user.password_hash != hash_password(password):
            raise AuthenticationError(
                "invalid login credentials", params={"user": name}
            )
        return user

    def get_user(self, name: str) -> UserRecord:
        user = self.dao.get_user_by_name(name)
        if user is None:
            raise NotFoundError(f"unknown user {name!r}", params={"user": name})
        return user

    def all_users(self) -> list[UserRecord]:
        return self.dao.all_users()

    # ------------------------------------------------------------------
    # PEs
    # ------------------------------------------------------------------
    def add_pe(self, user: UserRecord, record: PERecord) -> PERecord:
        """Register a PE, applying the §3.1 dedup-by-identity rule."""
        return self.register_pe(user, record)[0]

    def _dedup_pe_hit(
        self, user: UserRecord, record: PERecord
    ) -> PERecord | None:
        """The §3.1 dedup resolution: an identity match grants the
        caller ownership (and indexes the record for them); ``None``
        means the registration is genuinely new."""
        identity = record.identity_key()
        for existing in self.dao.find_pe_by_name(record.pe_name):
            if existing.identity_key() == identity:
                granted = user.user_id not in existing.owners
                if granted:
                    existing.owners.add(user.user_id)
                    self.dao.update_pe(existing)
                    self._note_write()
                self._index_pe(user.user_id, existing)
                if granted:
                    self._journal_pe(user.user_id, existing, "add")
                return existing
        return None

    def register_pe(
        self, user: UserRecord, record: PERecord
    ) -> tuple[PERecord, bool]:
        """Dedup-or-insert; returns ``(stored, created)``.

        ``created`` is False when the §3.1 identity rule resolved the
        registration onto an existing record (ownership granted, or the
        caller already owned it) — the v1 write envelope surfaces the
        distinction while ``add_pe`` keeps the historical signature.
        """
        hit = self._dedup_pe_hit(user, record)
        if hit is not None:
            return hit, False
        record.owners = {user.user_id}
        stored = self.dao.insert_pe(record)
        self._note_write()
        self._index_pe(user.user_id, stored)
        self._journal_pe(user.user_id, stored, "add")
        return stored, True

    def upsert_pe(
        self, user: UserRecord, current: PERecord, record: PERecord
    ) -> tuple[PERecord, bool]:
        """Replace the user's name binding: ``record`` supersedes
        ``current`` (same name, different identity).

        The new content resolves through the §3.1 dedup first (joining
        an existing identical record or inserting), then the caller's
        stake in the old record is released — dissociation when other
        owners remain (a PUT never rewrites another tenant's record),
        deletion when the caller was the sole owner.  After this, the
        user's by-name lookups, deletes and conditional writes all
        resolve to the record now holding the PUT content.
        """
        stored, created = self.register_pe(user, record)
        self.remove_pe_record(user, current)
        return stored, created

    def revise_pe(
        self, user: UserRecord, current: PERecord, record: PERecord
    ) -> tuple[PERecord, bool]:
        """In-place metadata revision: same identity (name + code),
        changed description/source/imports/embeddings.

        The record id stays stable and the revision bumps.  Identical
        identity means there is exactly ONE record (the §3.1 invariant),
        so every owner sees the revision — shared identity is shared
        metadata by construction; a caller wanting private metadata
        must change the code payload (which forks via upsert).

        Only kinds whose embedding *bytes* actually changed touch the
        index and the journal (matching the DAO's stamping rule); an
        embedding revised away entirely now also drops the stale row
        from every owner's live shard.
        """
        from repro.search.index import KIND_CODE, KIND_DESC

        changed: dict[str, np.ndarray | None] = {}
        for kind, old_vec, new_vec in (
            (KIND_DESC, current.desc_embedding, record.desc_embedding),
            (KIND_CODE, current.code_embedding, record.code_embedding),
        ):
            if _embed_bytes(old_vec) != _embed_bytes(new_vec):
                changed[kind] = new_vec
        current.description = record.description
        current.description_origin = record.description_origin
        current.pe_source = record.pe_source
        current.pe_imports = list(record.pe_imports)
        current.desc_embedding = record.desc_embedding
        current.code_embedding = record.code_embedding
        self.dao.update_pe(current)
        self._note_write()
        for kind, vec in changed.items():
            for owner in current.owners:
                if vec is not None:
                    for index in self._index_targets():
                        index.add(owner, kind, current.pe_id, vec)
                    self._journal_delta(
                        owner, kind, "add", [current.pe_id], [vec]
                    )
                else:
                    for index in self._index_targets():
                        index.remove(owner, kind, current.pe_id)
                    self._journal_delta(
                        owner, kind, "remove", [current.pe_id]
                    )
        return current, False

    def register_pes_bulk(
        self, user: UserRecord, records: list[PERecord], *, persist: bool = True
    ) -> tuple[list[PERecord], list[bool]]:
        """Bulk registration: one DAO ``executemany`` insert, one index
        ``add_many`` per shard kind, one shard persist.

        Applies the same §3.1 dedup-by-identity rule as
        :meth:`register_pe` — against the registry *and* within the
        batch itself (two identical items resolve to one record).
        Returns the stored records in item order plus per-item
        ``created`` flags.
        """
        from repro.search.index import KIND_CODE, KIND_DESC

        stored: list[PERecord] = []
        created: list[bool] = []
        fresh: list[PERecord] = []
        by_identity: dict[str, PERecord] = {}
        for record in records:
            identity = record.identity_key()
            batch_hit = by_identity.get(identity)
            if batch_hit is not None:
                # in-batch duplicate: resolves to whatever the first
                # occurrence resolved to.  Never index here — a fresh
                # first occurrence has no id yet (it is inserted and
                # indexed with its real id after the loop), and a
                # registry hit was already indexed then.
                stored.append(batch_hit)
                created.append(False)
                continue
            hit = self._dedup_pe_hit(user, record)
            if hit is not None:
                by_identity[identity] = hit
                stored.append(hit)
                created.append(False)
                continue
            record.owners = {user.user_id}
            fresh.append(record)
            by_identity[identity] = record
            stored.append(record)
            created.append(True)
        if fresh:
            self.dao.insert_pes(fresh)
            # both DAOs treat a bulk insert as ONE mutation event
            self._note_write()
            desc = [
                (r.pe_id, r.desc_embedding)
                for r in fresh
                if r.desc_embedding is not None
            ]
            code = [
                (r.pe_id, r.code_embedding)
                for r in fresh
                if r.code_embedding is not None
            ]
            for index in self._index_targets():
                if desc:
                    index.add_many(
                        user.user_id,
                        KIND_DESC,
                        [rid for rid, _ in desc],
                        [vec for _, vec in desc],
                    )
                if code:
                    index.add_many(
                        user.user_id,
                        KIND_CODE,
                        [rid for rid, _ in code],
                        [vec for _, vec in code],
                    )
            # one journal row per kind for the whole batch, at the one
            # counter the DAO stamped it with; with persist deferred to
            # the caller, inline chain compaction is deferred with it
            if desc:
                self._journal_delta(
                    user.user_id,
                    KIND_DESC,
                    "add",
                    [rid for rid, _ in desc],
                    [vec for _, vec in desc],
                    allow_compact=persist,
                )
            if code:
                self._journal_delta(
                    user.user_id,
                    KIND_CODE,
                    "add",
                    [rid for rid, _ in code],
                    [vec for _, vec in code],
                    allow_compact=persist,
                )
        if persist:
            self.persist_shards()
        return stored, created

    def _owned_pe(self, user: UserRecord, pe_id: int) -> PERecord:
        record = self.dao.get_pe(pe_id)
        if record is None or user.user_id not in record.owners:
            raise NotFoundError(
                f"PE id {pe_id} not found for user {user.user_name!r}",
                params={"peId": pe_id, "user": user.user_name},
            )
        return record

    def get_pe_by_id(self, user: UserRecord, pe_id: int) -> PERecord:
        return self._owned_pe(user, pe_id)

    def get_pe_by_name(self, user: UserRecord, name: str) -> PERecord:
        for record in self.dao.find_pe_by_name(name):
            if user.user_id in record.owners:
                return record
        raise NotFoundError(
            f"PE {name!r} not found for user {user.user_name!r}",
            params={"peName": name, "user": user.user_name},
        )

    def user_pes(self, user: UserRecord) -> list[PERecord]:
        """The user's PEs, ascending id — owner-scoped at the DAO."""
        return self.dao.pes_owned_by(user.user_id)

    def owned_pe_ids(self, user: UserRecord) -> list[int]:
        """Ascending owned PE ids; no row materialization at all."""
        return self.dao.pe_ids_owned_by(user.user_id)

    def resolve_pes(self, user: UserRecord, pe_ids: list[int]) -> list[PERecord]:
        """Batch-hydrate ``pe_ids`` in order, dropping non-owned records.

        The top-k serving path: the searcher ranks on the index shard
        and materializes only the winners through this call.  Ids that
        vanished or changed hands since ranking are silently skipped —
        the caller's result is then slightly under-filled rather than
        wrong.
        """
        return [
            record
            for record in self.dao.get_pes(pe_ids)
            if user.user_id in record.owners
        ]

    def text_candidate_pes(self, user: UserRecord, query: str) -> list[PERecord]:
        """Candidate PEs for the **legacy** Python text scorer.

        Serves only the legacy Table-3 parity adapter, whose contract
        is the byte-identical historical scorer output.  The SQL
        ``LIKE`` filter (``RegistryDAO.pes_owned_by_matching``) is a
        strict superset of the scorer's matches, so scoring the
        candidates yields exactly the historical results.  The v1
        ``queryType=text`` path ranks in the FTS5 index instead — see
        :meth:`text_topk_pes`.
        """
        from repro.search.text_search import candidate_patterns

        return self.dao.pes_owned_by_matching(
            user.user_id, candidate_patterns(query)
        )

    def text_topk_pes(
        self, user: UserRecord, query: str, k: int | None = None
    ) -> list[tuple[PERecord, float]]:
        """Indexed BM25+substring text ranking — O(k) hydration.

        The DAO ranks owned PE ids inside its inverted index
        (``RegistryDAO.text_topk_pes``); only the winners are
        materialized, mirroring the semantic top-k serving shape.
        Returns ``(record, score)`` pairs in rank order; ids that
        vanished or changed hands since ranking are skipped.
        """
        ranked = self.dao.text_topk_pes(user.user_id, query, k)
        by_id = {
            record.pe_id: record
            for record in self.dao.get_pes([i for i, _ in ranked])
            if user.user_id in record.owners
        }
        return [
            (by_id[i], score) for i, score in ranked if i in by_id
        ]

    def remove_pe(self, user: UserRecord, pe_id: int) -> None:
        """Dissociate the user; delete the PE once ownerless."""
        self.remove_pe_record(user, self._owned_pe(user, pe_id))

    def remove_pe_record(self, user: UserRecord, record: PERecord) -> None:
        """Remove an already-fetched owned record (no re-fetch).

        The write core resolves the target once for its revision check;
        re-reading it here would unblob the embeddings a second time
        inside the write lock.
        """
        record.owners.discard(user.user_id)
        if record.owners:
            self.dao.update_pe(record)
        else:
            self.dao.delete_pe(record.pe_id)
        self._note_write()
        self._unindex_pe(user.user_id, record.pe_id)
        self._journal_pe(user.user_id, record, "remove")

    def remove_pe_by_name(self, user: UserRecord, name: str) -> None:
        record = self.get_pe_by_name(user, name)
        self.remove_pe(user, record.pe_id)

    # ------------------------------------------------------------------
    # Workflows
    # ------------------------------------------------------------------
    def add_workflow(
        self, user: UserRecord, record: WorkflowRecord
    ) -> WorkflowRecord:
        return self.register_workflow(user, record)[0]

    def _dedup_workflow_hit(
        self, user: UserRecord, record: WorkflowRecord
    ) -> WorkflowRecord | None:
        """The §3.1 dedup resolution for workflows (see
        :meth:`_dedup_pe_hit`): an identity match grants the caller
        ownership; ``None`` means the registration is genuinely new."""
        for existing in self.dao.find_workflow_by_entry_point(record.entry_point):
            if existing.identity_key() == record.identity_key():
                granted = user.user_id not in existing.owners
                if granted:
                    existing.owners.add(user.user_id)
                    self.dao.update_workflow(existing)
                    self._note_write()
                self._index_workflow(user.user_id, existing)
                if granted:
                    self._journal_workflow(user.user_id, existing, "add")
                return existing
        return None

    def register_workflow(
        self, user: UserRecord, record: WorkflowRecord
    ) -> tuple[WorkflowRecord, bool]:
        """Dedup-or-insert; returns ``(stored, created)`` (see register_pe)."""
        hit = self._dedup_workflow_hit(user, record)
        if hit is not None:
            return hit, False
        record.owners = {user.user_id}
        stored = self.dao.insert_workflow(record)
        self._note_write()
        self._index_workflow(user.user_id, stored)
        self._journal_workflow(user.user_id, stored, "add")
        return stored, True

    def register_workflows_bulk(
        self,
        user: UserRecord,
        records: list[WorkflowRecord],
        *,
        persist: bool = True,
    ) -> tuple[list[WorkflowRecord], list[bool]]:
        """Bulk workflow registration — the :meth:`register_pes_bulk`
        contract for workflows: one DAO ``executemany`` insert, one
        index ``add_many``, one journal row, one shard persist, with
        the §3.1 dedup applied against the registry *and* within the
        batch itself.
        """
        from repro.search.index import KIND_WORKFLOW

        stored: list[WorkflowRecord] = []
        created: list[bool] = []
        fresh: list[WorkflowRecord] = []
        by_identity: dict[str, WorkflowRecord] = {}
        for record in records:
            identity = record.identity_key()
            batch_hit = by_identity.get(identity)
            if batch_hit is not None:
                stored.append(batch_hit)
                created.append(False)
                continue
            hit = self._dedup_workflow_hit(user, record)
            if hit is not None:
                by_identity[identity] = hit
                stored.append(hit)
                created.append(False)
                continue
            record.owners = {user.user_id}
            fresh.append(record)
            by_identity[identity] = record
            stored.append(record)
            created.append(True)
        if fresh:
            self.dao.insert_workflows(fresh)
            # both DAOs treat a bulk insert as ONE mutation event
            self._note_write()
            indexed = [
                (r.workflow_id, r.desc_embedding)
                for r in fresh
                if r.desc_embedding is not None
            ]
            if indexed:
                ids = [rid for rid, _ in indexed]
                vectors = [vec for _, vec in indexed]
                for index in self._index_targets():
                    index.add_many(user.user_id, KIND_WORKFLOW, ids, vectors)
                self._journal_delta(
                    user.user_id,
                    KIND_WORKFLOW,
                    "add",
                    ids,
                    vectors,
                    allow_compact=persist,
                )
        if persist:
            self.persist_shards()
        return stored, created

    def upsert_workflow(
        self, user: UserRecord, current: WorkflowRecord, record: WorkflowRecord
    ) -> tuple[WorkflowRecord, bool]:
        """Replace the user's entry-point binding (see :meth:`upsert_pe`)."""
        stored, created = self.register_workflow(user, record)
        self.remove_workflow_record(user, current)
        return stored, created

    def revise_workflow(
        self, user: UserRecord, current: WorkflowRecord, record: WorkflowRecord
    ) -> tuple[WorkflowRecord, bool]:
        """In-place metadata revision (see :meth:`revise_pe`)."""
        from repro.search.index import KIND_WORKFLOW

        desc_changed = _embed_bytes(current.desc_embedding) != _embed_bytes(
            record.desc_embedding
        )
        current.workflow_name = record.workflow_name
        current.description = record.description
        current.workflow_source = record.workflow_source
        current.pe_ids = list(record.pe_ids)
        current.desc_embedding = record.desc_embedding
        self.dao.update_workflow(current)
        self._note_write()
        if desc_changed:
            for owner in current.owners:
                if current.desc_embedding is not None:
                    for index in self._index_targets():
                        index.add(
                            owner,
                            KIND_WORKFLOW,
                            current.workflow_id,
                            current.desc_embedding,
                        )
                    self._journal_delta(
                        owner,
                        KIND_WORKFLOW,
                        "add",
                        [current.workflow_id],
                        [current.desc_embedding],
                    )
                else:
                    for index in self._index_targets():
                        index.remove(
                            owner, KIND_WORKFLOW, current.workflow_id
                        )
                    self._journal_delta(
                        owner, KIND_WORKFLOW, "remove", [current.workflow_id]
                    )
        return current, False

    def _owned_workflow(self, user: UserRecord, workflow_id: int) -> WorkflowRecord:
        record = self.dao.get_workflow(workflow_id)
        if record is None or user.user_id not in record.owners:
            raise NotFoundError(
                f"workflow id {workflow_id} not found for user "
                f"{user.user_name!r}",
                params={"workflowId": workflow_id, "user": user.user_name},
            )
        return record

    def get_workflow_by_id(
        self, user: UserRecord, workflow_id: int
    ) -> WorkflowRecord:
        return self._owned_workflow(user, workflow_id)

    def get_workflow_by_name(self, user: UserRecord, name: str) -> WorkflowRecord:
        for record in self.dao.find_workflow_by_entry_point(name):
            if user.user_id in record.owners:
                return record
        raise NotFoundError(
            f"workflow {name!r} not found for user {user.user_name!r}",
            params={"entryPoint": name, "user": user.user_name},
        )

    def user_workflows(self, user: UserRecord) -> list[WorkflowRecord]:
        """The user's workflows, ascending id — owner-scoped at the DAO."""
        return self.dao.workflows_owned_by(user.user_id)

    def owned_workflow_ids(self, user: UserRecord) -> list[int]:
        """Ascending owned workflow ids; no row materialization at all."""
        return self.dao.workflow_ids_owned_by(user.user_id)

    def resolve_workflows(
        self, user: UserRecord, workflow_ids: list[int]
    ) -> list[WorkflowRecord]:
        """Batch-hydrate ``workflow_ids`` in order, dropping non-owned."""
        return [
            record
            for record in self.dao.get_workflows(workflow_ids)
            if user.user_id in record.owners
        ]

    def text_candidate_workflows(
        self, user: UserRecord, query: str
    ) -> list[WorkflowRecord]:
        """Candidate workflows for the **legacy** Python text scorer
        (legacy Table-3 parity adapter only; see
        :meth:`text_candidate_pes`)."""
        from repro.search.text_search import candidate_patterns

        return self.dao.workflows_owned_by_matching(
            user.user_id, candidate_patterns(query)
        )

    def text_topk_workflows(
        self, user: UserRecord, query: str, k: int | None = None
    ) -> list[tuple[WorkflowRecord, float]]:
        """Indexed BM25+substring workflow ranking (see
        :meth:`text_topk_pes`)."""
        ranked = self.dao.text_topk_workflows(user.user_id, query, k)
        by_id = {
            record.workflow_id: record
            for record in self.dao.get_workflows([i for i, _ in ranked])
            if user.user_id in record.owners
        }
        return [
            (by_id[i], score) for i, score in ranked if i in by_id
        ]

    def remove_workflow(self, user: UserRecord, workflow_id: int) -> None:
        self.remove_workflow_record(
            user, self._owned_workflow(user, workflow_id)
        )

    def remove_workflow_record(
        self, user: UserRecord, record: WorkflowRecord
    ) -> None:
        """Remove an already-fetched owned record (no re-fetch)."""
        record.owners.discard(user.user_id)
        if record.owners:
            self.dao.update_workflow(record)
        else:
            self.dao.delete_workflow(record.workflow_id)
        self._note_write()
        self._unindex_workflow(user.user_id, record.workflow_id)
        self._journal_workflow(user.user_id, record, "remove")

    def remove_workflow_by_name(self, user: UserRecord, name: str) -> None:
        record = self.get_workflow_by_name(user, name)
        self.remove_workflow(user, record.workflow_id)

    # ------------------------------------------------------------------
    # Associations
    # ------------------------------------------------------------------
    def link_pe_to_workflow(
        self, user: UserRecord, workflow_id: int, pe_id: int
    ) -> WorkflowRecord:
        """PUT /registry/{user}/workflow/{workflowId}/pe/{peId}."""
        workflow = self._owned_workflow(user, workflow_id)
        self._owned_pe(user, pe_id)
        if pe_id not in workflow.pe_ids:
            workflow.pe_ids.append(pe_id)
            self.dao.update_workflow(workflow)
            self._note_write()
        return workflow

    def workflow_pes(
        self, user: UserRecord, workflow_id: int
    ) -> list[PERecord]:
        workflow = self._owned_workflow(user, workflow_id)
        records = []
        for pe_id in workflow.pe_ids:
            record = self.dao.get_pe(pe_id)
            if record is not None:
                records.append(record)
        return records

    def workflow_pes_by_name(self, user: UserRecord, name: str) -> list[PERecord]:
        workflow = self.get_workflow_by_name(user, name)
        return self.workflow_pes(user, workflow.workflow_id)
