"""The Laminar Registry (paper §3.1).

A central repository housing users, Processing Elements and workflows,
with the schema of Figure 4 / Table 2:

* ``User`` — userId, userName, password
* ``PE`` — peId, peName, description, peCode, peImports, codeEmbedding,
  descEmbedding
* ``Workflow`` — workflowId, workflowName, entryPoint, description,
  workflowCode

plus the relationships: user<->PE and user<->workflow are one-way
many-to-many ("owners"); PE<->workflow is two-way many-to-many.

The paper hosts the registry on a remote MySQL web service; offline we
provide two DAO backends with identical behaviour — in-memory (tests,
local stacks) and SQLite (durable) — behind the same service layer that
implements the paper's ownership/dedup rules (§3.1: re-registering an
existing PE adds the user as an additional owner instead of duplicating
the entry).

O(k) serving-path primitives
============================

Because the registry fronts a remote store serving many users, the DAO
exposes access paths whose cost scales with the *result*, not the
corpus:

* ``pes_owned_by(user_id)`` / ``workflows_owned_by(user_id)`` —
  owner-scoped listings, O(user's rows).  ``RegistryService.user_pes``
  / ``user_workflows`` delegate here instead of filtering
  ``all_pes()`` in Python.
* ``pe_ids_owned_by(user_id)`` / ``workflow_ids_owned_by(user_id)`` —
  id-only projections that never materialize rows or unblob embedding
  BLOBs; the search serving path uses them for shard-membership checks
  (``RegistryService.owned_pe_ids`` / ``owned_workflow_ids``).
* ``get_pes(ids)`` / ``get_workflows(ids)`` — id-batched fetch in
  request order, used by ``RegistryService.resolve_pes`` /
  ``resolve_workflows`` to hydrate exactly the top-k search winners.
* ``insert_pes`` / ``insert_workflows`` — bulk load (one
  ``executemany`` batch per table in SQLite).

The owners migration
====================

In :class:`~repro.registry.dao.SqliteDAO`, ownership and the
PE<->workflow association are normalized into indexed join tables
(``pe_owners``, ``workflow_owners``, ``workflow_pes``) so the scoped
queries filter in SQL.  The legacy JSON ``owners`` / ``pe_ids`` columns
remain the on-record storage format (old readers keep working); the
join tables are derived data kept in sync on every write.  A file
written before schema v1 (``PRAGMA user_version`` < 1) is backfilled
from the JSON columns exactly once when opened.
"""

from repro.registry.entities import PERecord, UserRecord, WorkflowRecord
from repro.registry.dao import InMemoryDAO, RegistryDAO, SqliteDAO
from repro.registry.service import RegistryService

__all__ = [
    "UserRecord",
    "PERecord",
    "WorkflowRecord",
    "RegistryDAO",
    "InMemoryDAO",
    "SqliteDAO",
    "RegistryService",
]
