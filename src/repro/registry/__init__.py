"""The Laminar Registry (paper §3.1).

A central repository housing users, Processing Elements and workflows,
with the schema of Figure 4 / Table 2:

* ``User`` — userId, userName, password
* ``PE`` — peId, peName, description, peCode, peImports, codeEmbedding,
  descEmbedding
* ``Workflow`` — workflowId, workflowName, entryPoint, description,
  workflowCode

plus the relationships: user<->PE and user<->workflow are one-way
many-to-many ("owners"); PE<->workflow is two-way many-to-many.

The paper hosts the registry on a remote MySQL web service; offline we
provide two DAO backends with identical behaviour — in-memory (tests,
local stacks) and SQLite (durable) — behind the same service layer that
implements the paper's ownership/dedup rules (§3.1: re-registering an
existing PE adds the user as an additional owner instead of duplicating
the entry).
"""

from repro.registry.entities import PERecord, UserRecord, WorkflowRecord
from repro.registry.dao import InMemoryDAO, RegistryDAO, SqliteDAO
from repro.registry.service import RegistryService

__all__ = [
    "UserRecord",
    "PERecord",
    "WorkflowRecord",
    "RegistryDAO",
    "InMemoryDAO",
    "SqliteDAO",
    "RegistryService",
]
