"""Latency models for simulated deployments (Table 5's local vs remote).

A :class:`LatencyModel` charges each transport direction
``rtt/2 + payload_bytes/bandwidth`` seconds, with optional multiplicative
jitter from a seeded RNG (deterministic benchmarks).  ``sleep=False``
turns the model into a pure cost *accountant* — benchmarks can either
really sleep (wall-clock realism) or just integrate the modelled cost.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


@dataclass
class LatencyModel:
    """Network cost model for one transport hop."""

    name: str = "local"
    #: round-trip time in seconds (a request pays rtt/2 each direction)
    rtt_s: float = 0.0
    #: link bandwidth in bytes/second (0 means infinite)
    bandwidth_bps: float = 0.0
    #: +- fractional jitter applied multiplicatively
    jitter: float = 0.0
    seed: int = 7
    #: when False, ``apply`` only accounts cost without sleeping
    sleep: bool = True
    _rng: random.Random = field(init=False, repr=False)
    #: accumulated modelled cost in seconds
    accounted_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, payload_bytes: int) -> float:
        """Modelled one-way delay for a payload of the given size."""
        base = self.rtt_s / 2.0
        if self.bandwidth_bps > 0:
            base += payload_bytes / self.bandwidth_bps
        if self.jitter > 0:
            base *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(0.0, base)

    def apply(self, payload_bytes: int) -> float:
        """Charge (and optionally sleep) one direction; returns seconds."""
        cost = self.delay(payload_bytes)
        self.accounted_s += cost
        if self.sleep and cost > 0:
            time.sleep(cost)
        return cost

    def reset_accounting(self) -> None:
        self.accounted_s = 0.0


#: zero-cost model: client, server and engine in one process
LOCAL = LatencyModel(name="local", rtt_s=0.0, bandwidth_bps=0.0)

#: same-site deployment (the paper's "Local Execution Engine" still talks
#: to the remotely hosted Registry; this models the short hop)
LAN = LatencyModel(
    name="lan", rtt_s=0.0008, bandwidth_bps=1.25e9, jitter=0.05
)

#: Azure-App-Service-like WAN hop (the paper's remote Execution Engine)
AZURE_WAN = LatencyModel(
    name="azure-wan", rtt_s=0.035, bandwidth_bps=6.25e6, jitter=0.10
)


def make_latency(name: str) -> LatencyModel:
    """Fresh (independently seeded/accounted) preset by name."""
    presets = {
        "local": LOCAL,
        "lan": LAN,
        "azure-wan": AZURE_WAN,
    }
    if name not in presets:
        raise ValueError(f"unknown latency preset {name!r}; have {sorted(presets)}")
    template = presets[name]
    return LatencyModel(
        name=template.name,
        rtt_s=template.rtt_s,
        bandwidth_bps=template.bandwidth_bps,
        jitter=template.jitter,
    )
