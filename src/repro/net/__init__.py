"""Client/server transport substrate.

The paper deploys the Server and Execution Engine either locally or
remotely (Dockerized on Azure App Services, §6.1).  Offline we model the
transport explicitly:

* :class:`~repro.net.transport.InProcessTransport` — direct dispatch to
  a server object, optionally shaped by a latency model.
* :class:`~repro.net.latency.LatencyModel` — RTT + bandwidth + jitter
  cost applied per request/response, with presets for the paper's three
  deployment scenarios (in-process "local engine", LAN, and the Azure-
  like WAN remote engine).

Every request/response body is round-tripped through JSON, so the wire
format is enforced even in-process — a body that would not survive real
HTTP fails here too.
"""

from repro.net.latency import AZURE_WAN, LAN, LOCAL, LatencyModel
from repro.net.transport import InProcessTransport, Request, Response, Transport

__all__ = [
    "Request",
    "Response",
    "Transport",
    "InProcessTransport",
    "LatencyModel",
    "LOCAL",
    "LAN",
    "AZURE_WAN",
]
