"""Request/response transport between Client and Server.

:class:`Request`/:class:`Response` mirror a minimal HTTP exchange (method,
path, JSON body, bearer token).  :class:`InProcessTransport` dispatches
directly into a server object while still enforcing the JSON wire format
and charging a latency model per direction — the mechanism behind the
local-vs-remote comparison of Table 5.

Header parity: every transport must carry ``Request.headers`` to the
server and surface the server's response headers on
``Response.headers`` — the in-process transport passes both through
verbatim, and :class:`repro.server.http.HttpTransport` maps them onto
real HTTP headers (``Idempotency-Key`` out, ``Idempotent-Replay`` /
``Allow`` back), so retry-safety behaves identically over either wire.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.errors import TransportError
from repro.net.latency import LatencyModel


@dataclass
class Request:
    """One client request.

    ``headers`` carries request metadata that lives outside the JSON
    body (currently the ``Idempotency-Key`` write-retry header).  Kept
    separate from the body on purpose: the v1 envelopes validate the
    body strictly, and folding transport headers into it would make a
    harmless retry header a 400 on every strict read route.  Never
    counted by :meth:`wire_size`.
    """

    method: str
    path: str
    body: dict[str, Any] = field(default_factory=dict)
    token: str | None = None
    headers: dict[str, str] = field(default_factory=dict)

    def wire_size(self) -> int:
        """Bytes this request would occupy as JSON on the wire."""
        try:
            payload = json.dumps(
                {"method": self.method, "path": self.path, "body": self.body}
            )
        except (TypeError, ValueError) as exc:
            raise TransportError(
                "request body is not JSON-serializable",
                params={"path": self.path},
                details=str(exc),
            ) from exc
        return len(payload.encode("utf-8"))


@dataclass
class Response:
    """One server response.

    ``headers`` carries response metadata that belongs outside the JSON
    body (e.g. ``Allow`` on a 405); the HTTP adapter emits them as real
    headers and the in-process transport passes them through untouched.
    They never count toward :meth:`wire_size` (header overhead is not
    part of the latency model's payload accounting).
    """

    status: int
    body: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def wire_size(self) -> int:
        try:
            payload = json.dumps({"status": self.status, "body": self.body})
        except (TypeError, ValueError) as exc:
            raise TransportError(
                "response body is not JSON-serializable",
                details=str(exc),
            ) from exc
        return len(payload.encode("utf-8"))


class Transport(ABC):
    """How a client reaches a server."""

    @abstractmethod
    def request(self, request: Request) -> Response:
        """Send one request and return the response."""


class InProcessTransport(Transport):
    """Direct dispatch to a server object with wire-format enforcement.

    The body is round-tripped through ``json.dumps``/``loads`` in both
    directions, so objects that would not survive real HTTP (NumPy
    arrays, sets, custom classes) are rejected here too.  A
    :class:`LatencyModel` charges each direction, letting one process
    emulate the paper's local and Azure-remote deployments.
    """

    def __init__(self, server: Any, latency: LatencyModel | None = None) -> None:
        if not hasattr(server, "dispatch"):
            raise TransportError(
                f"server object {type(server).__name__} has no dispatch()"
            )
        self.server = server
        self.latency = latency

    def request(self, request: Request) -> Response:
        request_bytes = request.wire_size()
        if self.latency is not None:
            self.latency.apply(request_bytes)
        # enforce the JSON wire format on the request body
        wire_body = json.loads(json.dumps(request.body))
        response = self.server.dispatch(
            Request(
                request.method,
                request.path,
                wire_body,
                request.token,
                dict(request.headers),
            )
        )
        response_wire = Response(
            response.status,
            json.loads(json.dumps(response.body)),
            dict(response.headers),
        )
        if self.latency is not None:
            self.latency.apply(response_wire.wire_size())
        return response_wire
