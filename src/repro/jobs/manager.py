"""The background-job manager: worker pool, job store, lifecycle.

See :mod:`repro.jobs` for the design rationale.  Everything here is
plain ``threading`` — jobs are I/O- and DAO-bound (the model work
releases the GIL rarely, but ingest batches spend their time in SQLite
and BLAS), and a bounded pool of daemon threads keeps the serving
event loop untouched.
"""

from __future__ import annotations

import threading
import traceback
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError, error_envelope

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_SUCCEEDED = "succeeded"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: every state a job record can report, in lifecycle order
JOB_STATES = (
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_SUCCEEDED,
    JOB_FAILED,
    JOB_CANCELLED,
)

#: states a job never leaves (and the only ones retention may prune)
TERMINAL_STATES = frozenset({JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED})


class JobCancelled(Exception):
    """Raised *inside* a job body by :meth:`JobContext.checkpoint` when
    cancellation was requested; unwinds the job into ``cancelled``."""


@dataclass
class JobRecord:
    """One job's full observable state (mutated only under the manager
    lock; hand out :meth:`to_json` snapshots, never the record)."""

    job_id: str
    kind: str
    owner: str | None
    state: str = JOB_QUEUED
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: monotonic counters the running job advances (never decremented)
    progress: dict[str, int] = field(default_factory=dict)
    #: request echo — what the job was asked to do (already validated)
    params: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    cancel_requested: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "jobId": self.job_id,
            "kind": self.kind,
            "owner": self.owner,
            "state": self.state,
            "createdAt": self.created_at,
            "startedAt": self.started_at,
            "finishedAt": self.finished_at,
            "progress": dict(self.progress),
            "params": dict(self.params),
            "result": None if self.result is None else dict(self.result),
            "error": None if self.error is None else dict(self.error),
            "cancelRequested": self.cancel_requested,
        }


class JobContext:
    """What a running job body receives: progress + cancellation.

    The context is the *only* sanctioned way a job touches its record —
    it serializes on the manager lock, so API readers always see a
    consistent snapshot.
    """

    def __init__(self, manager: "JobManager", record: JobRecord) -> None:
        self._manager = manager
        self._record = record

    @property
    def job_id(self) -> str:
        return self._record.job_id

    def advance(self, counter: str, delta: int = 1) -> int:
        """Add ``delta`` (>= 0) to a named progress counter.

        Counters are monotonic by construction — a job reports how much
        it has done, never less than before — so pollers can treat any
        observed value as a floor.
        """
        if delta < 0:
            raise ValueError(f"progress is monotonic; delta {delta} < 0")
        with self._manager._lock:
            value = self._record.progress.get(counter, 0) + int(delta)
            self._record.progress[counter] = value
            return value

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested (advisory peek)."""
        with self._manager._lock:
            return self._record.cancel_requested

    def checkpoint(self) -> None:
        """Cooperative cancellation point: raise :class:`JobCancelled`
        if a cancel was requested.  Call between batches — work already
        landed stays landed (ingest is not transactional; the progress
        counters say exactly how far it got)."""
        if self.cancelled:
            raise JobCancelled(self._record.job_id)


class JobManager:
    """Thread-safe job store + bounded FIFO worker pool.

    Parameters
    ----------
    workers:
        Maximum jobs running concurrently (worker threads are daemon
        and started lazily on first submit).
    retention_ttl:
        Seconds a *terminal* record stays readable; ``None`` keeps
        records until the cap evicts them.  Enforced opportunistically
        on submit/get/list — no background sweeper.
    retention_cap:
        Maximum terminal records retained (oldest finished first);
        ``None`` means unbounded.
    clock:
        Injectable time source (tests pin it to exercise TTL GC).
    """

    def __init__(
        self,
        workers: int = 2,
        retention_ttl: float | None = 3600.0,
        retention_cap: int | None = 500,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if workers < 1:
            raise ValueError("JobManager needs at least one worker")
        self.workers = int(workers)
        self.retention_ttl = retention_ttl
        self.retention_cap = retention_cap
        self._clock = clock
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._records: dict[str, JobRecord] = {}
        self._fns: dict[str, Callable[[JobContext], dict[str, Any] | None]] = {}
        self._queue: deque[str] = deque()
        self._threads: list[threading.Thread] = []
        self._next_id = 0
        self._shutdown = False

    # ------------------------------------------------------------------
    # Submission and the worker loop
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        fn: Callable[[JobContext], dict[str, Any] | None],
        *,
        owner: str | None = None,
        params: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Enqueue ``fn`` as a new job; returns the queued snapshot.

        ``fn`` receives a :class:`JobContext`; its return value (a JSON
        dict, or ``None``) becomes the job's ``result`` on success.
        """
        with self._lock:
            if self._shutdown:
                raise RuntimeError("JobManager is shut down")
            self._prune_locked()
            self._next_id += 1
            record = JobRecord(
                job_id=f"job-{self._next_id:06d}",
                kind=kind,
                owner=owner,
                created_at=self._clock(),
                params=dict(params or {}),
            )
            self._records[record.job_id] = record
            self._queue.append(record.job_id)
            self._fns[record.job_id] = fn
            if len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._worker,
                    name=f"repro-job-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
            self._wake.notify()
            return record.to_json()

    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._shutdown:
                    self._wake.wait()
                if self._shutdown and not self._queue:
                    return
                job_id = self._queue.popleft()
                record = self._records.get(job_id)
                fn = self._fns.pop(job_id, None)
                if record is None or fn is None:
                    continue
                if record.state != JOB_QUEUED:
                    # cancelled while queued: already terminal, never ran
                    continue
                record.state = JOB_RUNNING
                record.started_at = self._clock()
                context = JobContext(self, record)
            self._run_one(record, fn, context)

    def _run_one(
        self,
        record: JobRecord,
        fn: Callable[[JobContext], dict[str, Any] | None],
        context: JobContext,
    ) -> None:
        """Execute one job body outside the lock; settle under it."""
        state = JOB_SUCCEEDED
        result: dict[str, Any] | None = None
        error: dict[str, Any] | None = None
        try:
            returned = fn(context)
            result = dict(returned) if isinstance(returned, dict) else None
        except JobCancelled:
            state = JOB_CANCELLED
        except ReproError as exc:
            # the API's §3.2.5 envelope, minus the HTTP code — a job
            # failure is not an HTTP response, but readers get the same
            # error/message/params/details vocabulary
            state = JOB_FAILED
            envelope = exc.to_json()
            envelope.pop("code", None)
            error = envelope
        except BaseException as exc:  # job bodies must never kill a worker
            state = JOB_FAILED
            error = error_envelope(
                "InternalError",
                None,
                f"{type(exc).__name__}: {exc}",
                details=traceback.format_exc(limit=5),
            )
        with self._lock:
            record.state = state
            record.finished_at = self._clock()
            record.result = result
            record.error = error

    # ------------------------------------------------------------------
    # Store access (API surface)
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            self._prune_locked()
            record = self._records.get(job_id)
            return None if record is None else record.to_json()

    def list(
        self, *, owner: str | None = None, state: str | None = None
    ) -> list[dict[str, Any]]:
        """Snapshots newest-first, optionally filtered by owner/state."""
        with self._lock:
            self._prune_locked()
            records = [
                record.to_json()
                for record in self._records.values()
                if (owner is None or record.owner == owner)
                and (state is None or record.state == state)
            ]
        records.sort(key=lambda snap: snap["jobId"], reverse=True)
        return records

    def cancel(self, job_id: str) -> dict[str, Any] | None:
        """Request cancellation; returns the post-request snapshot.

        A queued job is cancelled immediately (it will never run); a
        running job gets the flag and settles at its next checkpoint; a
        terminal job is untouched (cancel is idempotent).
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return None
            if record.state == JOB_QUEUED:
                record.state = JOB_CANCELLED
                record.cancel_requested = True
                record.finished_at = self._clock()
            elif record.state == JOB_RUNNING:
                record.cancel_requested = True
            return record.to_json()

    def stats(self) -> dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for record in self._records.values():
                counts[record.state] += 1
            return counts

    # ------------------------------------------------------------------
    # Retention + shutdown
    # ------------------------------------------------------------------
    def _prune_locked(self) -> None:
        terminal = [
            record
            for record in self._records.values()
            if record.state in TERMINAL_STATES
        ]
        if self.retention_ttl is not None:
            horizon = self._clock() - self.retention_ttl
            for record in terminal:
                if (record.finished_at or 0.0) < horizon:
                    del self._records[record.job_id]
            terminal = [
                record
                for record in terminal
                if record.job_id in self._records
            ]
        if self.retention_cap is not None and len(terminal) > self.retention_cap:
            terminal.sort(key=lambda record: (record.finished_at or 0.0))
            for record in terminal[: len(terminal) - self.retention_cap]:
                del self._records[record.job_id]

    def join(self, timeout: float = 30.0) -> bool:
        """Block until no job is queued or running (tests/CLI polling).

        Returns ``False`` on timeout.  Purely observational — workers
        keep accepting submissions afterwards.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                busy = self._queue or any(
                    record.state in (JOB_QUEUED, JOB_RUNNING)
                    for record in self._records.values()
                )
            if not busy:
                return True
            time.sleep(0.005)
        return False

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work and (optionally) drain the queue."""
        with self._wake:
            self._shutdown = True
            self._wake.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
