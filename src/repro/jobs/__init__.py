"""Background jobs — the server's asynchronous work plane.

The serving stack answers searches in milliseconds, but some work units
are minutes long: ingesting a whole repository, re-training an ANN
backend, executing a registered workflow.  Running those inline would
hold an HTTP connection (and, worse, tempt callers into holding the
write lock) for the duration.  This package gives the server one
general mechanism instead — *A Prototype of Serverless Lucene* draws
the same line: indexing is an offline/async concern behind a
synchronous serving path.

:class:`~repro.jobs.manager.JobManager` owns

* a **bounded worker pool** — at most ``workers`` jobs run at once;
  excess submissions queue in FIFO order, so a burst of ingests cannot
  starve the interactive serving path of CPU;
* **job records** moving ``queued -> running -> succeeded | failed |
  cancelled``, each carrying monotonic **progress counters** the
  running job advances as it streams (``chunksInserted`` etc.), a
  structured **error envelope** on failure (same ``error`` /
  ``message`` / ``details`` shape as the API's §3.2.5 errors), and an
  optional **result** payload on success;
* **cooperative cancellation** — ``cancel()`` flips a flag; the job
  observes it at its next :meth:`~repro.jobs.manager.JobContext.checkpoint`
  and unwinds via :class:`~repro.jobs.manager.JobCancelled`.  A job
  cancelled while still queued never starts at all;
* **TTL'd retention** — terminal records are pruned opportunistically
  (no background sweeper) once older than ``retention_ttl`` or beyond
  ``retention_cap``, oldest first; live jobs are never pruned.

The manager is deliberately generic: it knows nothing about ingestion.
``repro/ingest`` submits its pipeline as a plain callable, and the
planned ``workflows/{name}:run`` (ROADMAP item 5) can submit engine
executions through the identical machinery.  The server exposes the
store as ``GET /v1/jobs``, ``GET /v1/jobs/{id}`` and
``POST /v1/jobs/{id}:cancel`` (see :mod:`repro.server.jobs_api`).
"""

from repro.jobs.manager import (
    JOB_STATES,
    JobCancelled,
    JobContext,
    JobManager,
    JobRecord,
    TERMINAL_STATES,
)

__all__ = [
    "JOB_STATES",
    "JobCancelled",
    "JobContext",
    "JobManager",
    "JobRecord",
    "TERMINAL_STATES",
]
