"""Reproduction of *Laminar: A New Serverless Stream-based Framework with
Semantic Code Search and Code Completion* (WORKS/SC 2023).

Public API overview
-------------------

Workflow authoring (the dispel4py substrate)::

    from repro import ProducerPE, IterativePE, ConsumerPE, GenericPE, WorkflowGraph

Serverless framework (the paper's contribution)::

    from repro import LaminarClient, LaminarServer, ExecutionEngine

A typical session (paper §3.4.1)::

    from repro import LaminarClient, local_stack

    client = LaminarClient(local_stack())
    client.register("zz46", "password")
    client.login("zz46", "password")
    client.register_PE(NumberProducer, "Random numbers producer")
    client.run("IsPrime", input=5, process="MULTI", args={"num": 5})

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.dataflow import (
    ConsumerPE,
    GenericPE,
    IterativePE,
    ProducerPE,
    WorkflowGraph,
    run_workflow,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "GenericPE",
    "ProducerPE",
    "IterativePE",
    "ConsumerPE",
    "WorkflowGraph",
    "run_workflow",
    "ReproError",
    "LaminarClient",
    "LaminarServer",
    "ExecutionEngine",
    "local_stack",
    "__version__",
]


def __getattr__(name: str):
    """Lazily import the heavier framework layers.

    Keeps ``import repro`` cheap for pure-dataflow users while still
    exposing the serverless stack at the top level.
    """
    if name == "LaminarClient":
        from repro.client import LaminarClient

        return LaminarClient
    if name == "LaminarServer":
        from repro.server import LaminarServer

        return LaminarServer
    if name == "ExecutionEngine":
        from repro.engine import ExecutionEngine

        return ExecutionEngine
    if name == "local_stack":
        from repro.client import local_stack

        return local_stack
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
