"""Static analysis & invariants — the correctness-tooling layer.

Nine PRs grew the registry into a concurrency-heavy serving stack whose
invariants lived only as prose in docstrings and CHANGES.md.  This
package encodes them as *checks*: an AST lint framework with
repo-specific rules (:mod:`repro.analysis.lint`,
:mod:`repro.analysis.rules`), and a runtime lock-order/race detector
(:mod:`repro.analysis.lockwatch`) that instruments ``threading`` locks
during the concurrency-heavy test suites.  Both are tier-1 gates:
``tests/analysis/test_self_lint.py`` lints the repo's own source on
every run, and the lockwatch fixture fails any batcher/write-core/
scatter/jobs test that exhibits a lock-order cycle or a blocking call
under a lock.

Run it yourself::

    PYTHONPATH=src python -m repro lint src/          # human output
    PYTHONPATH=src python -m repro lint src/ --json   # CI annotations
    PYTHONPATH=src python -m repro lint --list-rules

Rule table
----------

Each rule encodes one documented invariant and names the PR/bug that
motivated it:

======= ==================================================================
Rule    Invariant (motivation)
======= ==================================================================
RPR001  No blocking calls (``time.sleep``, ``sqlite3``, sockets,
        ``urllib``, ``subprocess``) inside ``async def`` bodies under
        ``repro/server`` — the asyncio core (PR 6) parses on the event
        loop and must hop blocking work to the dispatch executor; one
        blocking call on the loop stalls every open connection.
RPR002  No ``await``/blocking call while a ``with <lock>:`` block is
        held — critical sections are sized to stay microseconds-short
        (batcher PR 3, write core PR 5, scatter PR 6); a sleep inside
        one convoys every contender.  Runtime complement: lockwatch.
RPR003  Every DAO method writing the ``pes``/``workflows`` tables bumps
        the registry mutation counter *and* stamps the changed shards —
        the counter/stamp pair is the freshness authority for persisted
        slabs, journals and IVF/HNSW state (PRs 3/8); an unstamped
        write makes stale persistence load as fresh.
RPR004  In ``RegistryService``, ``_journal_delta``/``_journal_pe``/
        ``_journal_workflow`` calls lexically follow the live-index
        mutation they journal — a threshold-crossing append compacts
        inline from a live-index snapshot, so journaling first folds a
        snapshot missing the batch.  PR 8 shipped and fixed exactly
        this bug; the rule pins the shape, the regression test pins the
        behaviour.
RPR005  No ``time.time()``/``random``/``uuid``/set-iteration in the
        bitwise-determinism surface (``repro/search/{index,scatter,
        fusion,serving}.py``) — batched == single-shot == brute-force
        == scattered is a load-bearing guarantee (PRs 1/6/7) that
        entropy sources break silently.
RPR006  Server error responses only through the documented constructors
        (:func:`repro.errors.error_envelope` at transport layers,
        raised :class:`~repro.errors.ReproError` everywhere else) —
        never raw ``{"error": ...}`` dict literals; the §3.2.5 envelope
        (see the error table in :mod:`repro.server`) stays in one
        place, and parity tests elsewhere pin its exact bytes.
RPR101  Unused imports (F401) — the framework's own dead-code pass;
        ``__init__.py`` re-exports are exempt by convention.
RPR102  Unused local bindings (F841), conservative: simple
        ``name = value`` assignments only, ``_``-prefixed names exempt.
======= ==================================================================

Suppressions are per-line and per-rule (``# lint: disable=RPR002 —
reason``) and must carry a one-line reason; ``# lint:
disable-file=RPR…`` scopes a rule out of a whole file.  The current
tree lints clean — new findings are CI failures, not warnings.

The runtime side
----------------

:class:`repro.analysis.lockwatch.LockWatch` patches ``threading.Lock``
/ ``threading.RLock`` so every lock allocated while active records its
acquisition order into a global graph keyed by allocation site; a
cycle (AB/BA between any two threads, ever) fails the test with both
stacks, and configured blocking calls (``time.sleep``) made while any
lock is held fail it too.  Activation is the opt-in ``lockwatch``
fixture in ``tests/conftest.py``, autouse for the batcher/write-core/
scatter/jobs suites.

Adding a rule is one module in ``repro/analysis/rules/`` registered
with ``@register_rule`` — e.g. the multi-tenant arc's
"auth check on every ``/v1/registry/{user}/…`` route" is a dozen lines
against the route table.
"""

from __future__ import annotations

from repro.analysis.lint import (
    Finding,
    LintError,
    all_rules,
    lint_paths,
    lint_source,
    render_findings,
    render_json,
)
from repro.analysis.lockwatch import LockWatch

__all__ = [
    "Finding",
    "LintError",
    "LockWatch",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_findings",
    "render_json",
]
