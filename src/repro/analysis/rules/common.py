"""Shared vocabulary for the bundled rules.

Name resolution is import-map based (see
:class:`repro.analysis.lint.LintModule.resolve_call`): a call matches a
dotted origin below only when the module's imports prove the binding.
Method calls on arbitrary objects (``self.transport.request``) are
invisible to this layer by design — the runtime side
(:mod:`repro.analysis.lockwatch`) owns those.
"""

from __future__ import annotations

import ast
from typing import Iterator

#: calls that block the calling thread: never on the event loop
#: (RPR001) and never while a lock is held (RPR002)
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "sqlite3.connect",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "urllib.request.urlopen",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.head",
        "requests.request",
    }
)

#: node types that open a new execution scope — rules that reason about
#: "this function's body" must not descend into them
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Yield descendants of ``node`` without entering nested scopes.

    The body of a nested ``def``/``lambda`` executes when *called*, not
    where it is written, so statements inside it do not run on the
    enclosing function's thread/loop/lock by construction.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def call_position(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
