"""RPR002 — no ``await``/blocking call while a lock is held.

Invariant (PRs 3/5/6, batcher + write core + scatter): critical
sections guard in-memory state transitions and are sized to stay
microseconds-short — the batcher publishes flush results, the write
core serializes receipt/CAS checks, the scatter backend bumps
counters.  Sleeping or awaiting inside one turns every contending
thread (or the whole event loop) into a convoy; the runtime complement
is :mod:`repro.analysis.lockwatch`, which catches the dynamic cases
static scoping cannot see.

A context-manager expression "looks like a lock" when its terminal
identifier contains ``lock`` or ``mutex`` — the repo's naming
convention (``self._lock``, ``app.write_lock``) makes this exact here.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import (
    Finding,
    LintModule,
    Rule,
    dotted_name,
    register_rule,
)
from repro.analysis.rules.common import (
    BLOCKING_CALLS,
    _SCOPE_NODES,
    walk_scope,
)


def _lock_label(item: ast.withitem) -> str | None:
    dotted = dotted_name(item.context_expr)
    if dotted is None:
        return None
    terminal = dotted.rsplit(".", 1)[-1].lower()
    if "lock" in terminal or "mutex" in terminal:
        return dotted
    return None


@register_rule
class LockDisciplineRule(Rule):
    name = "RPR002"
    summary = (
        "no await / blocking call inside a `with <lock>:` critical"
        " section"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            labels = [
                label
                for label in (_lock_label(item) for item in node.items)
                if label is not None
            ]
            if not labels:
                continue
            held = ", ".join(labels)
            for stmt in node.body:
                for inner in _walk_statement(stmt):
                    if isinstance(inner, ast.Await):
                        yield self.finding(
                            module,
                            inner,
                            f"await while {held} is held blocks every"
                            " contender for the duration of the awaited"
                            " I/O",
                        )
                    elif isinstance(inner, ast.Call):
                        origin = module.resolve_call(inner)
                        if origin in BLOCKING_CALLS:
                            yield self.finding(
                                module,
                                inner,
                                f"blocking call {origin}() while {held}"
                                " is held convoys every contender",
                            )


def _walk_statement(stmt: ast.stmt):
    yield stmt
    if not isinstance(stmt, _SCOPE_NODES):
        # a def/class statement under the lock only *creates* the
        # object; its body runs elsewhere, outside the critical section
        yield from walk_scope(stmt)
