"""RPR006 — error responses only through the documented envelope constructors.

Invariant (paper §3.2.5 + the error table in
``repro/server/__init__.py``): every error a handler emits is the
standardized JSON envelope — ``error``/``code``/``message`` (+
``params``/``details``) — produced by raising a
:class:`repro.errors.ReproError` (rendered by ``dispatch``) or, at the
transport layers that answer before dispatch exists, by
:func:`repro.errors.error_envelope`.  A hand-rolled ``{"error": ...}``
dict literal drifts from the envelope contract silently: a missing
``code``, a renamed key or a reordered field changes response bytes the
parity tests elsewhere pin.

Detection: any dict literal with an ``"error"`` key inside
``repro/server`` modules.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintModule, Rule, register_rule


@register_rule
class ErrorEnvelopeRule(Rule):
    name = "RPR006"
    summary = (
        "server error responses must use error_envelope()/"
        "ReproError.to_json(), never raw {'error': ...} literals"
    )

    def applies_to(self, module: LintModule) -> bool:
        return "repro/server/" in module.posix

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "error"
                ):
                    yield self.finding(
                        module,
                        node,
                        "raw error-envelope dict literal; construct it"
                        " via repro.errors.error_envelope() or raise a"
                        " ReproError so the §3.2.5 contract stays in"
                        " one place",
                    )
                    break
