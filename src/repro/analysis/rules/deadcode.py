"""RPR101/RPR102 — dead code: unused imports and unused local bindings.

The framework's own F401/F841 pass (the container has no ruff; CI runs
both).  Conservative by construction — it must never flag working
code:

* RPR101 skips ``__init__.py`` (re-exports are the package surface),
  ``__future__`` imports, ``*`` imports, and imports inside
  ``if TYPE_CHECKING:`` blocks (those are used in *quoted* annotations
  the AST cannot see as loads), and counts a name as used when it
  appears anywhere as a ``Name`` node or inside ``__all__``.
* RPR102 only flags *simple* ``name = value`` bindings in function
  scope whose name is never loaded anywhere in the function (nested
  scopes included), never declared ``global``/``nonlocal``, and does
  not start with ``_`` (the conventional discard prefix).  Tuple
  unpacking, loop targets and ``with … as`` bindings are exempt —
  those routinely name values for readability.  Functions touching
  ``locals()``/``eval``/``exec`` are skipped entirely.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintModule, Rule, register_rule
from repro.analysis.rules.common import walk_scope


@register_rule
class UnusedImportRule(Rule):
    name = "RPR101"
    summary = "imported name is never used (F401)"

    def applies_to(self, module: LintModule) -> bool:
        return not module.posix.endswith("__init__.py")

    def check(self, module: LintModule) -> Iterable[Finding]:
        bindings: list[tuple[str, ast.AST]] = []
        typing_only = _type_checking_nodes(module.tree)
        for node in ast.walk(module.tree):
            if node in typing_only:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    bindings.append((name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bindings.append((alias.asname or alias.name, node))
        used = {
            node.id
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Name)
        }
        used |= _all_exports(module.tree)
        for name, node in bindings:
            if name not in used:
                yield self.finding(
                    module,
                    node,
                    f"{name!r} imported but unused",
                )


def _type_checking_nodes(tree: ast.Module) -> set[ast.AST]:
    """Import statements under ``if TYPE_CHECKING:`` — exempt from
    RPR101 because their uses live in quoted annotations."""
    exempt: set[ast.AST] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc:
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    exempt.add(child)
    return exempt


def _all_exports(tree: ast.Module) -> set[str]:
    """Names listed in ``__all__`` (string constants only)."""
    exports: set[str] = set()
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        for const in ast.walk(node.value):
            if isinstance(const, ast.Constant) and isinstance(
                const.value, str
            ):
                exports.add(const.value)
    return exports


_DYNAMIC_SCOPES = {"locals", "vars", "eval", "exec"}


@register_rule
class UnusedLocalRule(Rule):
    name = "RPR102"
    summary = "local variable is assigned but never used (F841)"

    def check(self, module: LintModule) -> Iterable[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(
                fn, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            yield from self._check_function(module, fn)

    def _check_function(
        self, module: LintModule, fn: ast.AST
    ) -> Iterable[Finding]:
        loads: set[str] = set()
        declared: set[str] = set()
        candidates: list[tuple[str, ast.AST]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    if node.id in _DYNAMIC_SCOPES:
                        return  # dynamic scope access: trust nothing
                    loads.add(node.id)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                declared.update(node.names)
        for node in walk_scope(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
            elif isinstance(node, ast.AugAssign):
                target = node.target
            else:
                continue
            if isinstance(target, ast.Name) and not target.id.startswith(
                "_"
            ):
                candidates.append((target.id, node))
        for name, node in candidates:
            if name not in loads and name not in declared:
                yield self.finding(
                    module,
                    node,
                    f"local variable {name!r} is assigned but never"
                    " used",
                )
