"""The bundled rule set — importing this package registers every rule.

Rule modules self-register via
:func:`repro.analysis.lint.register_rule`; add a new invariant by
dropping a module here and importing it below.  See
:mod:`repro.analysis` for the rule table.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import-for-effect)
    async_blocking,
    dao_stamps,
    deadcode,
    determinism,
    error_envelope,
    journal_order,
    lock_discipline,
)
