"""RPR001 — no blocking calls inside ``async def`` bodies in the server.

Invariant (PR 6, ``repro/server/http.py``): the asyncio front end parses
requests on the event loop and hops every blocking dispatch (SQLite,
BLAS scoring) to the bounded thread pool.  A blocking call *on* the
loop stalls every open connection at once — one ``time.sleep`` or
``urlopen`` in a coroutine is a whole-server latency cliff, not a
single slow request.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintModule, Rule, register_rule
from repro.analysis.rules.common import BLOCKING_CALLS, walk_scope


@register_rule
class AsyncBlockingRule(Rule):
    name = "RPR001"
    summary = (
        "no blocking calls (time.sleep, sqlite3, sockets, urllib,"
        " subprocess) inside async def bodies in repro/server"
    )

    def applies_to(self, module: LintModule) -> bool:
        return "repro/server/" in module.posix

    def check(self, module: LintModule) -> Iterable[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in walk_scope(fn):
                if not isinstance(node, ast.Call):
                    continue
                origin = module.resolve_call(node)
                if origin in BLOCKING_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"blocking call {origin}() inside async def"
                        f" {fn.name} stalls the event loop; run it on"
                        " the dispatch executor",
                    )
