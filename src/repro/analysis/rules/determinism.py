"""RPR005 — no nondeterminism sources in ranking/merge/fusion code paths.

Invariant (PRs 1/6/7): search results are *bitwise* reproducible —
batched == single-shot == brute-force, scatter/gather == single
process, hybrid fusion stable across runs.  The parity tests pin the
outputs; this rule pins the inputs by banning the classic entropy
sources from the ranking modules: wall-clock reads, ``random``/
``numpy.random``, UUIDs, and direct iteration over sets (whose order
varies with insertion history and hash seeding).  ``time.monotonic``/
``time.sleep`` stay legal — they shape latency, never result order.

Scope is the bitwise-determinism surface named in the architecture
docs: ``repro/search/{index,scatter,fusion,serving}.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import Finding, LintModule, Rule, register_rule

_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "uuid.uuid4",
        "uuid.uuid1",
    }
)

_BANNED_PREFIXES = ("random.", "numpy.random.")

_SURFACE = (
    "repro/search/index.py",
    "repro/search/scatter.py",
    "repro/search/fusion.py",
    "repro/search/serving.py",
)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_rule
class DeterminismRule(Rule):
    name = "RPR005"
    summary = (
        "no time.time()/random/uuid/set-iteration in the"
        " bitwise-determinism surface (search ranking/merge/fusion)"
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.posix.endswith(_SURFACE)

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                origin = module.resolve_call(node)
                if origin is None:
                    continue
                if origin in _BANNED_CALLS or origin.startswith(
                    _BANNED_PREFIXES
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{origin}() in a ranking/merge path breaks"
                        " bitwise reproducibility",
                    )
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(
                    module,
                    node.iter,
                    "iterating a set in a ranking/merge path: order"
                    " depends on insertion history — sort first",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield self.finding(
                            module,
                            comp.iter,
                            "comprehension over a set in a ranking/"
                            "merge path: order depends on insertion"
                            " history — sort first",
                        )
