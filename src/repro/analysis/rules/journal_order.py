"""RPR004 — journal appends lexically follow the index mutation they record.

Invariant (PR 8, ``repro/registry/service.py``): a threshold-crossing
``_journal_delta`` append compacts the delta chain inline *from a
live-index snapshot*, so the snapshot must already contain the batch
being journaled.  PR 8 shipped — and then fixed — exactly this bug:
journaling before the index mutation made an inline compaction fold a
snapshot missing the batch, persisting a base slab that silently
dropped rows.  The regression test pins the runtime behaviour; this
rule pins the code shape that caused it.

Detection: inside any one function of ``RegistryService`` (the
``_journal_*`` helpers themselves excepted), a call to
``_journal_delta``/``_journal_pe``/``_journal_workflow`` must be
lexically preceded by an index mutation — a mutating call
(``add``/``add_many``/``remove``/``remove_many``/``remove_everywhere``/
``clear``) on an index-named receiver, or one of the service's
``_index_pe``/``_index_workflow`` helpers.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.lint import (
    Finding,
    LintModule,
    Rule,
    dotted_name,
    register_rule,
)
from repro.analysis.rules.common import call_position, walk_scope

_JOURNAL_CALLS = {"_journal_delta", "_journal_pe", "_journal_workflow"}
_MUTATING_ATTRS = {
    "add",
    "add_many",
    "remove",
    "remove_many",
    "remove_everywhere",
    "clear",
}
_INDEX_HELPERS = {
    "_index_pe",
    "_index_workflow",
    "_unindex_pe",
    "_unindex_workflow",
}


def _is_index_mutation(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _INDEX_HELPERS:
        return True
    if func.attr not in _MUTATING_ATTRS:
        return False
    receiver = dotted_name(func.value)
    return receiver is not None and "index" in receiver.lower()


@register_rule
class JournalOrderRule(Rule):
    name = "RPR004"
    summary = (
        "_journal_* calls must lexically follow the live-index"
        " mutation they journal"
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.posix.endswith("repro/registry/service.py")

    def check(self, module: LintModule) -> Iterable[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(
                fn, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if fn.name.startswith("_journal"):
                continue  # the journal helpers are the journaling layer
            mutations: list[tuple[int, int]] = []
            journals: list[ast.Call] = []
            for node in walk_scope(fn):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _JOURNAL_CALLS
                ):
                    journals.append(node)
                elif _is_index_mutation(node):
                    mutations.append(call_position(node))
            if not journals:
                continue
            first_mutation = min(mutations) if mutations else None
            for call in journals:
                if (
                    first_mutation is None
                    or call_position(call) < first_mutation
                ):
                    helper = call.func.attr  # type: ignore[union-attr]
                    yield self.finding(
                        module,
                        call,
                        f"{helper}() before the index mutation it"
                        " journals — an inline compaction would fold a"
                        " snapshot missing this batch (PR 8 journal-"
                        "ordering bug)",
                    )
