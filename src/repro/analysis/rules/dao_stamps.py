"""RPR003 — every DAO write to pes/workflows bumps the counter and stamps shards.

Invariant (PRs 3/8, ``repro/registry/dao.py``): the registry mutation
counter is the freshness authority for every persisted artifact (index
slabs, delta journals, IVF/HNSW training state), and since schema v6
each mutation must *also* stamp exactly the ``(user, kind)`` shards it
changed — an unbumped or unstamped write makes a stale slab load as
fresh on the next attach, silently serving deleted or missing rows.
PR 8's cross-process tests exist because this failure mode is
invisible until a cold start.

Detection: a method "writes" when it executes SQL matching
``INSERT INTO/UPDATE/DELETE FROM pes|workflows`` or mutates the
in-memory ``self._pes``/``self._workflows`` stores; such a method must
contain both a mutation bump (``_bump_mutation()`` call or
``self._mutations += …``) and a ``_stamp_shards(...)`` call.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.lint import (
    Finding,
    LintModule,
    Rule,
    dotted_name,
    register_rule,
)
from repro.analysis.rules.common import walk_scope

_SQL_WRITE = re.compile(
    r"(?i)\b(?:insert(?:\s+or\s+\w+)?\s+into|update|delete\s+from)\s+"
    r"(pes|workflows)\b"
)

_MEMORY_STORES = {"self._pes", "self._workflows"}


def _sql_text(node: ast.Call) -> str | None:
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _written_tables(fn: ast.FunctionDef) -> set[str]:
    tables: set[str] = set()
    for node in walk_scope(fn):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in ("execute", "executemany"):
                sql = _sql_text(node)
                if sql:
                    tables.update(_SQL_WRITE.findall(sql))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    store = dotted_name(target.value)
                    if store in _MEMORY_STORES:
                        tables.add(store.rsplit("._", 1)[-1])
    return tables


def _has_bump(fn: ast.FunctionDef) -> bool:
    for node in walk_scope(fn):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr == "_bump_mutation":
                return True
        if isinstance(node, ast.AugAssign):
            if dotted_name(node.target) == "self._mutations":
                return True
    return False


def _has_stamp(fn: ast.FunctionDef) -> bool:
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "_stamp_shards"
        for node in walk_scope(fn)
    )


@register_rule
class DaoStampRule(Rule):
    name = "RPR003"
    summary = (
        "DAO methods writing pes/workflows must bump the mutation"
        " counter and stamp the changed shards"
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.posix.endswith("repro/registry/dao.py")

    def check(self, module: LintModule) -> Iterable[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if not isinstance(fn, ast.FunctionDef):
                    continue
                tables = _written_tables(fn)
                if not tables:
                    continue
                wrote = "/".join(sorted(tables))
                if not _has_bump(fn):
                    yield self.finding(
                        module,
                        fn,
                        f"{cls.name}.{fn.name} writes {wrote} without"
                        " bumping the registry mutation counter"
                        " (persisted slabs would load stale-as-fresh)",
                    )
                if not _has_stamp(fn):
                    yield self.finding(
                        module,
                        fn,
                        f"{cls.name}.{fn.name} writes {wrote} without"
                        " stamping the changed shards"
                        " (_stamp_shards; v6 per-shard freshness)",
                    )
