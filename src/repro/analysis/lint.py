"""The repo-specific lint framework: rule registry, runner, suppression.

This is deliberately *not* a general-purpose linter — it is the
mechanical form of the invariants this codebase documents in prose
(docstrings, CHANGES.md, module architecture notes).  Each rule lives
in :mod:`repro.analysis.rules`, registers itself under a stable
``RPRnnn`` name, and checks one invariant over the AST of one module.
See :mod:`repro.analysis` for the rule table and the bug history each
rule encodes.

Design:

* **Rules** subclass :class:`Rule` and are registered with
  :func:`register_rule`.  A rule declares which files it ``applies_to``
  (path-substring scoping, so the same rule fires on golden-test
  snippets laid out under a ``repro/...``-shaped temp tree) and yields
  :class:`Finding` objects from ``check``.
* **Name resolution** is import-map based, not type inference: a call
  is matched by resolving its dotted path through the module's import
  aliases (``from time import sleep as pause`` → ``pause()`` resolves
  to ``time.sleep``).  Method calls on arbitrary objects are out of
  scope by design — the runtime lock-order detector
  (:mod:`repro.analysis.lockwatch`) covers the dynamic side.
* **Suppression** is per-line and per-rule: ``# lint: disable=RPR002``
  on the finding's line suppresses exactly that rule there (comma
  lists and ``disable=all`` work); ``# lint: disable-file=RPR101``
  anywhere in the file suppresses the rule for the whole file.  Every
  suppression in this repo must carry a one-line reason after the
  directive — deliberate exceptions are documented where they live.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintError",
    "LintModule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_findings",
    "render_json",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_json(self) -> dict:
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintError:
    """A file the linter could not analyze (syntax/decoding error)."""

    path: str
    message: str


#: ``# lint: disable=RPR001,RPR002 — reason`` / ``# lint: disable-file=…``
_DIRECTIVE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>(?:all|\*|[A-Za-z0-9_]+)(?:\s*,\s*(?:all|\*|[A-Za-z0-9_]+))*)"
)


class LintModule:
    """One parsed source file handed to every applicable rule."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        #: posix-style path string rules scope on (``applies_to``)
        self.posix = self.path.as_posix()
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.import_map = _build_import_map(self.tree)
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        self._collect_directives(source)

    def _collect_directives(self, source: str) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(token.string)
                if match is None:
                    continue
                rules = {
                    name.strip()
                    for name in match.group("rules").split(",")
                }
                rules = {"all" if r == "*" else r for r in rules}
                if match.group("scope") == "disable-file":
                    self.file_disables |= rules
                else:
                    self.line_disables.setdefault(
                        token.start[0], set()
                    ).update(rules)
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass  # the ast parse succeeded; comments stay best-effort

    def suppressed(self, rule: str, line: int) -> bool:
        if {"all", rule} & self.file_disables:
            return True
        at_line = self.line_disables.get(line, ())
        return "all" in at_line or rule in at_line

    def resolve_call(self, node: ast.Call) -> str | None:
        """The dotted origin of a call through the import aliases.

        ``pause()`` after ``from time import sleep as pause`` resolves
        to ``"time.sleep"``; calls on local objects resolve to ``None``.
        """
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        origin = self.import_map.get(root)
        if origin is None:
            return None
        return origin + ("." + rest if rest else "")


class Rule:
    """Base class for lint rules; subclasses register via
    :func:`register_rule` and override :meth:`check`."""

    #: stable rule id (``RPRnnn``) used in findings and suppressions
    name: str = ""
    #: one-line description shown by ``repro lint --list-rules``
    summary: str = ""

    def applies_to(self, module: LintModule) -> bool:
        return True

    def check(self, module: LintModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its name."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name}")
    _REGISTRY[cls.name] = cls()
    return cls


def all_rules() -> dict[str, Rule]:
    """The registered rules (name → instance), loading the bundled set."""
    # the bundled rules self-register on import; idempotent
    import repro.analysis.rules  # lint: disable=RPR101 — import-for-effect

    return dict(sorted(_REGISTRY.items()))


def _select_rules(names: Sequence[str] | None) -> list[Rule]:
    registry = all_rules()
    if names is None:
        return list(registry.values())
    selected = []
    for name in names:
        if name not in registry:
            raise KeyError(
                f"unknown rule {name!r}; known: {', '.join(registry)}"
            )
        selected.append(registry[name])
    return selected


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one source string (the golden-test entry point)."""
    module = LintModule(path, source)
    findings: list[Finding] = []
    for rule in _select_rules(rules):
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _iter_py_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.parts
                ):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[str] | None = None,
) -> tuple[list[Finding], list[LintError]]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    errors: list[LintError] = []
    for path in _iter_py_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            findings.extend(lint_source(source, path, rules))
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(LintError(str(path), f"{type(exc).__name__}: {exc}"))
    return findings, errors


def render_findings(
    findings: Sequence[Finding], errors: Sequence[LintError] = ()
) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in findings
    ]
    lines.extend(f"{e.path}: error: {e.message}" for e in errors)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], errors: Sequence[LintError] = ()
) -> str:
    """Machine-readable output for CI annotations (``repro lint --json``)."""
    return json.dumps(
        {
            "findings": [f.to_json() for f in findings],
            "errors": [
                {"file": e.path, "message": e.message} for e in errors
            ],
        },
        indent=2,
    )


# ---------------------------------------------------------------------------
# Shared AST helpers used by the bundled rules
# ---------------------------------------------------------------------------
def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _build_import_map(tree: ast.Module) -> dict[str, str]:
    """Local binding name → dotted origin, from the module's imports."""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; using ``a.b.c.f``
                    # resolves through the root
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay unresolved
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return mapping


def dotted_name(node: ast.AST) -> str | None:
    """Public alias of the dotted-chain helper for rule modules."""
    return _dotted(node)
