"""Runtime lock-order / lock-discipline detector for the test suites.

The static rules (RPR002) catch lock misuse the AST can prove; this
module catches what only execution shows: *cross-module* lock-order
inversions (thread 1 takes A then B, thread 2 takes B then A — a
deadlock waiting for the right interleaving) and blocking calls made
while any instrumented lock is held.

How it works
------------
:meth:`LockWatch.install` monkeypatches ``threading.Lock`` /
``threading.RLock`` so every lock allocated *while instrumentation is
active* is wrapped in an :class:`InstrumentedLock`:

* each lock is labeled by its **allocation site** (the first stack
  frame outside ``threading``/this module), so every lock created at
  ``serving.py:209`` aggregates into one node — the order graph
  generalizes across instances and across tests, like a classic
  witness checker;
* on acquire, an edge ``held-site → acquiring-site`` is added to a
  global directed graph (reentrant re-acquires add nothing); the first
  time an edge appears, the acquisition stack is recorded and a DFS
  checks whether the reverse path already exists — a cycle is a
  potential deadlock and is recorded as a violation *with both
  stacks*;
* configured blocking calls (``time.sleep`` by default) are also
  patched: calling one while holding any instrumented lock records a
  violation, unless the caller matches ``blocking_allow`` (used for
  the write core's deliberate cross-process claim poll — see
  ``repro/server/v1_write.py``).

The wrapper implements the ``_release_save``/``_acquire_restore``/
``_is_owned`` protocol, so ``threading.Condition`` (and therefore
``Event``/``Semaphore``) built over instrumented locks works —
including the crucial bookkeeping that a ``Condition.wait`` *releases*
the lock: held-state is popped for the wait and restored after, so
sleeping inside ``wait`` never false-positives.

Activation is opt-in via the ``lockwatch`` fixture in
``tests/conftest.py``, autouse-enabled for the batcher, write-core,
scatter and jobs suites (the concurrency-heavy surfaces).  The fixture
fails the test at teardown if any violation was recorded.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Iterable

__all__ = ["InstrumentedLock", "LockWatch", "current_watch"]

#: the active watch (at most one — installs nest by refcount)
_ACTIVE: "LockWatch | None" = None

#: real factories, captured at import time so instrumentation can
#: allocate its own internal lock without recursing
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


def current_watch() -> "LockWatch | None":
    return _ACTIVE


def _allocation_site() -> str:
    """``file:line`` of the frame that allocated the lock, skipping
    stdlib ``threading`` and this module."""
    for frame in reversed(traceback.extract_stack(limit=12)[:-1]):
        filename = frame.filename.replace("\\", "/")
        if filename.endswith(("/threading.py", "/lockwatch.py")):
            continue
        return f"{filename.rsplit('/', 1)[-1]}:{frame.lineno}"
    return "<unknown>"


def _short_stack(limit: int = 8) -> list[str]:
    frames = traceback.extract_stack(limit=limit + 4)[:-3]
    return [
        f"{f.filename.rsplit('/', 1)[-1]}:{f.lineno} in {f.name}"
        for f in frames
        if not f.filename.replace("\\", "/").endswith(
            ("/threading.py", "/lockwatch.py")
        )
    ][-limit:]


class InstrumentedLock:
    """A Lock/RLock wrapper feeding acquisition order into a LockWatch."""

    def __init__(self, watch: "LockWatch", inner: Any, site: str) -> None:
        self._watch = watch
        self._inner = inner
        self.site = site

    # -- core lock protocol -------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watch.note_acquire_intent(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watch.push_held(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watch.pop_held(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"<InstrumentedLock {self.site} over {self._inner!r}>"

    def __getattr__(self, name: str) -> Any:
        # Delegate anything we don't track to the real lock — e.g. the
        # stdlib registers ``_at_fork_reinit`` as an os.fork hook when
        # ``concurrent.futures.thread`` first imports.
        return getattr(self._inner, name)

    # -- Condition integration ----------------------------------------
    # threading.Condition binds these at construction; a wait() fully
    # releases the lock, so held-state must drop with it and come back
    # on restore — otherwise any sleep during a wait would read as
    # "blocking call while lock held".
    def _release_save(self) -> tuple[Any, int]:
        inner = self._inner
        if hasattr(inner, "_release_save"):
            saved = inner._release_save()
        else:
            saved = None
            inner.release()
        return (saved, self._watch.drop_all_held(self))

    def _acquire_restore(self, state: tuple[Any, int]) -> None:
        saved, count = state
        inner = self._inner
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(saved)
        else:
            inner.acquire()
        self._watch.push_held(self, count=max(1, count))

    def _is_owned(self) -> bool:
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return inner._is_owned()
        # plain-Lock heuristic, mirroring threading.Condition._is_owned
        if inner.acquire(False):
            inner.release()
            return False
        return True


class LockWatch:
    """Global lock-order graph + violation store.

    Parameters
    ----------
    blocking_calls:
        Dotted names of module-level callables to guard (patched while
        installed); each records a violation when invoked with any
        instrumented lock held.  Default: ``time.sleep``.
    blocking_allow:
        Caller filename substrings exempt from the blocking-call check
        (documented deliberate cases only).
    """

    def __init__(
        self,
        blocking_calls: Iterable[str] = ("time.sleep",),
        blocking_allow: Iterable[str] = (),
    ) -> None:
        self.blocking_calls = tuple(blocking_calls)
        self.blocking_allow = tuple(blocking_allow)
        self._graph_lock = _REAL_LOCK()
        #: edge (held_site, acquired_site) -> stack recorded at first sight
        self.edges: dict[tuple[str, str], list[str]] = {}
        self.violations: list[dict[str, Any]] = []
        self._tls = threading.local()
        self._installs = 0
        self._patched: list[tuple[Any, str, Any]] = []

    # -- held-stack bookkeeping (per thread) --------------------------
    def _held(self) -> list[InstrumentedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def push_held(self, lock: InstrumentedLock, count: int = 1) -> None:
        self._held().extend([lock] * count)

    def pop_held(self, lock: InstrumentedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def drop_all_held(self, lock: InstrumentedLock) -> int:
        """Remove every held entry for ``lock`` (Condition.wait)."""
        held = self._held()
        count = sum(1 for entry in held if entry is lock)
        if count:
            self._tls.held = [entry for entry in held if entry is not lock]
        return count

    # -- order graph --------------------------------------------------
    def note_acquire_intent(self, lock: InstrumentedLock) -> None:
        held = self._held()
        if not held or any(entry is lock for entry in held):
            return  # nothing held, or a reentrant re-acquire
        for entry in {id(h): h for h in held}.values():
            if entry.site == lock.site:
                continue  # same allocation site: self-edges carry no order
            self._add_edge(entry.site, lock.site)

    def _add_edge(self, held_site: str, acquired_site: str) -> None:
        edge = (held_site, acquired_site)
        with self._graph_lock:
            if edge in self.edges:
                return
            stack = _short_stack()
            self.edges[edge] = stack
            cycle = self._find_path(acquired_site, held_site)
        if cycle is not None:
            self.violations.append(
                {
                    "kind": "lock-order-cycle",
                    "edge": f"{held_site} -> {acquired_site}",
                    "cycle": " -> ".join(cycle + [cycle[0]]),
                    "stack": stack,
                    "reverse_stacks": {
                        f"{a} -> {b}": self.edges.get((a, b), [])
                        for a, b in zip(cycle, cycle[1:] + [cycle[0]])
                        if (a, b) != edge
                    },
                }
            )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """DFS path start → goal in the edge graph (caller holds the
        graph lock); a path means the new edge closes a cycle."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for a, b in self.edges:
                if a == node and b not in seen:
                    seen.add(b)
                    stack.append((b, path + [b]))
        return None

    # -- blocking-call guard ------------------------------------------
    def note_blocking_call(self, name: str) -> None:
        held = self._held()
        if not held:
            return
        stack = _short_stack()
        for allowed in self.blocking_allow:
            if any(allowed in frame for frame in stack):
                return
        self.violations.append(
            {
                "kind": "blocking-call-under-lock",
                "call": name,
                "held": sorted({lock.site for lock in held}),
                "stack": stack,
            }
        )

    # -- install / uninstall ------------------------------------------
    def _make_factory(
        self, real: Callable[[], Any]
    ) -> Callable[[], InstrumentedLock]:
        def factory() -> InstrumentedLock:
            return InstrumentedLock(self, real(), _allocation_site())

        return factory

    def _guard(self, name: str, real: Callable[..., Any]):
        def guarded(*args: Any, **kwargs: Any) -> Any:
            self.note_blocking_call(name)
            return real(*args, **kwargs)

        return guarded

    def install(self) -> "LockWatch":
        global _ACTIVE
        if _ACTIVE is not None and _ACTIVE is not self:
            raise RuntimeError("another LockWatch is already installed")
        self._installs += 1
        if self._installs > 1:
            return self
        _ACTIVE = self
        self._patch(threading, "Lock", self._make_factory(_REAL_LOCK))
        self._patch(threading, "RLock", self._make_factory(_REAL_RLOCK))
        import importlib

        for dotted in self.blocking_calls:
            module_name, _, attr = dotted.rpartition(".")
            module = importlib.import_module(module_name)
            real = getattr(module, attr)
            self._patch(module, attr, self._guard(dotted, real))
        return self

    def _patch(self, target: Any, attr: str, replacement: Any) -> None:
        self._patched.append((target, attr, getattr(target, attr)))
        setattr(target, attr, replacement)

    def uninstall(self) -> None:
        global _ACTIVE
        if self._installs == 0:
            return
        self._installs -= 1
        if self._installs:
            return
        while self._patched:
            target, attr, original = self._patched.pop()
            setattr(target, attr, original)
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> "LockWatch":
        return self.install()

    def __exit__(self, *exc: Any) -> None:
        self.uninstall()

    # -- reporting -----------------------------------------------------
    def render_violations(self) -> str:
        blocks = []
        for violation in self.violations:
            lines = [f"[{violation['kind']}]"]
            for key, value in violation.items():
                if key == "kind":
                    continue
                if isinstance(value, list):
                    lines.append(f"  {key}:")
                    lines.extend(f"    {entry}" for entry in value)
                elif isinstance(value, dict):
                    lines.append(f"  {key}:")
                    for name, stack in value.items():
                        lines.append(f"    {name}:")
                        lines.extend(f"      {entry}" for entry in stack)
                else:
                    lines.append(f"  {key}: {value}")
            blocks.append("\n".join(lines))
        return "\n".join(blocks)

    def raise_violations(self) -> None:
        """Fail (AssertionError) if any violation was recorded."""
        if self.violations:
            raise AssertionError(
                f"lockwatch recorded {len(self.violations)} violation(s):\n"
                + self.render_violations()
            )
