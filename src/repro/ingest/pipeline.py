"""The ingest pipeline: walk -> chunk -> embed -> bulk-register.

Runs as a background job (:mod:`repro.jobs`): the submitting request
returns immediately and this module streams the repository into the
registry in **bounded batches** through
``RegistryService.register_pes_bulk`` — each batch takes the server's
write lock only for its one ``executemany`` + ``add_many``, so the
search hot path (which never takes that lock) stays live mid-ingest
and simply sees the corpus grow batch by batch.

Progress counters (monotonic, see :class:`repro.jobs.manager.JobContext`):

=================  =====================================================
``filesDiscovered``  files the walker yielded
``filesSkipped``     unreadable/binary/oversized files + unparseable .py
``chunksDiscovered`` chunks produced by the chunker
``chunksEmbedded``   chunks whose summarize/embed preparation ran
``chunksInserted``   chunks that created a new registry record
``chunksDeduped``    chunks the §3.1 identity dedup resolved onto an
                     existing record (re-ingesting an unchanged repo
                     dedupes 100%)
=================  =====================================================

Cancellation is cooperative at batch boundaries: batches already
landed stay landed (ingest is not transactional; the counters say
exactly how far it got).  Shards persist once at the end — mid-ingest
the live index serves every batch already, persistence only matters
for the next cold start.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.ingest.chunker import DEFAULT_MAX_CHUNK_LINES, Chunk, chunk_file
from repro.ingest.walker import (
    DEFAULT_MAX_FILE_BYTES,
    extract_archive,
    iter_repo_files,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jobs.manager import JobContext
    from repro.server.app import LaminarServer

#: default chunks per bulk-registration batch — small enough that the
#: write lock is held for milliseconds, large enough to amortize the
#: per-batch executemany/add_many/journal costs
DEFAULT_BATCH_SIZE = 64


@dataclass(frozen=True)
class IngestSpec:
    """A validated ingest request (see ``schema.IngestRequest``)."""

    path: str | None = None
    archive: bytes | None = None
    batch_size: int = DEFAULT_BATCH_SIZE
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES
    max_chunk_lines: int = DEFAULT_MAX_CHUNK_LINES


def run_ingest(
    app: "LaminarServer",
    user_name: str,
    spec: IngestSpec,
    ctx: "JobContext",
) -> dict[str, Any]:
    """The job body: ingest one repository for ``user_name``.

    The user is re-resolved here (not at submit time) — the job may
    start after an account mutation, and a failure surfaces as the
    job's structured error rather than a lost HTTP response.
    """
    user = app.registry.get_user(user_name)
    scratch: str | None = None
    try:
        if spec.archive is not None:
            scratch = tempfile.mkdtemp(prefix="repro-ingest-")
            extract_archive(spec.archive, scratch)
            root = scratch
        else:
            root = spec.path or "."
        inserted = deduped = 0
        batch: list[Chunk] = []
        for relative, text in iter_repo_files(
            root, max_file_bytes=spec.max_file_bytes
        ):
            ctx.checkpoint()
            ctx.advance("filesDiscovered")
            chunks = None if text is None else chunk_file(
                relative, text, max_chunk_lines=spec.max_chunk_lines
            )
            if chunks is None:
                ctx.advance("filesSkipped")
                continue
            for chunk in chunks:
                ctx.advance("chunksDiscovered")
                batch.append(chunk)
                if len(batch) >= spec.batch_size:
                    new, old = _flush(app, user, batch, ctx)
                    inserted += new
                    deduped += old
                    batch = []
        if batch:
            new, old = _flush(app, user, batch, ctx)
            inserted += new
            deduped += old
        if inserted:
            with app.write_lock:
                app.registry.persist_shards()
        return {
            "inserted": inserted,
            "deduped": deduped,
            "registryVersion": app.registry.dao.mutation_counter(),
        }
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _flush(
    app: "LaminarServer",
    user,
    batch: list[Chunk],
    ctx: "JobContext",
) -> tuple[int, int]:
    """Register one bounded batch; returns ``(inserted, deduped)``."""
    from repro.server.v1_write import build_pe_record

    ctx.checkpoint()
    records = [
        build_pe_record(
            app,
            name=chunk.name,
            code=chunk.code,
            description=chunk.docstring,
            origin="user" if chunk.docstring else "auto",
            source=chunk.source_text(),
            imports=list(chunk.imports),
        )
        for chunk in batch
    ]
    ctx.advance("chunksEmbedded", len(records))
    with app.write_lock:
        _, created = app.registry.register_pes_bulk(
            user, records, persist=False
        )
    inserted = sum(1 for flag in created if flag)
    ctx.advance("chunksInserted", inserted)
    ctx.advance("chunksDeduped", len(records) - inserted)
    return inserted, len(records) - inserted
