"""Repository walker + archive intake for the ingest pipeline.

Walks a source tree deterministically (sorted order, so two ingests of
the same tree discover files identically), skipping VCS internals,
virtualenvs, caches and anything hidden, refusing binaries and
oversized files.  Uploaded ``.tar.gz`` archives are unpacked through a
validating extractor that rejects absolute paths, ``..`` traversal and
non-file members — the archive came over the wire from an
authenticated but not necessarily careful client.
"""

from __future__ import annotations

import io
import os
import tarfile
from typing import Iterator

from repro.errors import ValidationError

#: directories never descended into
SKIP_DIRS = frozenset(
    {
        ".git",
        ".hg",
        ".svn",
        "__pycache__",
        ".mypy_cache",
        ".pytest_cache",
        ".tox",
        ".eggs",
        "node_modules",
        ".venv",
        "venv",
        "build",
        "dist",
    }
)

#: suffixes the walker yields; ``.py`` goes to the AST chunker, the
#: rest to the line-window fallback
TEXT_SUFFIXES = (".py", ".md", ".rst", ".txt")

#: per-file size ceiling (bytes) unless the caller overrides it
DEFAULT_MAX_FILE_BYTES = 1_000_000

#: total bytes an uploaded archive may expand to (zip-bomb guard)
MAX_ARCHIVE_BYTES = 256 * 1024 * 1024


def iter_repo_files(
    root: str,
    *,
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES,
    suffixes: tuple[str, ...] = TEXT_SUFFIXES,
) -> Iterator[tuple[str, str | None]]:
    """Yield ``(relative_path, text)`` for every ingestible file.

    ``text`` is ``None`` for files that matched a suffix but turned out
    unreadable (oversized, undecodable, binary) — the pipeline counts
    those as skipped without losing the discovery event.  Paths use
    posix separators regardless of platform.
    """
    if not os.path.isdir(root):
        raise ValidationError(
            f"ingest path is not a directory: {root!r}",
            params={"path": root},
        )
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            name
            for name in dirnames
            if name not in SKIP_DIRS and not name.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.startswith(".") or not filename.endswith(suffixes):
                continue
            full = os.path.join(dirpath, filename)
            relative = os.path.relpath(full, root).replace(os.sep, "/")
            yield relative, _read_text(full, max_file_bytes)


def _read_text(path: str, max_file_bytes: int) -> str | None:
    try:
        if os.path.getsize(path) > max_file_bytes:
            return None
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    if b"\x00" in data:
        return None
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError:
        return None


def extract_archive(data: bytes, dest: str) -> None:
    """Unpack an uploaded tarball into ``dest``, validating members.

    Only regular files and directories with clean relative paths are
    materialized; anything else (absolute paths, ``..`` traversal,
    links, devices) is a 400 — a hostile archive must not write outside
    ``dest``.
    """
    try:
        archive = tarfile.open(fileobj=io.BytesIO(data), mode="r:*")
    except tarfile.TarError as exc:
        raise ValidationError(
            "archive is not a readable tar file",
            details=str(exc),
        ) from exc
    total = 0
    with archive:
        for member in archive:
            name = member.name
            if name.startswith(("/", "\\")) or ".." in name.split("/"):
                raise ValidationError(
                    f"archive member has an unsafe path: {name!r}",
                    params={"member": name},
                )
            if member.isdir():
                os.makedirs(os.path.join(dest, name), exist_ok=True)
                continue
            if not member.isfile():
                raise ValidationError(
                    f"archive member {name!r} is not a regular file",
                    params={"member": name},
                    details="links and special files are not ingestible",
                )
            total += member.size
            if total > MAX_ARCHIVE_BYTES:
                raise ValidationError(
                    "archive expands beyond the server's size ceiling",
                    params={"maxBytes": MAX_ARCHIVE_BYTES},
                )
            target = os.path.join(dest, name)
            os.makedirs(os.path.dirname(target) or dest, exist_ok=True)
            source = archive.extractfile(member)
            if source is None:  # pragma: no cover - defensive
                continue
            with source, open(target, "wb") as sink:
                sink.write(source.read())
