"""Pure-python AST chunker: source files -> registrable code chunks.

Splits a ``.py`` file into function/class-level chunks (the granularity
semantic code search retrieves at — one chunk is one candidate PE),
entirely with the stdlib ``ast`` module:

* every top-level ``def`` / ``async def`` becomes a **function** chunk,
  decorators included; nested defs stay *inside* their parent chunk
  (they are implementation detail, not retrieval units);
* every method of a class (recursively: ``Outer.Inner.method``) becomes
  a function chunk under its dotted qualname, and the class *header* —
  decorators through the line before its first method, i.e. the
  docstring and class-level assignments — becomes a **class** chunk
  (a class without methods chunks whole); header and methods never
  overlap, so the corpus stores each source line at most once;
* module-level statements outside imports/defs/classes collapse into
  one ``__module__`` chunk (scripts are retrievable too);
* files that fail to parse are **skipped cleanly** (``None``) — an
  ingest must survive a repository containing broken or templated
  sources;
* any chunk longer than ``max_chunk_lines`` is re-split into
  consecutive **window** chunks (``qualname[i]``), and non-``.py``
  text files fall back to plain line windows — the size cap bounds
  both the embedding cost and the stored payload per record.

Chunk identity is *stable*: :attr:`Chunk.chunk_id` hashes
``path + qualname + code-hash``, so re-ingesting an unchanged file
reproduces byte-identical names and codes and the registry's §3.1
dedup-by-identity resolves every chunk onto its existing record.

Each chunk also carries its **module context** (a ``# module:`` banner
plus the file's import lines) — prepended to the embedded source text
so "where does this function live, what does it import" informs the
semantic shard without polluting the stored code payload.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from typing import Iterable

#: default size cap (lines) before a chunk re-splits into windows
DEFAULT_MAX_CHUNK_LINES = 200

#: import lines kept in the module context (a 500-import __init__ would
#: otherwise dominate every chunk's embedding)
_MAX_CONTEXT_IMPORTS = 30


@dataclass(frozen=True)
class Chunk:
    """One registrable unit of a source file."""

    path: str  # repo-relative, posix separators
    qualname: str  # dotted definition path ("" never occurs)
    kind: str  # function | class | module | window
    start_line: int  # 1-based, inclusive
    end_line: int  # 1-based, inclusive
    code: str  # the chunk's source lines, verbatim
    context: str  # module banner + import lines (may be "")
    docstring: str  # first docstring line, or ""
    imports: tuple[str, ...] = ()  # module names the file imports

    @property
    def name(self) -> str:
        """The registry name this chunk registers under — stable and
        human-readable: ``pkg/mod.py::Class.method``."""
        return f"{self.path}::{self.qualname}"

    @property
    def chunk_id(self) -> str:
        """Stable id: same path + qualname + code bytes -> same id."""
        digest = hashlib.sha1(self.code.encode("utf-8")).hexdigest()
        raw = f"{self.path}::{self.qualname}::{digest}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def source_text(self) -> str:
        """What the semantic/code shards embed: context + code."""
        if not self.context:
            return self.code
        return f"{self.context}\n\n{self.code}"


def chunk_file(
    path: str,
    text: str,
    *,
    max_chunk_lines: int = DEFAULT_MAX_CHUNK_LINES,
) -> list[Chunk] | None:
    """Chunk one file by suffix; ``None`` means "skip this file"."""
    if path.endswith(".py"):
        return chunk_python(path, text, max_chunk_lines=max_chunk_lines)
    return chunk_text(path, text, window_lines=max_chunk_lines)


# ---------------------------------------------------------------------------
# Python files
# ---------------------------------------------------------------------------
def chunk_python(
    path: str,
    source: str,
    *,
    max_chunk_lines: int = DEFAULT_MAX_CHUNK_LINES,
) -> list[Chunk] | None:
    """AST-chunk a python source; ``None`` when it does not parse."""
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):  # ValueError: NUL bytes
        return None
    lines = source.splitlines()
    imports, import_spans = _module_imports(tree)
    context = _module_context(path, lines, import_spans)

    def make(
        qualname: str, kind: str, start: int, end: int, code: str, doc: str
    ) -> Iterable[Chunk]:
        chunk = Chunk(
            path=path,
            qualname=qualname,
            kind=kind,
            start_line=start,
            end_line=end,
            code=code,
            context=context,
            docstring=doc,
            imports=imports,
        )
        return _split_oversized(chunk, max_chunk_lines)

    chunks: list[Chunk] = []

    def walk(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                start, end = _node_span(node)
                chunks.extend(
                    make(
                        prefix + node.name,
                        "function",
                        start,
                        end,
                        _segment(lines, start, end),
                        _first_doc_line(node),
                    )
                )
            elif isinstance(node, ast.ClassDef):
                start, end = _node_span(node)
                defs = [
                    child
                    for child in node.body
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                ]
                header_end = (
                    min(_node_span(child)[0] for child in defs) - 1
                    if defs
                    else end
                )
                if header_end >= start:
                    chunks.extend(
                        make(
                            prefix + node.name,
                            "class",
                            start,
                            header_end,
                            _segment(lines, start, header_end),
                            _first_doc_line(node),
                        )
                    )
                walk(node.body, prefix + node.name + ".")

    walk(tree.body, "")

    module_spans = _module_level_spans(tree)
    if module_spans:
        code = "\n".join(
            _segment(lines, start, end) for start, end in module_spans
        )
        chunks.extend(
            make(
                "__module__",
                "module",
                module_spans[0][0],
                module_spans[-1][1],
                code,
                "",
            )
        )
    return chunks


def _node_span(node: ast.stmt) -> tuple[int, int]:
    """(start, end) 1-based inclusive lines, decorators included."""
    start = node.lineno
    for decorator in getattr(node, "decorator_list", []):
        start = min(start, decorator.lineno)
    return start, node.end_lineno or node.lineno


def _segment(lines: list[str], start: int, end: int) -> str:
    return "\n".join(lines[start - 1 : end])


def _first_doc_line(node: ast.AST) -> str:
    doc = ast.get_docstring(node)
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def _module_imports(
    tree: ast.Module,
) -> tuple[tuple[str, ...], list[tuple[int, int]]]:
    """(imported module names, import statement line spans)."""
    names: list[str] = []
    spans: list[tuple[int, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            names.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.append(node.module or ".")
        else:
            continue
        spans.append((node.lineno, node.end_lineno or node.lineno))
    seen: dict[str, None] = {}
    for name in names:
        seen.setdefault(name)
    return tuple(seen), spans


def _module_context(
    path: str, lines: list[str], import_spans: list[tuple[int, int]]
) -> str:
    parts = [f"# module: {path}"]
    for start, end in import_spans[:_MAX_CONTEXT_IMPORTS]:
        parts.append(_segment(lines, start, end))
    return "\n".join(parts)


def _module_level_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of module statements outside imports/defs/classes
    (and outside the module docstring)."""
    spans: list[tuple[int, int]] = []
    for position, node in enumerate(tree.body):
        if isinstance(
            node,
            (
                ast.Import,
                ast.ImportFrom,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            continue
        if (
            position == 0
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue  # the module docstring
        spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _split_oversized(chunk: Chunk, max_chunk_lines: int) -> list[Chunk]:
    """Apply the size cap: an oversized chunk re-splits into windows."""
    total = chunk.end_line - chunk.start_line + 1
    if total <= max_chunk_lines:
        return [chunk]
    lines = chunk.code.splitlines()
    windows: list[Chunk] = []
    for index, offset in enumerate(range(0, len(lines), max_chunk_lines)):
        window = lines[offset : offset + max_chunk_lines]
        windows.append(
            Chunk(
                path=chunk.path,
                qualname=f"{chunk.qualname}[{index}]",
                kind="window",
                start_line=chunk.start_line + offset,
                end_line=chunk.start_line + offset + len(window) - 1,
                code="\n".join(window),
                context=chunk.context,
                docstring=chunk.docstring if index == 0 else "",
                imports=chunk.imports,
            )
        )
    return windows


# ---------------------------------------------------------------------------
# Non-python text files
# ---------------------------------------------------------------------------
def chunk_text(
    path: str,
    text: str,
    *,
    window_lines: int = DEFAULT_MAX_CHUNK_LINES,
) -> list[Chunk] | None:
    """Line-window fallback for plain-text files; ``None`` for binary."""
    if "\x00" in text:
        return None
    lines = text.splitlines()
    if not lines:
        return []
    chunks: list[Chunk] = []
    for offset in range(0, len(lines), window_lines):
        window = lines[offset : offset + window_lines]
        start = offset + 1
        end = offset + len(window)
        chunks.append(
            Chunk(
                path=path,
                qualname=f"L{start}-L{end}",
                kind="window",
                start_line=start,
                end_line=end,
                code="\n".join(window),
                context=f"# file: {path}",
                docstring="",
            )
        )
    return chunks
