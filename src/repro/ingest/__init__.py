"""Repository-scale ingestion: whole source trees into the registry.

Eight PRs of serving-stack work left the write unit at one
hand-registered PE; real corpora — the function repositories SlsReuse
(PAPERS.md) shows reuse quality depends on — are whole repositories.
This package turns a source tree into registry records:

``walker``
    Deterministic directory walk (sorted, VCS/cache/virtualenv dirs
    pruned, binaries and oversized files refused) plus a validating
    tarball extractor for archives uploaded over the API.

``chunker``
    A pure-python AST chunker for ``.py`` files: function/class-level
    chunks under dotted qualnames with decorators and module context,
    stable chunk ids from ``path + qualname + code-hash`` (so
    re-ingest dedupes via the registry's §3.1 identity rule), size
    caps with a line-window fallback that also covers non-``.py``
    text.  Files that fail to parse are skipped cleanly.  In the
    spirit of semcod's tree-sitter chunking (SNIPPETS.md #1) without
    the native dependency.

``pipeline``
    The background-job body: walk -> chunk -> summarize/embed ->
    ``RegistryService.register_pes_bulk`` in **bounded batches**, each
    batch holding the server write lock only for its one
    ``executemany`` + ``add_many``.  Searches never take that lock, so
    the serving path stays live mid-ingest and simply watches the
    corpus grow; shards persist once at the end.  Progress streams
    through monotonic job counters (``chunksDiscovered`` /
    ``chunksEmbedded`` / ``chunksInserted`` / ``chunksDeduped``) and
    cancellation is cooperative at batch boundaries.

The API surface is ``POST /v1/registry/{user}/ingest`` (typed
envelope: a server-local ``path`` or a base64 ``archive``; returns a
job id immediately) with progress served by the ``/v1/jobs`` routes —
see :mod:`repro.server.jobs_api` — and the ``repro ingest`` CLI.
"""

from repro.ingest.chunker import (
    DEFAULT_MAX_CHUNK_LINES,
    Chunk,
    chunk_file,
    chunk_python,
    chunk_text,
)
from repro.ingest.pipeline import DEFAULT_BATCH_SIZE, IngestSpec, run_ingest
from repro.ingest.walker import (
    DEFAULT_MAX_FILE_BYTES,
    extract_archive,
    iter_repo_files,
)

__all__ = [
    "Chunk",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_CHUNK_LINES",
    "DEFAULT_MAX_FILE_BYTES",
    "IngestSpec",
    "chunk_file",
    "chunk_python",
    "chunk_text",
    "extract_archive",
    "iter_repo_files",
    "run_ingest",
]
