"""Resource-directory packing (paper §3.3, Listing 7).

Workflows may need auxiliary files (e.g. ``resources/coordinates.txt``
for the Internal Extinction workflow).  Users compile them in a
``resources`` directory; the client packs it, the payload travels with
the execution request, and the Execution Engine unpacks it into its own
working directory before enactment — "a sequence of copying,
serialization, and deserialization steps".

The pack format is an in-memory tar archive, base64-encoded like every
other binary payload in the system.
"""

from __future__ import annotations

import base64
import io
import tarfile
from pathlib import Path

from repro.errors import SerializationError

#: safety cap on a single packed resource payload (64 MiB decoded)
_MAX_PACKED_BYTES = 64 * 1024 * 1024


def pack_resources(directory: str | Path) -> str:
    """Pack ``directory`` into a base64 tar payload.

    File contents and relative paths are preserved; symlinks and anything
    pointing outside the directory are rejected (the engine must never
    unpack attacker-controlled paths).
    """
    root = Path(directory)
    if not root.is_dir():
        raise SerializationError(
            f"resources directory {str(root)!r} does not exist",
            params={"directory": str(root)},
        )
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w:gz") as archive:
        for path in sorted(root.rglob("*")):
            if path.is_symlink():
                raise SerializationError(
                    f"refusing to pack symlink {str(path)!r}",
                    params={"path": str(path)},
                )
            if path.is_file():
                archive.add(path, arcname=str(path.relative_to(root)))
    payload = buffer.getvalue()
    if len(payload) > _MAX_PACKED_BYTES:
        raise SerializationError(
            f"packed resources exceed {_MAX_PACKED_BYTES} bytes",
            params={"size": len(payload)},
        )
    return base64.b64encode(payload).decode("ascii")


def unpack_resources(payload: str, target: str | Path) -> list[str]:
    """Unpack a payload produced by :func:`pack_resources` into ``target``.

    Returns the list of relative paths written.  Member paths are
    validated to stay inside ``target``.
    """
    root = Path(target)
    root.mkdir(parents=True, exist_ok=True)
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except Exception as exc:
        raise SerializationError(
            "resource payload is not valid base64", details=str(exc)
        ) from exc
    written: list[str] = []
    try:
        with tarfile.open(fileobj=io.BytesIO(raw), mode="r:gz") as archive:
            for member in archive.getmembers():
                if not member.isfile():
                    continue
                member_path = (root / member.name).resolve()
                if not str(member_path).startswith(str(root.resolve())):
                    raise SerializationError(
                        f"archive member escapes target: {member.name!r}",
                        params={"member": member.name},
                    )
                archive.extract(member, root)
                written.append(member.name)
    except tarfile.TarError as exc:
        raise SerializationError(
            "resource payload is not a valid tar archive", details=str(exc)
        ) from exc
    return sorted(written)
