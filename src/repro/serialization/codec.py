"""The cloudpickle + base64 codec (paper §3.4.2).

``serialize_object``/``deserialize_object`` are the exact transport format
of the paper: cloudpickle bytes, base64-encoded into an ASCII string so
the Registry can store code as text and the JSON wire format stays
printable.

``extract_source`` recovers the source text of a PE class or workflow
builder — the Registry stores it alongside the pickle because the search
stack (summarization, code embeddings, completion) operates on *source*,
not on pickles.
"""

from __future__ import annotations

import base64
import inspect
import pickle
import textwrap
from typing import Any

import cloudpickle

from repro.errors import SerializationError


def serialize_object(obj: Any) -> str:
    """Serialize ``obj`` to a base64 string via cloudpickle.

    cloudpickle (rather than stdlib pickle) is required because PE classes
    are typically defined in ``__main__`` or notebooks — environments whose
    classes plain pickle serializes by reference only.
    """
    try:
        payload = cloudpickle.dumps(obj)
    except Exception as exc:
        raise SerializationError(
            f"cannot cloudpickle object of type {type(obj).__name__}",
            params={"type": type(obj).__name__},
            details=str(exc),
        ) from exc
    return base64.b64encode(payload).decode("ascii")


def deserialize_object(data: str) -> Any:
    """Inverse of :func:`serialize_object`."""
    try:
        payload = base64.b64decode(data.encode("ascii"), validate=True)
    except Exception as exc:
        raise SerializationError(
            "payload is not valid base64",
            details=str(exc),
        ) from exc
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise SerializationError(
            "payload is not a valid pickle",
            details=str(exc),
        ) from exc


def serialize_with(obj: Any, codec: str) -> str:
    """Serialize with a named codec — used by the serializer ablation.

    ``cloudpickle`` (the paper's choice), ``pickle`` (stdlib; fails on
    interactively defined classes) or ``source`` (source text only; cheap
    but loses object state).
    """
    if codec == "cloudpickle":
        return serialize_object(obj)
    if codec == "pickle":
        try:
            return base64.b64encode(pickle.dumps(obj)).decode("ascii")
        except Exception as exc:
            raise SerializationError(
                f"stdlib pickle failed for {type(obj).__name__}",
                details=str(exc),
            ) from exc
    if codec == "source":
        return extract_source(obj)
    raise SerializationError(
        f"unknown codec {codec!r}",
        params={"codec": codec},
        details="expected 'cloudpickle', 'pickle' or 'source'",
    )


def extract_source(obj: Any) -> str:
    """Best-effort source text of a class, function or instance.

    Falls back through: the object itself -> its class -> a stored
    ``__source__`` attribute (set when code was reconstructed from the
    registry) -> error.
    """
    for candidate in (obj, type(obj)):
        stored = getattr(candidate, "__source__", None)
        if isinstance(stored, str) and stored.strip():
            return textwrap.dedent(stored)
        try:
            return textwrap.dedent(inspect.getsource(candidate))
        except (TypeError, OSError):
            continue
    raise SerializationError(
        f"cannot locate source for object of type {type(obj).__name__}",
        params={"type": type(obj).__name__},
        details="define the PE in a file, or attach a __source__ attribute",
    )


def source_or_empty(obj: Any) -> str:
    """Like :func:`extract_source` but returns '' instead of raising."""
    try:
        return extract_source(obj)
    except SerializationError:
        return ""
