"""Code/data serialization substrate (paper §3.4.2).

The web_client layer must package Workflows and PEs "in a format
comprehensible to the execution engine".  The paper evaluated ``pickle``,
``dill`` and ``cloudpickle`` and chose cloudpickle for its ability to
serialize complex Python objects (classes, recursive structures) and to
transmit code over networks; serialized byte strings are base64-encoded
for portable storage in the Registry.

This subpackage reproduces that stack:

* :mod:`repro.serialization.codec` — the cloudpickle+base64 codec, plus a
  source-text codec used for registry display/search and as the corpus
  for embeddings.
* :mod:`repro.serialization.imports` — an AST-based import analyzer (the
  ``findimports`` substitute) powering the auto-import mechanism of §3.3.
* :mod:`repro.serialization.resources` — packing/unpacking of the
  ``resources/`` directory shipped with executions (§3.3, Listing 7).
"""

from repro.serialization.codec import (
    deserialize_object,
    extract_source,
    serialize_object,
)
from repro.serialization.imports import ImportInfo, analyze_imports
from repro.serialization.resources import pack_resources, unpack_resources

__all__ = [
    "serialize_object",
    "deserialize_object",
    "extract_source",
    "ImportInfo",
    "analyze_imports",
    "pack_resources",
    "unpack_resources",
]
