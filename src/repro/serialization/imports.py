"""AST-based import analysis — the ``findimports`` substitute (§3.4.2).

The Client automates *library detection*: it analyzes PE classes for
import dependencies and ships the list to the Execution Engine, which
auto-installs prerequisites (§3.3).  The original implementation used the
``findimports`` package plus cloudpickle's implicit capture; offline we
implement the analysis directly on the AST, which also lets us detect
imports hidden inside method bodies (the dispel4py idiom of importing
inside ``__init__``/``_process``, as in Listing 2).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from typing import Iterable

from repro.errors import SerializationError

#: modules shipped with the engine environment itself; never "installed"
_STDLIB = set(getattr(sys, "stdlib_module_names", ())) | {"__future__"}


@dataclass(frozen=True)
class ImportInfo:
    """One imported module as seen in the source."""

    module: str
    #: the top-level distribution-ish name (``astropy`` for ``astropy.io``)
    root: str
    #: names bound by the import (``from x import a, b`` -> ("a", "b"))
    names: tuple[str, ...] = ()
    #: line number of the import statement
    lineno: int = 0

    @property
    def is_stdlib(self) -> bool:
        return self.root in _STDLIB


def _walk_imports(tree: ast.AST) -> Iterable[ImportInfo]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module = alias.name
                yield ImportInfo(
                    module=module,
                    root=module.split(".")[0],
                    names=(alias.asname or module.split(".")[0],),
                    lineno=node.lineno,
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level and not node.module:
                continue  # pure relative import: stays within user package
            module = node.module or ""
            yield ImportInfo(
                module=module,
                root=module.split(".")[0],
                names=tuple(alias.asname or alias.name for alias in node.names),
                lineno=node.lineno,
            )


def analyze_imports(source: str) -> list[ImportInfo]:
    """All imports appearing anywhere in ``source`` (module or class body).

    Duplicates (same module at different lines) are collapsed, keeping the
    earliest occurrence.  Raises :class:`SerializationError` on syntax
    errors, carrying the parser message for the client to display.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise SerializationError(
            "cannot analyze imports: source does not parse",
            params={"line": exc.lineno},
            details=str(exc),
        ) from exc
    seen: dict[str, ImportInfo] = {}
    for info in _walk_imports(tree):
        if info.module not in seen:
            seen[info.module] = info
    return sorted(seen.values(), key=lambda i: (i.lineno, i.module))


def external_requirements(source: str) -> list[str]:
    """The auto-install list: top-level non-stdlib modules in ``source``.

    This is exactly what the Client transmits to the Execution Engine
    ("an all-inclusive requirement list", §3.3).
    """
    roots = {
        info.root
        for info in analyze_imports(source)
        if info.root and not info.is_stdlib
    }
    return sorted(roots)


def merge_requirements(sources: Iterable[str]) -> list[str]:
    """Union of :func:`external_requirements` across many code fragments."""
    merged: set[str] = set()
    for source in sources:
        if source:
            merged.update(external_requirements(source))
    return sorted(merged)
