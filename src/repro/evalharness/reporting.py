"""Paper-style table rendering for benchmark output."""

from __future__ import annotations

import platform
from typing import Any, Sequence


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render a titled ASCII table matching the paper's layout."""
    columns = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(f"{columns[i]:<{widths[i]}}" for i in range(len(columns))))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(f"{row[i]:<{widths[i]}}" for i in range(len(row))))
    return "\n".join(lines)


def environment_header() -> str:
    """Table 4-style environment description for benchmark transcripts."""
    import multiprocessing

    return "\n".join(
        [
            "Execution environment (cf. paper Table 4):",
            f"  OS:       {platform.system()} {platform.release()}",
            f"  Python:   {platform.python_version()}",
            f"  Machine:  {platform.machine()}",
            f"  CPUs:     {multiprocessing.cpu_count()}",
        ]
    )


def check(label: str, condition: bool) -> str:
    """One shape-check line for EXPERIMENTS.md transcripts."""
    return f"  [{'OK' if condition else 'MISS'}] {label}"
