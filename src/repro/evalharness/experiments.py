"""Experiment drivers — one per paper table (see DESIGN.md index).

These functions are shared by the pytest benchmarks and the examples;
each returns structured rows plus the paper-shape checks that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.datasets.advtest import fitting_corpus
from repro.datasets.codebank import all_canonical_sources
from repro.datasets.codenet import build_codenet
from repro.datasets.cosqa import build_cosqa
from repro.datasets.csn import build_csn
from repro.evalharness.metrics import RetrievalScores, evaluate_retrieval
from repro.evalharness.reporting import format_table
from repro.ml.models import get_model

# ----------------------------------------------------------------------
# Table 6 — zero-shot text-to-code search (MRR on CoSQA-like / CSN-like)
# ----------------------------------------------------------------------

def run_table6(seed: int = 11) -> dict[str, Any]:
    """Reproduce Table 6: unixcoder-base vs unixcoder-code-search MRR."""
    cosqa = build_cosqa(seed=seed)
    csn = build_csn(seed=seed + 2)
    advtest = fitting_corpus()

    base = get_model("unixcoder-base")
    tuned = get_model("unixcoder-code-search").fit(advtest, kind="code")

    rows = []
    scores: dict[str, dict[str, float]] = {}
    for label, model in (("unixcoder-base", base), ("unixcoder-code-search", tuned)):
        cosqa_score = evaluate_retrieval(model, cosqa)
        csn_score = evaluate_retrieval(model, csn)
        scores[label] = {
            "cosqa_mrr": cosqa_score.mrr,
            "csn_mrr": csn_score.mrr,
        }
        rows.append(
            [label, f"{cosqa_score.mrr * 100:.1f}", f"{csn_score.mrr * 100:.1f}"]
        )

    base_s, tuned_s = scores["unixcoder-base"], scores["unixcoder-code-search"]
    checks = {
        "fine-tuned beats base on CosQA-like": tuned_s["cosqa_mrr"]
        > base_s["cosqa_mrr"],
        "fine-tuned beats base on CSN-like": tuned_s["csn_mrr"] > base_s["csn_mrr"],
        "fine-tuned stronger on CSN-like than CosQA-like": tuned_s["csn_mrr"]
        > tuned_s["cosqa_mrr"],
    }
    table = format_table(
        "Table 6 — zero-shot text-to-code search (MRR x100)",
        ["Model", "CosQA-like", "CSN-like"],
        rows,
    )
    return {"rows": rows, "scores": scores, "checks": checks, "table": table}


# ----------------------------------------------------------------------
# Table 7 — zero-shot clone detection (MAP@100 / Precision@1)
# ----------------------------------------------------------------------

#: the seven models of Table 7, in the paper's row order, with each
#: model's fit ("pretraining/fine-tuning") corpus policy
TABLE7_MODELS: list[tuple[str, str, str | None]] = [
    # (paper label, zoo name, fit corpus: None | "advtest" | "code" | "text")
    ("CodeBERT", "codebert", None),
    ("GraphCodeBERT", "graphcodebert", None),
    ("ReACC-retriever-py", "reacc-py-retriever", "code"),
    ("thenlper/gte-large", "gte-large", None),
    ("BAAI/bge-large-en", "bge-large-en", "text"),
    ("unixcoder-clone-detection", "unixcoder-clone-detection", "clones"),
    ("unixcoder-code-search", "unixcoder-code-search", "advtest+code"),
]


def _fit_for_policy(model, policy: str | None, codenet) -> None:
    if policy is None:
        return
    if policy == "advtest":
        model.fit(fitting_corpus(), kind="code")
    elif policy == "advtest+code":
        # fine-tuned on AdvTest, but pretraining frequency priors cover
        # the broad code distribution (incl. clone-style renamings)
        model.fit(fitting_corpus(), kind="code")
        model.fit(build_codenet(seed=101).corpus, kind="code")
    elif policy == "code":
        model.fit(all_canonical_sources(), kind="code")
    elif policy == "clones":
        # clone-detection fine-tuning: frequency statistics over a clone
        # corpus of the same *distribution* (a differently seeded build)
        train = build_codenet(seed=101)
        model.fit(train.corpus, kind="code")
    elif policy == "text":
        # BGE-style massive-corpus pretraining covers prose *and* code
        from repro.datasets.codebank import PROBLEMS

        docs = [p.docstring for p in PROBLEMS] + [
            q for p in PROBLEMS for q in p.queries
        ]
        model.fit(docs, kind="text")
        model.fit(all_canonical_sources(), kind="code")
    else:  # pragma: no cover - config error
        raise ValueError(f"unknown fit policy {policy!r}")


def run_table7(seed: int = 17) -> dict[str, Any]:
    """Reproduce Table 7: clone detection across the model zoo."""
    codenet = build_codenet(seed=seed)
    rows = []
    scores: dict[str, RetrievalScores] = {}
    for label, zoo_name, policy in TABLE7_MODELS:
        model = get_model(zoo_name)
        _fit_for_policy(model, policy, codenet)
        result = evaluate_retrieval(
            model, codenet, query_kind="code", corpus_kind="code"
        )
        scores[label] = result
        rows.append(
            [
                label,
                f"{result.map_at_100 * 100:.2f}",
                f"{result.p_at_1 * 100:.2f}",
            ]
        )

    p1 = {label: s.p_at_1 for label, s in scores.items()}
    ap = {label: s.map_at_100 for label, s in scores.items()}
    best_p1 = max(p1, key=p1.get)
    best_map = max(ap, key=ap.get)
    checks = {
        "ReACC wins Precision@1": best_p1 == "ReACC-retriever-py",
        "clone-detection model wins MAP@100": best_map
        == "unixcoder-clone-detection",
        "CodeBERT is weakest on MAP@100": min(ap, key=ap.get) == "CodeBERT",
        "generic text embedders trail code models on P@1": p1["thenlper/gte-large"]
        < p1["ReACC-retriever-py"]
        and p1["CodeBERT"] < p1["ReACC-retriever-py"],
        "GraphCodeBERT beats CodeBERT (dataflow helps)": ap["GraphCodeBERT"]
        > ap["CodeBERT"]
        and p1["GraphCodeBERT"] > p1["CodeBERT"],
    }
    table = format_table(
        "Table 7 — zero-shot clone detection",
        ["Model", "MAP@100", "Precision at 1"],
        rows,
    )
    return {"rows": rows, "scores": scores, "checks": checks, "table": table}


# ----------------------------------------------------------------------
# Table 5 — Internal Extinction execution times
# ----------------------------------------------------------------------

@dataclass
class Table5Config:
    """Workload and deployment knobs for the latency study.

    Defaults are scaled down from the paper's ~1050-galaxy catalog so the
    benchmark completes in seconds; the *shape* (ordering and rough
    ratios) is invariant to the scale, which EXPERIMENTS.md demonstrates.
    """

    n_galaxies: int = 40
    votable_latency_s: float = 0.01
    nprocs: int = 5
    #: parallel-instance hint for the download stage (the bottleneck)
    fetch_hint: int = 3
    #: engine package-install latency scale (1.0 = realistic seconds)
    install_scale: float = 0.002
    seed: int = 42
    mappings: tuple[str, ...] = ("simple", "multi")
    timeout: float = 600.0


def _write_catalog(config: Table5Config, directory: Path) -> Path:
    from repro.datasets.galaxies import write_coordinates_file

    return write_coordinates_file(
        directory / "coordinates.txt", config.n_galaxies, seed=config.seed
    )


def _make_graph(config: Table5Config):
    from repro.workflows.astrophysics import build_internal_extinction_graph

    graph = build_internal_extinction_graph(
        latency_s=config.votable_latency_s, seed=config.seed
    )
    for pe in graph.get_pes():
        if type(pe).__name__ == "GetVOTable":
            pe.numprocesses = config.fetch_hint
    return graph


def _run_original(config: Table5Config, mapping: str, workdir: Path) -> float:
    """Plain dispel4py enactment: no registry, no server, no engine."""
    from repro.dataflow.mappings import run_workflow

    catalog = _write_catalog(config, workdir / "resources")
    graph = _make_graph(config)
    t0 = time.perf_counter()
    result = run_workflow(
        graph,
        input=[{"input": str(catalog)}],
        mapping=mapping,
        nprocs=config.nprocs,
        timeout=config.timeout,
    )
    elapsed = time.perf_counter() - t0
    produced = sum(len(v) for v in result.results.values())
    assert produced == config.n_galaxies, (
        f"expected {config.n_galaxies} extinction values, got {produced}"
    )
    return elapsed


def _run_laminar(
    config: Table5Config, mapping: str, workdir: Path, remote: bool
) -> float:
    """Full Laminar stack: client -> (latency) -> server -> engine."""
    import contextlib

    from repro.client import LaminarClient, local_stack
    from repro.engine import ExecutionEngine, SimulatedCondaEnvironment
    from repro.net.latency import make_latency

    environment = SimulatedCondaEnvironment(
        install_latency_scale=config.install_scale
    )
    engine = ExecutionEngine(
        environment, name="remote" if remote else "local"
    )
    latency = make_latency("azure-wan" if remote else "lan")
    client = LaminarClient(
        local_stack(latency=latency, engine=engine), echo=False
    )
    client.register("bench", "bench")
    client.login("bench", "bench")

    _write_catalog(config, workdir / "resources")
    graph = _make_graph(config)
    # fresh (ephemeral) environment per execution: dependencies reinstall
    environment.reset()
    t0 = time.perf_counter()
    with contextlib.chdir(workdir):
        outcome = client.run(
            graph,
            input=[{"input": "resources/coordinates.txt"}],
            process=mapping.upper(),
            args={"num": config.nprocs},
            resources=True,
            register=False,
        )
    elapsed = time.perf_counter() - t0
    produced = sum(len(v) for v in outcome.results.values())
    assert outcome.status == "ok" and produced == config.n_galaxies
    return elapsed


def run_table5(config: Table5Config | None = None) -> dict[str, Any]:
    """Reproduce Table 5: execution times of the Internal Extinction
    workflow for {original dispel4py, Laminar local, Laminar remote} x
    {Simple, Multi}."""
    config = config or Table5Config()
    methods: list[tuple[str, Callable[[str, Path], float]]] = [
        ("original dispel4py", lambda m, d: _run_original(config, m, d)),
        ("Local Execution (with Laminar)", lambda m, d: _run_laminar(config, m, d, False)),
        ("Remote Execution (with Laminar)", lambda m, d: _run_laminar(config, m, d, True)),
    ]
    times: dict[str, dict[str, float]] = {}
    for method_name, runner in methods:
        times[method_name] = {}
        for mapping in config.mappings:
            with tempfile.TemporaryDirectory(prefix="table5-") as tmp:
                times[method_name][mapping] = runner(mapping, Path(tmp))

    rows = [
        [name, *(f"{times[name][m]:.3f} s" for m in config.mappings)]
        for name, _ in methods
    ]
    original = times["original dispel4py"]
    local = times["Local Execution (with Laminar)"]
    remote = times["Remote Execution (with Laminar)"]
    checks = {
        "Laminar local slower than original (framework overhead)": all(
            local[m] > original[m] for m in config.mappings
        ),
        "Laminar remote slower than local (transport)": all(
            remote[m] >= local[m] * 0.95 for m in config.mappings
        ),
        "Multi much faster than Simple": all(
            t["multi"] < t["simple"] for t in times.values()
        )
        if "multi" in config.mappings and "simple" in config.mappings
        else True,
        "local-to-remote gap modest vs framework overhead": all(
            (remote[m] - local[m]) < max(local[m], 1e-9) for m in config.mappings
        ),
    }
    table = format_table(
        "Table 5 — Internal Extinction execution times",
        ["Execution Method", *[m.capitalize() for m in config.mappings]],
        rows,
    )
    return {"times": times, "rows": rows, "checks": checks, "table": table,
            "config": config}
