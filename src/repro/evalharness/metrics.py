"""Ranking metrics: MRR (Table 6), MAP@100 and Precision@1 (Table 7).

All metric math is vectorized: one similarity matrix product per
(model, dataset) pair, then NumPy argsorts — the corpus is never touched
in a Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.datasets.retrieval import RetrievalDataset
from repro.errors import ValidationError
from repro.ml.embedding import EmbeddingModel
from repro.ml.similarity import cosine_similarity_matrix


def rank_corpus(
    query_matrix: np.ndarray,
    corpus_matrix: np.ndarray,
    exclude: Sequence[int | None] | None = None,
) -> np.ndarray:
    """Full ranking (descending similarity) of the corpus per query.

    ``exclude[i]`` masks one corpus index for query ``i`` (set to -inf
    before sorting).  Returns an (nq, nc) array of corpus indices.
    """
    sims = cosine_similarity_matrix(query_matrix, corpus_matrix)
    if exclude is not None:
        for qi, masked in enumerate(exclude):
            if masked is not None:
                sims[qi, masked] = -np.inf
    return np.argsort(-sims, axis=1, kind="stable")


def reciprocal_rank(ranking: np.ndarray, relevant: set[int]) -> float:
    """1/rank of the first relevant item (0 if none present)."""
    if not relevant:
        return 0.0
    for position, index in enumerate(ranking, 1):
        if int(index) in relevant:
            return 1.0 / position
    return 0.0


def mean_reciprocal_rank(
    rankings: np.ndarray, relevant: Sequence[set[int]]
) -> float:
    """MRR over all queries (the Table 6 metric)."""
    if len(rankings) != len(relevant):
        raise ValidationError("rankings and relevance sets must align")
    if len(rankings) == 0:
        return 0.0
    return float(
        np.mean([reciprocal_rank(r, rel) for r, rel in zip(rankings, relevant)])
    )


def average_precision_at_k(
    ranking: np.ndarray, relevant: set[int], k: int = 100
) -> float:
    """AP@k: mean of precision-at-hit over the top-k positions.

    Normalized by ``min(len(relevant), k)`` so a query with more relevant
    items than k is not penalized for the unreachable tail.
    """
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, index in enumerate(ranking[:k], 1):
        if int(index) in relevant:
            hits += 1
            precision_sum += hits / position
    denom = min(len(relevant), k)
    return precision_sum / denom if denom else 0.0


def mean_average_precision_at_k(
    rankings: np.ndarray, relevant: Sequence[set[int]], k: int = 100
) -> float:
    """MAP@k over all queries (the Table 7 headline metric)."""
    if len(rankings) == 0:
        return 0.0
    return float(
        np.mean(
            [
                average_precision_at_k(r, rel, k)
                for r, rel in zip(rankings, relevant)
            ]
        )
    )


def precision_at_1(
    rankings: np.ndarray, relevant: Sequence[set[int]]
) -> float:
    """Fraction of queries whose top-1 result is relevant (Table 7)."""
    if len(rankings) == 0:
        return 0.0
    return float(
        np.mean(
            [
                1.0 if int(r[0]) in rel else 0.0
                for r, rel in zip(rankings, relevant)
            ]
        )
    )


@dataclass
class RetrievalScores:
    """All metrics for one (model, dataset) pair."""

    model: str
    dataset: str
    mrr: float
    map_at_100: float
    p_at_1: float
    n_queries: int
    n_corpus: int

    def to_json(self) -> dict:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "mrr": round(self.mrr, 4),
            "map@100": round(self.map_at_100, 4),
            "p@1": round(self.p_at_1, 4),
            "queries": self.n_queries,
            "corpus": self.n_corpus,
        }


def evaluate_retrieval(
    model: EmbeddingModel,
    dataset: RetrievalDataset,
    *,
    query_kind: str = "text",
    corpus_kind: str = "code",
) -> RetrievalScores:
    """Embed, rank and score one model on one dataset."""
    query_matrix = model.embed(dataset.queries, kind=query_kind)  # type: ignore[arg-type]
    corpus_matrix = model.embed(dataset.corpus, kind=corpus_kind)  # type: ignore[arg-type]
    rankings = rank_corpus(query_matrix, corpus_matrix, dataset.exclude)
    return RetrievalScores(
        model=model.name,
        dataset=dataset.name,
        mrr=mean_reciprocal_rank(rankings, dataset.relevant),
        map_at_100=mean_average_precision_at_k(rankings, dataset.relevant, 100),
        p_at_1=precision_at_1(rankings, dataset.relevant),
        n_queries=dataset.n_queries,
        n_corpus=dataset.n_corpus,
    )
