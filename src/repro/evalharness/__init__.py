"""Evaluation harness: metrics, experiment drivers and paper-style reports.

One driver per paper table:

* :func:`~repro.evalharness.experiments.run_table5` — Internal Extinction
  latency study (original dispel4py vs Laminar local vs Laminar remote).
* :func:`~repro.evalharness.experiments.run_table6` — zero-shot
  text-to-code search MRR (CoSQA-like / CSN-like).
* :func:`~repro.evalharness.experiments.run_table7` — zero-shot clone
  detection MAP@100 / Precision@1 across the model zoo.
"""

from repro.evalharness.metrics import (
    average_precision_at_k,
    evaluate_retrieval,
    mean_average_precision_at_k,
    mean_reciprocal_rank,
    precision_at_1,
    rank_corpus,
)
from repro.evalharness.experiments import (
    Table5Config,
    run_table5,
    run_table6,
    run_table7,
)
from repro.evalharness.reporting import format_table

__all__ = [
    "rank_corpus",
    "mean_reciprocal_rank",
    "average_precision_at_k",
    "mean_average_precision_at_k",
    "precision_at_1",
    "evaluate_retrieval",
    "run_table5",
    "run_table6",
    "run_table7",
    "Table5Config",
    "format_table",
]
