"""Client handle for the simulated Redis broker.

A :class:`BrokerClient` is a thin synchronous RPC stub: each command puts
``(client_id, OP, args)`` on the shared request queue and blocks on its
private response queue.  Instances are picklable (they only hold queues),
so they can be handed to worker processes — each worker must own a
*distinct* client id, exactly like each worker holding its own Redis
connection.
"""

from __future__ import annotations

import queue as queue_mod
from typing import Any

from repro.errors import MappingError


class BrokerClient:
    """Synchronous command interface to the broker process."""

    def __init__(self, client_id: int, request_q: Any, response_q: Any) -> None:
        self.client_id = client_id
        self._request_q = request_q
        self._response_q = response_q

    # ------------------------------------------------------------------
    def _call(self, op: str, args: tuple = (), timeout: float | None = 30.0) -> Any:
        self._request_q.put((self.client_id, op, args))
        try:
            status, value = self._response_q.get(timeout=timeout)
        except queue_mod.Empty as exc:
            raise MappingError(
                f"broker did not answer {op} within {timeout}s",
                params={"op": op, "client": self.client_id},
            ) from exc
        if status == "error":
            raise MappingError(
                f"broker rejected {op}: {value}",
                params={"op": op, "client": self.client_id},
            )
        return value

    # -- connection ------------------------------------------------------
    def ping(self) -> str:
        return self._call("PING")

    def shutdown(self) -> bool:
        return self._call("SHUTDOWN")

    # -- lists -------------------------------------------------------------
    def rpush(self, key: str, *values: Any) -> int:
        return self._call("RPUSH", (key, list(values)))

    def lpush(self, key: str, *values: Any) -> int:
        return self._call("LPUSH", (key, list(values)))

    def blpop(self, key: str, timeout: float | None = None) -> tuple[str, Any] | None:
        """Blocking left pop; returns ``(key, value)`` or ``None`` on timeout.

        The client-side wait is bounded slightly above the server-side
        timeout so a lost reply surfaces as an error instead of a hang.
        """
        client_wait = None if timeout is None else timeout + 10.0
        return self._call("BLPOP", (key, timeout), timeout=client_wait)

    def lpop(self, key: str) -> Any:
        return self._call("LPOP", (key,))

    def llen(self, key: str) -> int:
        return self._call("LLEN", (key,))

    def lrange(self, key: str, start: int, stop: int) -> list[Any]:
        return self._call("LRANGE", (key, start, stop))

    # -- strings / counters ----------------------------------------------
    def set(self, key: str, value: Any) -> bool:
        return self._call("SET", (key, value))

    def get(self, key: str) -> Any:
        return self._call("GET", (key,))

    def incr(self, key: str) -> int:
        return self._call("INCR", (key,))

    # -- hashes ------------------------------------------------------------
    def hset(self, key: str, field: str, value: Any) -> bool:
        return self._call("HSET", (key, field, value))

    def hget(self, key: str, field: str) -> Any:
        return self._call("HGET", (key, field))

    def hgetall(self, key: str) -> dict[str, Any]:
        return self._call("HGETALL", (key,))

    # -- keys ----------------------------------------------------------------
    def delete(self, key: str) -> int:
        return self._call("DEL", (key,))

    def keys(self) -> list[str]:
        return self._call("KEYS")

    def __repr__(self) -> str:
        return f"<BrokerClient id={self.client_id}>"
