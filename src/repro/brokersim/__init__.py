"""Simulated Redis substrate.

dispel4py's ``redis`` mapping uses a Redis server as the message fabric:
PE instances pull work items from Redis lists with blocking pops and push
produced items to their destinations' lists.  No Redis server is
available offline, so this subpackage implements the closest synthetic
equivalent: a dedicated *broker process* (so the data structure really is
external shared state, like a Redis server) speaking a Redis-like command
subset — ``RPUSH``/``LPUSH``/``BLPOP``/``LLEN``/``SET``/``GET``/``INCR``/
``HSET``/``HGET``/``DEL``/``PING`` — over IPC queues.

Blocking-pop semantics (including FIFO wake-up of parked waiters and
timeouts) match Redis' ``BLPOP``, which is the behaviour the mapping's
correctness depends on.
"""

from repro.brokersim.broker import BrokerServer
from repro.brokersim.client import BrokerClient

__all__ = ["BrokerServer", "BrokerClient"]
