"""The broker process: an in-memory Redis-like key-value/list server.

The broker runs in its own OS process and serves requests arriving on a
single request queue, replying on per-client response queues.  Supported
commands mirror the Redis subset dispel4py's redis mapping relies on.

``BLPOP`` is implemented with a parked-waiter table: when the requested
list is empty the client is parked (FIFO per key, like Redis) and woken
by the next ``RPUSH``/``LPUSH`` to that key or when its timeout expires.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections import defaultdict, deque
from typing import Any

from repro.errors import MappingError

_SWEEP_INTERVAL = 0.05


def _broker_main(request_q: Any, response_qs: dict[int, Any]) -> None:
    """Broker event loop (module-level for spawn-safety)."""
    lists: dict[str, deque] = defaultdict(deque)
    hashes: dict[str, dict[str, Any]] = defaultdict(dict)
    strings: dict[str, Any] = {}
    # key -> FIFO of (client_id, deadline or None)
    waiters: dict[str, deque] = defaultdict(deque)

    def reply(client_id: int, value: Any) -> None:
        response_qs[client_id].put(("ok", value))

    def reply_error(client_id: int, message: str) -> None:
        response_qs[client_id].put(("error", message))

    def wake_waiters(key: str) -> None:
        queue = waiters.get(key)
        while queue and lists[key]:
            client_id, deadline = queue.popleft()
            if deadline is not None and time.monotonic() > deadline:
                reply(client_id, None)  # waited too long; Redis returns nil
                continue
            reply(client_id, (key, lists[key].popleft()))
        if queue is not None and not queue:
            waiters.pop(key, None)

    def sweep_timeouts() -> None:
        now = time.monotonic()
        for key in list(waiters):
            queue = waiters[key]
            kept: deque = deque()
            for client_id, deadline in queue:
                if deadline is not None and now > deadline:
                    reply(client_id, None)
                else:
                    kept.append((client_id, deadline))
            if kept:
                waiters[key] = kept
            else:
                waiters.pop(key, None)

    running = True
    while running:
        try:
            client_id, op, args = request_q.get(timeout=_SWEEP_INTERVAL)
        except queue_mod.Empty:
            sweep_timeouts()
            continue
        try:
            if op == "PING":
                reply(client_id, "PONG")
            elif op == "SHUTDOWN":
                reply(client_id, True)
                running = False
            elif op == "RPUSH":
                key, values = args
                lists[key].extend(values)
                wake_waiters(key)
                reply(client_id, len(lists[key]))
            elif op == "LPUSH":
                key, values = args
                for value in values:
                    lists[key].appendleft(value)
                wake_waiters(key)
                reply(client_id, len(lists[key]))
            elif op == "BLPOP":
                key, timeout = args
                if lists[key]:
                    reply(client_id, (key, lists[key].popleft()))
                else:
                    deadline = (
                        None if timeout is None else time.monotonic() + timeout
                    )
                    waiters[key].append((client_id, deadline))
            elif op == "LPOP":
                key = args[0]
                reply(client_id, lists[key].popleft() if lists[key] else None)
            elif op == "LLEN":
                reply(client_id, len(lists[args[0]]))
            elif op == "LRANGE":
                key, start, stop = args
                items = list(lists[key])
                stop_index = len(items) if stop == -1 else stop + 1
                reply(client_id, items[start:stop_index])
            elif op == "SET":
                key, value = args
                strings[key] = value
                reply(client_id, True)
            elif op == "GET":
                reply(client_id, strings.get(args[0]))
            elif op == "INCR":
                key = args[0]
                strings[key] = int(strings.get(key, 0)) + 1
                reply(client_id, strings[key])
            elif op == "HSET":
                key, field, value = args
                hashes[key][field] = value
                reply(client_id, True)
            elif op == "HGET":
                key, field = args
                reply(client_id, hashes[key].get(field))
            elif op == "HGETALL":
                reply(client_id, dict(hashes[args[0]]))
            elif op == "DEL":
                key = args[0]
                removed = int(
                    (lists.pop(key, None) is not None)
                    or (strings.pop(key, None) is not None)
                    or (hashes.pop(key, None) is not None)
                )
                reply(client_id, removed)
            elif op == "KEYS":
                reply(
                    client_id,
                    sorted(set(lists) | set(strings) | set(hashes)),
                )
            else:
                reply_error(client_id, f"unknown command {op!r}")
        except Exception as exc:  # pragma: no cover - defensive
            reply_error(client_id, f"{type(exc).__name__}: {exc}")

    # broker shutting down: fail any remaining waiters
    for key in list(waiters):
        for client_id, _deadline in waiters[key]:
            reply(client_id, None)


class BrokerServer:
    """Parent-side handle: starts the broker process and issues clients."""

    def __init__(self, n_clients: int) -> None:
        if n_clients < 1:
            raise MappingError(f"need at least one client, got {n_clients}")
        ctx = mp.get_context()
        self.request_q = ctx.Queue()
        # one extra response queue reserved for the server's own admin
        # client (used by shutdown) so it never races a worker's replies
        self.response_qs: dict[int, Any] = {
            i: ctx.Queue() for i in range(n_clients + 1)
        }
        self.n_clients = n_clients
        self._admin_id = n_clients
        self._process = ctx.Process(
            target=_broker_main,
            args=(self.request_q, self.response_qs),
            daemon=True,
        )
        self._issued = 0

    def start(self) -> "BrokerServer":
        self._process.start()
        return self

    def client(self, client_id: int | None = None) -> "BrokerClient":
        """Create a client handle (safe to pass to a child process)."""
        from repro.brokersim.client import BrokerClient

        if client_id is None:
            client_id = self._issued
        if not 0 <= client_id < self.n_clients:
            raise MappingError(
                f"client id {client_id} out of range (n={self.n_clients})"
            )
        self._issued = max(self._issued, client_id + 1)
        return BrokerClient(
            client_id, self.request_q, self.response_qs[client_id]
        )

    def shutdown(self, timeout: float = 5.0) -> None:
        from repro.brokersim.client import BrokerClient

        if self._process.is_alive():
            try:
                admin = BrokerClient(
                    self._admin_id,
                    self.request_q,
                    self.response_qs[self._admin_id],
                )
                admin.shutdown()
            except Exception:  # pragma: no cover - defensive
                pass
            self._process.join(timeout=timeout)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=1.0)

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
