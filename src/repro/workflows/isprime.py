"""The IsPrime workflow — Listing 3 / Figures 1 and 9 of the paper.

NumberProducer streams random numbers, IsPrime filters primes through,
PrintPrime prints them.  PE code follows the paper's listings (with the
classic Listing 3 edge cases fixed: 0/1 are not prime, 2 is).
"""

from __future__ import annotations

import random

from repro.dataflow.core import ConsumerPE, IterativePE, ProducerPE
from repro.dataflow.graph import WorkflowGraph


class NumberProducer(ProducerPE):
    """Stateless PE streaming random integers (Listing 1 / PE1)."""

    def __init__(self) -> None:
        ProducerPE.__init__(self)

    def _process(self):
        # Generate a random number
        result = random.randint(1, 1000)
        # Return the number as the output
        return result


class IsPrime(IterativePE):
    """Checks primality and forwards only primes (Listing 3 / PE2)."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        print("before checking data - %s - is prime or not" % num)
        # Check if the given input (num) is prime
        if num >= 2 and all(num % i != 0 for i in range(2, int(num**0.5) + 1)):
            # Only if the input is prime, the value is returned
            return num


class PrintPrime(ConsumerPE):
    """Prints the primes that reach it (Listing 3 / PE3)."""

    def __init__(self) -> None:
        ConsumerPE.__init__(self)

    def _process(self, num):
        # Print the input (num)
        print("the num %s is prime" % num)


def build_isprime_graph(name: str = "isPrime") -> WorkflowGraph:
    """Assemble the three-PE graph of Listing 3."""
    pe1 = NumberProducer()
    pe2 = IsPrime()
    pe3 = PrintPrime()
    graph = WorkflowGraph(name)
    graph.connect(pe1, "output", pe2, "input")
    graph.connect(pe2, "output", pe3, "input")
    return graph
