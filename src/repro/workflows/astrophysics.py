"""The Internal Extinction workflow — Figure 10 / Listing 7 of the paper.

Four PEs compute the internal dust extinction of galaxies:

1. :class:`ReadRaDec` loads coordinate pairs from an input file;
2. :class:`GetVOTable` downloads the relevant VOTable per coordinate
   from the (synthetic) Virtual Observatory;
3. :class:`FilterColumns` parses the VOTable and keeps the columns the
   computation needs (the astropy step of the original);
4. :class:`InternalExtinction` computes the extinction value.

The workflow is reusable: its output stream feeds any later analysis
needing per-galaxy extinction.  The VO *service latency* is the workload
knob behind Table 5 — downloads dominate, so the Multi mapping's
overlapping instances beat the Simple mapping by roughly its parallelism
factor.
"""

from __future__ import annotations

from repro.dataflow.core import IterativePE
from repro.dataflow.graph import WorkflowGraph
from repro.datasets.galaxies import parse_coordinates
from repro.datasets.votable import (
    VOTableService,
    internal_extinction,
    parse_votable,
)


class ReadRaDec(IterativePE):
    """Load (ra, dec) coordinate pairs from the input file (Fig 10 PE1)."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, path):
        # Stream one (ra, dec) pair per catalog line
        with open(path) as handle:
            for ra, dec in parse_coordinates(handle.read()):
                self.write("output", (ra, dec))


class GetVOTable(IterativePE):
    """Download the VOTable for a coordinate pair (Fig 10 PE2).

    ``latency_s`` models the Virtual Observatory round trip; the service
    object is created per instance in ``_preprocess`` so each parallel
    process owns its own connection, mirroring the original workflow.
    """

    def __init__(self, latency_s: float = 0.0, seed: int = 42) -> None:
        IterativePE.__init__(self)
        self.latency_s = latency_s
        self.seed = seed
        self._service: VOTableService | None = None

    def _preprocess(self) -> None:
        self._service = VOTableService(latency_s=self.latency_s, seed=self.seed)

    def _process(self, coords):
        ra, dec = coords
        if self._service is None:  # simple mapping may skip preprocess order
            self._service = VOTableService(latency_s=self.latency_s, seed=self.seed)
        votable_xml = self._service.query(ra, dec)
        return (coords, votable_xml)


class FilterColumns(IterativePE):
    """Parse the VOTable and keep morphology + axis ratio (Fig 10 PE3)."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, data):
        coords, votable_xml = data
        rows = parse_votable(votable_xml)
        if not rows:
            return None
        row = rows[0]
        return {
            "name": row.get("name", ""),
            "ra": coords[0],
            "dec": coords[1],
            "t": float(row["t"]),
            "logr25": float(row["logr25"]),
        }


class InternalExtinction(IterativePE):
    """Compute the internal extinction value (Fig 10 PE4).

    Emits ``(galaxy_name, extinction)`` on its output port; with nothing
    connected downstream the values are collected as workflow results and
    returned to the client.
    """

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, record):
        extinction = internal_extinction(record["t"], record["logr25"])
        return (record["name"], round(extinction, 4))


def build_internal_extinction_graph(
    latency_s: float = 0.0,
    seed: int = 42,
    name: str = "Astrophysics",
) -> WorkflowGraph:
    """Assemble the four-PE pipeline of Figure 10.

    Run it with ``input=[{"input": "resources/coordinates.txt"}]`` and
    ``resources=True`` as in Listing 7.
    """
    read = ReadRaDec()
    fetch = GetVOTable(latency_s=latency_s, seed=seed)
    filt = FilterColumns()
    ext = InternalExtinction()
    graph = WorkflowGraph(name)
    graph.connect(read, "output", fetch, "input")
    graph.connect(fetch, "output", filt, "input")
    graph.connect(filt, "output", ext, "input")
    return graph
