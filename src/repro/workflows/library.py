"""A library of reusable Processing Elements.

The paper's Figure 7 scenario shows a registry holding 22 PEs and five
workflows.  This module provides that population: a realistic spread of
producers, transformers, aggregators and sinks across the text, numeric
and streaming-statistics domains, each with a docstring (so automatic
summarization and semantic search have real material to work with).

Every PE is self-contained: imports needed by ``_process`` happen inside
methods (the dispel4py idiom of Listing 2), so the auto-import analyzer
detects them.
"""

from __future__ import annotations

from repro.dataflow.core import ConsumerPE, GenericPE, IterativePE, ProducerPE


# ----------------------------------------------------------------------
# Producers
# ----------------------------------------------------------------------

class RandomIntegerProducer(ProducerPE):
    """Produce random integers between 1 and 1000."""

    def __init__(self) -> None:
        ProducerPE.__init__(self)

    def _process(self):
        import random

        return random.randint(1, 1000)


class RandomFloatProducer(ProducerPE):
    """Produce random floating point numbers in [0, 1)."""

    def __init__(self) -> None:
        ProducerPE.__init__(self)

    def _process(self):
        import random

        return random.random()


class CounterProducer(ProducerPE):
    """Produce an increasing sequence of integers starting from zero."""

    def __init__(self) -> None:
        ProducerPE.__init__(self)
        self.next_value = 0

    def _process(self):
        value = self.next_value
        self.next_value += 1
        return value


class SentenceProducer(ProducerPE):
    """Produce short example sentences for text processing pipelines."""

    SENTENCES = (
        "the quick brown fox jumps over the lazy dog",
        "a journey of a thousand miles begins with a single step",
        "to be or not to be that is the question",
        "all that glitters is not gold",
    )

    def __init__(self) -> None:
        ProducerPE.__init__(self)
        self.cursor = 0

    def _process(self):
        sentence = self.SENTENCES[self.cursor % len(self.SENTENCES)]
        self.cursor += 1
        return sentence


class GaussianProducer(ProducerPE):
    """Produce normally distributed samples with mean 0 and sigma 1."""

    def __init__(self) -> None:
        ProducerPE.__init__(self)

    def _process(self):
        import random

        return random.gauss(0.0, 1.0)


# ----------------------------------------------------------------------
# Numeric transformers
# ----------------------------------------------------------------------

class SquareNumber(IterativePE):
    """Square each incoming number."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        return num * num

class DoubleNumber(IterativePE):
    """Double each incoming number."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        return num * 2


class IsEven(IterativePE):
    """Forward only even numbers."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        if num % 2 == 0:
            return num


class AbsoluteValue(IterativePE):
    """Replace each number with its absolute value."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        return abs(num)


class ClampValue(IterativePE):
    """Clamp each incoming number into the range [0, 100]."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        return max(0, min(100, num))


class SquareRoot(IterativePE):
    """Compute the square root of each non-negative input."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        import math

        if num >= 0:
            return math.sqrt(num)


# ----------------------------------------------------------------------
# Text transformers
# ----------------------------------------------------------------------

class Tokenizer(IterativePE):
    """Split each sentence into (word, 1) pairs for counting."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, sentence):
        for word in sentence.lower().split():
            self.write("output", (word, 1))


class UppercaseText(IterativePE):
    """Convert each text item to upper case."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, text):
        return text.upper()


class StripPunctuation(IterativePE):
    """Remove punctuation characters from each text item."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, text):
        import string

        return text.translate(str.maketrans("", "", string.punctuation))


class WordLengths(IterativePE):
    """Map each sentence to the list of its word lengths."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, sentence):
        return [len(word) for word in sentence.split()]


class FindNumbers(IterativePE):
    """Extract all integer substrings from each text item."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, text):
        import re

        found = re.findall(r"\d+", text)
        if found:
            return [int(x) for x in found]


# ----------------------------------------------------------------------
# Stateful aggregators
# ----------------------------------------------------------------------

class CountWords(GenericPE):
    """Count word frequencies with a group-by on the word (Listing 2)."""

    def __init__(self) -> None:
        from collections import defaultdict

        GenericPE.__init__(self)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.count = defaultdict(int)

    def _process(self, inputs):
        word, count = inputs["input"]
        self.count[word] += count

    def _postprocess(self):
        for word, count in sorted(self.count.items()):
            self.write("output", (word, count))


class RunningSum(GenericPE):
    """Accumulate the sum of all inputs, emitting the total at the end."""

    def __init__(self) -> None:
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.total = 0

    def _process(self, inputs):
        self.total += inputs["input"]

    def _postprocess(self):
        self.write("output", self.total)


class StreamStatistics(GenericPE):
    """Track count, mean, minimum and maximum of a numeric stream."""

    def __init__(self) -> None:
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def _process(self, inputs):
        value = inputs["input"]
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def _postprocess(self):
        if self.count:
            self.write(
                "output",
                {
                    "count": self.count,
                    "mean": self.total / self.count,
                    "min": self.minimum,
                    "max": self.maximum,
                },
            )


class TopK(GenericPE):
    """Keep the k largest values seen on the stream (k=5 by default)."""

    def __init__(self, k: int = 5) -> None:
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.k = k
        self.heap = []

    def _process(self, inputs):
        import heapq

        heapq.heappush(self.heap, inputs["input"])
        if len(self.heap) > self.k:
            heapq.heappop(self.heap)

    def _postprocess(self):
        self.write("output", sorted(self.heap, reverse=True))


class DeduplicateStream(GenericPE):
    """Forward each distinct value only once."""

    def __init__(self) -> None:
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.seen = set()

    def _process(self, inputs):
        value = inputs["input"]
        if value not in self.seen:
            self.seen.add(value)
            self.write("output", value)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class PrintSink(ConsumerPE):
    """Print every incoming data unit."""

    def __init__(self) -> None:
        ConsumerPE.__init__(self)

    def _process(self, data):
        print(data)


class CollectList(GenericPE):
    """Collect every input into a list emitted when the stream ends."""

    def __init__(self) -> None:
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.items = []

    def _process(self, inputs):
        self.items.append(inputs["input"])

    def _postprocess(self):
        self.write("output", list(self.items))


#: the full library — 22 PEs, matching the paper's Figure 7 registry size
ALL_LIBRARY_PES: tuple[type, ...] = (
    RandomIntegerProducer,
    RandomFloatProducer,
    CounterProducer,
    SentenceProducer,
    GaussianProducer,
    SquareNumber,
    DoubleNumber,
    IsEven,
    AbsoluteValue,
    ClampValue,
    SquareRoot,
    Tokenizer,
    UppercaseText,
    StripPunctuation,
    WordLengths,
    FindNumbers,
    CountWords,
    RunningSum,
    StreamStatistics,
    TopK,
    DeduplicateStream,
    PrintSink,
)
