"""The paper's computational showcases (§5).

* :mod:`repro.workflows.isprime` — the IsPrime workflow of Listing 3 /
  Figure 1 (NumberProducer -> IsPrime -> PrintPrime).
* :mod:`repro.workflows.astrophysics` — the Internal Extinction workflow
  of Figure 10 (readRaDec -> getVoTable -> filterColumns -> internalExt),
  built on the synthetic Virtual Observatory substrate.
"""

from repro.workflows.isprime import (
    IsPrime,
    NumberProducer,
    PrintPrime,
    build_isprime_graph,
)
from repro.workflows.astrophysics import (
    FilterColumns,
    GetVOTable,
    InternalExtinction,
    ReadRaDec,
    build_internal_extinction_graph,
)

__all__ = [
    "NumberProducer",
    "IsPrime",
    "PrintPrime",
    "build_isprime_graph",
    "ReadRaDec",
    "GetVOTable",
    "FilterColumns",
    "InternalExtinction",
    "build_internal_extinction_graph",
]
