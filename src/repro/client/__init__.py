"""The Laminar Client (paper §3.4).

A user-friendly Python application with a dual-layer structure:

* the **client layer** (:class:`LaminarClient`) — the thirteen user
  functions of §3.4.1 (``register``, ``login``, ``register_PE``,
  ``register_Workflow``, ``remove_PE``, ``remove_Workflow``, ``get_PE``,
  ``get_Workflow``, ``get_PEs_By_Workflow``, ``search_Registry``,
  ``describe``, ``get_Registry``, ``run``);
* the **web_client layer** (:class:`~repro.client.web_client.WebClient`)
  — serialization (cloudpickle+base64), automatic import detection,
  client-side summarization and embedding generation, and request
  marshalling.

:func:`local_stack` builds an all-in-one-process deployment (server +
engine + in-memory registry) for quickstarts and tests.
"""

from repro.client.client import LaminarClient, local_stack
from repro.client.web_client import WebClient

__all__ = ["LaminarClient", "WebClient", "local_stack"]
