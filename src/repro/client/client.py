"""The client layer — the thirteen user functions of paper §3.4.1.

Function names, signatures and behaviours follow the paper's user manual
listing, including the flexible ``Union[str, int, WorkflowGraph]``
workflow argument of ``run`` and the automatic registration that ``run``
performs when handed a raw graph.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Union

from repro.dataflow.core import ProcessingElement
from repro.dataflow.graph import WorkflowGraph
from repro.engine.results import ExecutionOutcome
from repro.errors import ValidationError
from repro.client.display import render_registry, render_search_hits
from repro.client.web_client import WebClient
from repro.ml.bundle import ModelBundle
from repro.net.latency import LatencyModel
from repro.net.transport import InProcessTransport, Transport
from repro.serialization import deserialize_object, pack_resources
from repro.server.api import quote_segment

#: accepted mapping names for the ``process`` argument of ``run``
_MAPPING_TYPES = ("SIMPLE", "MULTI", "MPI", "REDIS")

PE_TYPES = Union[type, ProcessingElement]


def local_stack(
    *,
    dao: Any = None,
    latency: LatencyModel | None = None,
    engine: Any = None,
    models: ModelBundle | None = None,
) -> Transport:
    """Build a complete single-process deployment and return its transport.

    The returned transport fronts a fresh :class:`LaminarServer` with an
    in-memory registry and a local Execution Engine — the quickest way to
    a working Laminar (used by the quickstart example and the tests).
    """
    from repro.server import LaminarServer

    server = LaminarServer(dao=dao, engine=engine, models=models)
    return InProcessTransport(server, latency=latency)


class LaminarClient:
    """User-facing Laminar client (paper §3.4.1).

    Parameters
    ----------
    transport:
        A :class:`~repro.net.transport.Transport` (e.g. from
        :func:`local_stack`) or a server object, which is wrapped in an
        in-process transport automatically.
    models:
        Optional model bundle override (shared with the web_client layer).
    echo:
        When True, search/describe results are printed as ASCII tables
        like the paper's figures.
    """

    def __init__(
        self,
        transport: Transport | Any,
        *,
        models: ModelBundle | None = None,
        echo: bool = True,
    ) -> None:
        if not isinstance(transport, Transport):
            transport = InProcessTransport(transport)
        self.web = WebClient(transport, models=models)
        self.echo = echo

    # -- (1) register ---------------------------------------------------
    def register(self, user_name: str, user_password: str) -> dict[str, Any]:
        """Create a user account."""
        return self.web.call(
            "POST",
            "/auth/register",
            {"userName": user_name, "password": user_password},
        )

    # -- (2) login -------------------------------------------------------
    def login(self, user_name: str, user_password: str) -> dict[str, Any]:
        """Authenticate and store the session token."""
        body = self.web.call(
            "POST",
            "/auth/login",
            {"userName": user_name, "password": user_password},
        )
        self.web.token = body["token"]
        self.web.user_name = body["userName"]
        return body

    # -- (3) register_PE ---------------------------------------------------
    def register_PE(
        self, pe: PE_TYPES, description: str | None = None
    ) -> dict[str, Any]:
        """Register a PE; description auto-summarized when omitted."""
        user = self.web.require_login()
        payload = self.web.serialize_pe(pe, description)
        return self.web.call(
            "POST", self.web.registry_path(user, "pe", "add"), payload
        )

    # -- (4) register_Workflow ---------------------------------------------
    def register_Workflow(
        self,
        workflow: WorkflowGraph,
        workflow_name: str,
        description: str | None = None,
    ) -> dict[str, Any]:
        """Register a workflow; its PEs are registered (deduped) too."""
        user = self.web.require_login()
        pe_ids: list[int] = []
        seen: set[str] = set()
        for pe in workflow.get_pes():
            cls = type(pe)
            if cls.__name__ in seen:
                continue
            seen.add(cls.__name__)
            stored = self.register_PE(cls)
            pe_ids.append(int(stored["peId"]))
        payload = self.web.serialize_workflow(
            workflow, workflow_name, description, pe_ids
        )
        return self.web.call(
            "POST", self.web.registry_path(user, "workflow", "add"), payload
        )

    # -- (5) remove_PE ---------------------------------------------------
    def remove_PE(self, pe: Union[str, int]) -> bool:
        user = self.web.require_login()
        kind = "id" if isinstance(pe, int) else "name"
        body = self.web.call(
            "DELETE", self.web.registry_path(user, "pe", "remove", kind, pe)
        )
        return bool(body.get("removed"))

    # -- (6) remove_Workflow ---------------------------------------------
    def remove_Workflow(self, workflow: Union[str, int]) -> bool:
        user = self.web.require_login()
        kind = "id" if isinstance(workflow, int) else "name"
        body = self.web.call(
            "DELETE",
            self.web.registry_path(user, "workflow", "remove", kind, workflow),
        )
        return bool(body.get("removed"))

    # -- (7) get_PE ---------------------------------------------------------
    def get_PE(self, pe: Union[str, int], describe: bool = False) -> type:
        """Retrieve a registered PE *class* for reuse in new workflows."""
        user = self.web.require_login()
        kind = "id" if isinstance(pe, int) else "name"
        body = self.web.call(
            "GET", self.web.registry_path(user, "pe", kind, pe)
        )
        if describe and self.echo:
            print(f"PE {body['peName']} (id {body['peId']}): {body['description']}")
        cls = deserialize_object(body["peCode"])
        if isinstance(cls, type):
            setattr(cls, "__source__", body.get("peSource", ""))
        return cls

    # -- (8) get_Workflow ------------------------------------------------
    def get_Workflow(
        self, workflow: Union[str, int], describe: bool = False
    ) -> WorkflowGraph:
        """Retrieve a registered workflow graph, ready for execution."""
        user = self.web.require_login()
        kind = "id" if isinstance(workflow, int) else "name"
        body = self.web.call(
            "GET", self.web.registry_path(user, "workflow", kind, workflow)
        )
        if describe and self.echo:
            print(
                f"Workflow {body['entryPoint']} (id {body['workflowId']}): "
                f"{body['description']}"
            )
        graph = deserialize_object(body["workflowCode"])
        if not isinstance(graph, WorkflowGraph):
            raise ValidationError(
                "registry returned a non-workflow payload",
                params={"workflow": workflow},
            )
        return graph

    # -- (9) get_PEs_By_Workflow ---------------------------------------------
    def get_PEs_By_Workflow(self, workflow: Union[str, int]) -> list[dict[str, Any]]:
        """List the PE records belonging to a workflow."""
        user = self.web.require_login()
        kind = "id" if isinstance(workflow, int) else "name"
        body = self.web.call(
            "GET", self.web.registry_path(user, "workflow", "pes", kind, workflow)
        )
        return list(body.get("pes", []))

    # -- (10) search_Registry ------------------------------------------------
    def search_Registry(
        self,
        search: str,
        search_type: str = "both",
        query_type: str = "text",
        k: int | None = None,
    ) -> list[dict[str, Any]]:
        """Search the registry (paper §4).

        * ``query_type='text'`` with ``search_type='workflow'`` or
          ``'both'`` — text-based partial matching (Figure 6);
        * ``query_type='text'`` with ``search_type='pe'`` — semantic
          description search (Figure 7);
        * ``query_type='code'`` — code-completion search (Figure 8).
        """
        user = self.web.require_login()
        body = self.web.search_body(search, search_type, query_type, k)
        response = self.web.call(
            "GET",
            self.web.registry_path(user, "search", search, "type", search_type),
            body,
        )
        hits = list(response.get("hits", []))
        if self.echo:
            print(render_search_hits(response.get("searchKind", "text"), hits))
        return hits

    # -- (11) describe ---------------------------------------------------
    def describe(self, obj: Any) -> str:
        """Print name/description info for a PE or workflow reference."""
        user = self.web.require_login()
        name = obj if isinstance(obj, str) else getattr(obj, "__name__", str(obj))
        lines: list[str] = []
        for kind, path in (
            ("PE", self.web.registry_path(user, "pe", "name", name)),
            ("Workflow", self.web.registry_path(user, "workflow", "name", name)),
        ):
            try:
                body = self.web.call("GET", path)
            except Exception:
                continue
            ident = body.get("peId", body.get("workflowId"))
            label = body.get("peName", body.get("entryPoint"))
            lines.append(f"{kind} {label} (id {ident}): {body['description']}")
        text = "\n".join(lines) if lines else f"nothing registered under {name!r}"
        if self.echo:
            print(text)
        return text

    # -- (12) get_Registry ------------------------------------------------
    def get_Registry(self) -> dict[str, Any]:
        """Retrieve every item the user has stored in the Registry."""
        user = self.web.require_login()
        body = self.web.call("GET", self.web.registry_path(user, "all"))
        if self.echo:
            print(render_registry(body.get("pes", []), body.get("workflows", [])))
        return body

    # -- (13) run -------------------------------------------------------------
    def run(
        self,
        workflow: Union[str, int, WorkflowGraph],
        input: Any = None,
        process: str = "SIMPLE",
        args: dict[str, Any] | None = None,
        resources: bool | str = False,
        *,
        register: bool = True,
        engine: str | None = None,
    ) -> ExecutionOutcome:
        """Execute a workflow at the (serverless) Execution Engine.

        ``process`` selects the dispel4py mapping (SIMPLE/MULTI/MPI/REDIS);
        ``args={'num': N}`` sets the process count; ``input`` is an
        iteration count or a list of ``{port: value}`` items; ``resources``
        ships the local ``resources/`` directory (or the given path) to
        the engine.

        When handed a raw graph, ``run`` normally streamlines registration
        of the workflow and its PEs first; ``register=False`` ships the
        serialized graph directly instead ("direct execution without
        workflow registration", the mode the paper's §6.1 latency tests
        used).
        """
        user = self.web.require_login()
        process_name = str(process).upper()
        if process_name not in _MAPPING_TYPES:
            raise ValidationError(
                f"unknown mapping {process!r}",
                params={"process": process},
                details=f"expected one of {_MAPPING_TYPES}",
            )
        args = dict(args or {})
        nprocs = args.get("num")

        body: dict[str, Any] = {
            "input": input,
            "mapping": process_name.lower(),
            "nprocs": nprocs,
            "captureStdout": True,
        }
        if engine is not None:
            body["engine"] = engine
        if isinstance(workflow, WorkflowGraph):
            if register:
                # run() streamlines registration of the workflow + PEs
                registered = self.register_Workflow(
                    workflow, workflow.name, description=None
                )
                body["workflowRef"] = {"id": registered["workflowId"]}
            else:
                from repro.serialization import serialize_object

                body["workflowCode"] = serialize_object(workflow)
                body["workflowName"] = workflow.name
                body["imports"] = self.web.imports_of_graph(workflow)
        elif isinstance(workflow, int):
            body["workflowRef"] = {"id": workflow}
        elif isinstance(workflow, str):
            body["workflowRef"] = {"name": workflow}
        else:
            raise ValidationError(
                f"workflow must be a name, id or WorkflowGraph, got "
                f"{type(workflow).__name__}",
                params={"workflow": workflow},
            )

        if resources:
            directory = "resources" if resources is True else str(resources)
            if not Path(directory).is_dir():
                raise ValidationError(
                    f"resources directory {directory!r} not found",
                    params={"resources": directory},
                )
            body["resources"] = pack_resources(directory)

        response = self.web.call("POST", f"/execution/{user}/run", body)
        outcome = ExecutionOutcome.from_json(response)
        if self.echo and outcome.stdout:
            print(outcome.stdout, end="")
        return outcome

    # ------------------------------------------------------------------
    # Extension: multiple Execution Engines (§3.3/§8 future work)
    # ------------------------------------------------------------------
    def register_Engine(
        self,
        engine_name: str,
        *,
        install_scale: float = 0.0,
        latency: str | None = None,
        description: str = "",
    ) -> dict[str, Any]:
        """Register an additional Execution Engine at the server.

        ``latency`` names a transport preset modelling where the engine
        runs: ``"lan"`` or ``"azure-wan"`` (``None`` = in-process).
        """
        user = self.web.require_login()
        return self.web.call(
            "POST",
            f"/engines/{user}/register",
            {
                "engineName": engine_name,
                "installScale": install_scale,
                "latencyPreset": latency,
                "description": description,
            },
        )

    def get_Engines(self) -> list[dict[str, Any]]:
        """List the registered Execution Engines with their stats."""
        user = self.web.require_login()
        body = self.web.call("GET", f"/engines/{user}/all")
        return list(body.get("engines", []))

    def remove_Engine(self, engine_name: str) -> bool:
        """Deregister an Execution Engine (the default cannot be removed)."""
        user = self.web.require_login()
        body = self.web.call(
            "DELETE", f"/engines/{user}/remove/{quote_segment(engine_name)}"
        )
        return bool(body.get("removed"))
