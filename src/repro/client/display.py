"""Terminal rendering of registry/search results (Figures 6, 7 and 8).

Plain ASCII tables; the client prints these when functions are called
with ``describe=True`` or after a search, mirroring the screenshots in
the paper.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    columns = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [sep]
    out.append(
        "|" + "|".join(f" {columns[i]:<{widths[i]}} " for i in range(len(columns))) + "|"
    )
    out.append(sep)
    for row in str_rows:
        out.append(
            "|" + "|".join(f" {row[i]:<{widths[i]}} " for i in range(len(row))) + "|"
        )
    out.append(sep)
    return "\n".join(out)


def _clip(text: str, width: int = 60) -> str:
    flat = " ".join(str(text).split())
    return flat if len(flat) <= width else flat[: width - 3] + "..."


def render_search_hits(kind: str, hits: Sequence[dict[str, Any]]) -> str:
    """Render the hit list of one search — layout depends on the kind.

    * ``text`` — Figure 6-style: kind/id/name/description/matched-on
    * ``semantic`` — Figure 7-style: peId/peName/description/score
    * ``code`` — Figure 8-style: peId/peName/score/description
    * ``hybrid`` — fused: kind/id/name/RRF score/per-leg ranks
    """
    if not hits:
        return "(no results)"
    if kind == "hybrid":
        return render_table(
            ["kind", "id", "name", "description", "rrf", "text#", "sem#"],
            [
                [
                    h.get("kind", "?"),
                    h.get("id"),
                    h.get("name"),
                    _clip(h.get("description", "")),
                    f"{h['score']:.6f}",
                    h.get("textRank") if h.get("textRank") is not None else "-",
                    h.get("semanticRank")
                    if h.get("semanticRank") is not None
                    else "-",
                ]
                for h in hits
            ],
        )
    if kind == "semantic":
        # hits may mix PEs and workflows (the §8 workflow-search extension)
        return render_table(
            ["kind", "id", "name", "description", "similarity"],
            [
                [
                    "workflow" if "workflowId" in h else "pe",
                    h.get("peId", h.get("workflowId")),
                    h.get("peName", h.get("entryPoint")),
                    _clip(h["description"]),
                    f"{h['score']:.4f}",
                ]
                for h in hits
            ],
        )
    if kind == "code":
        return render_table(
            ["peId", "peName", "similarity", "description"],
            [
                [h["peId"], h["peName"], f"{h['score']:.4f}", _clip(h["description"])]
                for h in hits
            ],
        )
    return render_table(
        ["kind", "id", "name", "description", "matched on"],
        [
            [
                h.get("kind", "?"),
                h.get("id"),
                h.get("name"),
                _clip(h.get("description", "")),
                h.get("matchedOn", ""),
            ]
            for h in hits
        ],
    )


def render_registry(pes: Sequence[dict], workflows: Sequence[dict]) -> str:
    """Render the full registry listing (get_Registry output)."""
    parts = []
    if pes:
        parts.append("Processing Elements:")
        parts.append(
            render_table(
                ["peId", "peName", "description", "imports"],
                [
                    [
                        p["peId"],
                        p["peName"],
                        _clip(p.get("description", "")),
                        ",".join(p.get("peImports", [])) or "-",
                    ]
                    for p in pes
                ],
            )
        )
    if workflows:
        parts.append("Workflows:")
        parts.append(
            render_table(
                ["workflowId", "entryPoint", "description", "peIds"],
                [
                    [
                        w["workflowId"],
                        w["entryPoint"],
                        _clip(w.get("description", "")),
                        ",".join(str(i) for i in w.get("peIds", [])) or "-",
                    ]
                    for w in workflows
                ],
            )
        )
    return "\n".join(parts) if parts else "(registry is empty)"
