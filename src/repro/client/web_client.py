"""The web_client layer (paper §3.4.2).

The conduit between user-facing client functions and the server:

* code serialization via cloudpickle + base64 (the codec the paper chose
  after evaluating pickle and dill);
* automatic import detection (findimports substitute) so the Execution
  Engine can auto-install requirements;
* client-side description summarization and embedding generation at
  registration time (§3.1.1: embeddings are computed once, by the
  Client, and stored in the Registry);
* request construction and error rehydration.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.core import ProcessingElement
from repro.dataflow.graph import WorkflowGraph
from repro.errors import ReproError, TransportError, ValidationError, error_from_json
from repro.ml.bundle import ModelBundle
from repro.net.transport import Request, Response, Transport
from repro.serialization import serialize_object
from repro.serialization.codec import source_or_empty
from repro.serialization.imports import external_requirements, merge_requirements
from repro.server.api import quote_segment


class WebClient:
    """Marshalling layer shared by all client functions."""

    def __init__(self, transport: Transport, models: ModelBundle | None = None) -> None:
        self.transport = transport
        self.models = models or ModelBundle.default()
        self.token: str | None = None
        self.user_name: str | None = None

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def call(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Issue one request; raise the rehydrated error on failure."""
        response: Response = self.transport.request(
            Request(method, path, body or {}, token=self.token)
        )
        if not response.ok:
            if "error" in response.body:
                raise error_from_json(response.body)
            raise TransportError(
                f"request failed with status {response.status}",
                params={"path": path},
            )
        return response.body

    def require_login(self) -> str:
        if self.token is None or self.user_name is None:
            raise ReproError(
                "not logged in; call client.login(name, password) first"
            )
        return self.user_name

    # ------------------------------------------------------------------
    # Serialization of PEs and workflows
    # ------------------------------------------------------------------
    @staticmethod
    def pe_class_of(pe: type | ProcessingElement) -> type:
        if isinstance(pe, ProcessingElement):
            return type(pe)
        if isinstance(pe, type) and issubclass(pe, ProcessingElement):
            return pe
        raise ValidationError(
            f"expected a PE class or instance, got {type(pe).__name__}",
            params={"pe": pe},
        )

    def serialize_pe(
        self, pe: type | ProcessingElement, description: str | None
    ) -> dict[str, Any]:
        """Build the /pe/add payload: code, source, imports, description,
        embeddings — everything §3.1.1 stores in the Registry."""
        cls = self.pe_class_of(pe)
        source = source_or_empty(cls)
        code = serialize_object(cls)
        imports = external_requirements(source) if source else []
        origin = "user"
        if not description:
            description = self.models.summarizer.summarize(
                source or cls.__name__, name=cls.__name__
            )
            origin = "auto"
        desc_embedding = self.models.code_search.embed_one(description, kind="text")
        code_embedding = (
            self.models.completion.embed_one(source, kind="code") if source else None
        )
        return {
            "peName": cls.__name__,
            "description": description,
            "descriptionOrigin": origin,
            "peCode": code,
            "peSource": source,
            "peImports": imports,
            "descEmbedding": [float(x) for x in desc_embedding],
            "codeEmbedding": (
                [float(x) for x in code_embedding]
                if code_embedding is not None
                else None
            ),
        }

    def serialize_workflow(
        self,
        graph: WorkflowGraph,
        entry_point: str,
        description: str | None,
        pe_ids: list[int],
    ) -> dict[str, Any]:
        if not isinstance(graph, WorkflowGraph):
            raise ValidationError(
                f"expected a WorkflowGraph, got {type(graph).__name__}",
                params={"workflow": graph},
            )
        sources = [source_or_empty(type(pe)) for pe in graph.get_pes()]
        desc_embedding = self.models.code_search.embed_one(
            description or entry_point, kind="text"
        )
        return {
            "workflowName": graph.name,
            "entryPoint": entry_point,
            "description": description or "",
            "workflowCode": serialize_object(graph),
            "workflowSource": "\n\n".join(s for s in sources if s),
            "peIds": pe_ids,
            "descEmbedding": [float(x) for x in desc_embedding],
        }

    # ------------------------------------------------------------------
    # Search payloads (client-side query embeddings, §4.2/§4.3)
    # ------------------------------------------------------------------
    def search_body(
        self, search: str, search_type: str, query_type: str, k: int | None
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"queryType": query_type}
        if k is not None:
            body["k"] = k
        if query_type == "code":
            vec = self.models.completion.embed_one(search, kind="code")
            body["queryEmbedding"] = [float(x) for x in vec]
        elif query_type == "semantic" or (
            query_type == "text" and search_type == "pe"
        ):
            vec = self.models.code_search.embed_one(search, kind="text")
            body["queryEmbedding"] = [float(x) for x in vec]
        return body

    # ------------------------------------------------------------------
    # Paths (URL-encoding path segments)
    # ------------------------------------------------------------------
    @staticmethod
    def registry_path(user: str, *segments: Any) -> str:
        encoded = "/".join(quote_segment(s) for s in segments)
        return f"/registry/{quote_segment(user)}/{encoded}"

    def imports_of_graph(self, graph: WorkflowGraph) -> list[str]:
        sources = [source_or_empty(type(pe)) for pe in graph.get_pes()]
        return merge_requirements(sources)
