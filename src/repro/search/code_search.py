"""Code-completion search over PE code embeddings (paper §4.3, Figure 8).

A partial (or complete) code query is embedded with the ReACC-style
retriever and compared against all stored ``codeEmbedding`` vectors.
Each hit also carries a suggested *continuation* extracted by aligning
the query against the retrieved code (the "completion" of ReACC's
retrieve-then-reuse loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.completion import align_continuation
from repro.ml.embedding import EmbeddingModel
from repro.ml.models import ReACCRetriever
from repro.ml.similarity import cosine_similarity_matrix
from repro.registry.entities import PERecord


@dataclass
class CodeHit:
    """One code-search result row (Figure 8)."""

    pe_id: int
    pe_name: str
    description: str
    score: float
    continuation: str

    def to_json(self) -> dict:
        return {
            "peId": self.pe_id,
            "peName": self.pe_name,
            "description": self.description,
            "score": round(float(self.score), 4),
            "continuation": self.continuation,
        }


class CodeSearcher:
    """Bi-encoder code search against stored code embeddings."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or ReACCRetriever()

    def embed_query(self, code: str) -> np.ndarray:
        return self.model.embed_one(code, kind="code")

    def embed_code(self, code: str) -> np.ndarray:
        """The embedding computed at registration time (§3.1.1)."""
        return self.model.embed_one(code, kind="code")

    def search(
        self,
        code_query: str,
        pes: Sequence[PERecord],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
    ) -> list[CodeHit]:
        """Rank ``pes`` by code similarity to ``code_query``."""
        if not pes:
            return []
        qvec = (
            np.asarray(query_embedding, dtype=np.float32)
            if query_embedding is not None
            else self.embed_query(code_query)
        )
        matrix = np.zeros((len(pes), qvec.shape[0]), dtype=np.float32)
        for i, record in enumerate(pes):
            vec = record.code_embedding
            if vec is None:
                vec = self.embed_code(record.pe_source or record.pe_name)
            matrix[i] = vec
        sims = cosine_similarity_matrix(qvec, matrix)[0]
        order = np.argsort(-sims)
        if k is not None:
            order = order[:k]
        hits = []
        for i in order:
            record = pes[i]
            continuation = (
                align_continuation(code_query, record.pe_source)
                if record.pe_source
                else ""
            )
            hits.append(
                CodeHit(
                    pe_id=record.pe_id,
                    pe_name=record.pe_name,
                    description=record.description,
                    score=float(sims[i]),
                    continuation=continuation,
                )
            )
        return hits
