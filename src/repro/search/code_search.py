"""Code-completion search over PE code embeddings (paper §4.3, Figure 8).

A partial (or complete) code query is embedded with the ReACC-style
retriever and compared against all stored ``codeEmbedding`` vectors.
Each hit also carries a suggested *continuation* extracted by aligning
the query against the retrieved code (the "completion" of ReACC's
retrieve-then-reuse loop).

Like :class:`~repro.search.semantic.SemanticSearcher`, the searcher
serves from a pre-stacked :class:`~repro.search.index.VectorIndex` shard
when one is supplied and falls back to the brute-force matrix rebuild
otherwise; both paths rank ties by insertion order and agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.ml.completion import align_continuation
from repro.ml.embedding import EmbeddingModel
from repro.ml.models import ReACCRetriever
from repro.ml.similarity import cosine_similarity_matrix
from repro.registry.entities import PERecord
from repro.search.backend import IndexBackend
from repro.search.index import KIND_CODE
from repro.search.serving import OwnedIds, SearchBatcher, serve_topk


@dataclass
class CodeHit:
    """One code-search result row (Figure 8)."""

    pe_id: int
    pe_name: str
    description: str
    score: float
    continuation: str

    def to_json(self) -> dict:
        return {
            "peId": self.pe_id,
            "peName": self.pe_name,
            "description": self.description,
            "score": round(float(self.score), 4),
            "continuation": self.continuation,
        }


class CodeSearcher:
    """Bi-encoder code search against stored code embeddings."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or ReACCRetriever()

    def embed_query(self, code: str) -> np.ndarray:
        return self.model.embed_one(code, kind="code")

    def embed_code(self, code: str) -> np.ndarray:
        """The embedding computed at registration time (§3.1.1)."""
        return self.model.embed_one(code, kind="code")

    def embed_queries(self, code_queries: list[str]) -> np.ndarray:
        """Batch-embed code queries in one model call (row-independent,
        bitwise identical to per-query :meth:`embed_query`)."""
        return self.model.embed_many(code_queries, kind="code")

    def _query_vector(
        self,
        code_query: str,
        query_embedding: np.ndarray | None,
        index: IndexBackend | None,
    ) -> np.ndarray:
        if query_embedding is not None:
            return np.asarray(query_embedding, dtype=np.float32)
        if index is not None:
            return index.cached_query_vector(
                (KIND_CODE, self.model.name, code_query),
                lambda: self.embed_query(code_query),
            )
        return self.embed_query(code_query)

    def _hit(self, record: PERecord, code_query: str, score: float) -> CodeHit:
        continuation = (
            align_continuation(code_query, record.pe_source)
            if record.pe_source
            else ""
        )
        return CodeHit(
            pe_id=record.pe_id,
            pe_name=record.pe_name,
            description=record.description,
            score=float(score),
            continuation=continuation,
        )

    def search(
        self,
        code_query: str,
        pes: Sequence[PERecord],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
        *,
        index: IndexBackend | None = None,
        user: Hashable | None = None,
    ) -> list[CodeHit]:
        """Rank ``pes`` by code similarity to ``code_query``.

        PEs lacking a stored code embedding are embedded once as a
        fallback and the vector is cached back onto the record.  With
        ``index``/``user`` the scoring runs against the pre-stacked
        shard instead of rebuilding the corpus matrix per query.
        """
        if not pes:
            return []
        qvec = self._query_vector(code_query, query_embedding, index)
        if index is not None and user is not None:
            # read-only fast path (membership owned by the registry
            # service); None -> brute force, which is always exact
            result = index.search_among(
                user, KIND_CODE, [record.pe_id for record in pes], qvec, k
            )
            if result is not None:
                by_id = {record.pe_id: record for record in pes}
                return [
                    self._hit(by_id[rid], code_query, score)
                    for rid, score in zip(*result)
                ]
        matrix = np.zeros((len(pes), qvec.shape[0]), dtype=np.float32)
        for i, record in enumerate(pes):
            vec = record.code_embedding
            if vec is None:
                vec = self.embed_code(record.pe_source or record.pe_name)
                record.code_embedding = vec
            matrix[i] = vec
        sims = cosine_similarity_matrix(qvec, matrix)[0]
        order = np.argsort(-sims, kind="stable")
        if k is not None:
            order = order[:k]
        return [self._hit(pes[i], code_query, sims[i]) for i in order]

    def search_topk(
        self,
        code_query: str,
        *,
        index: IndexBackend,
        user: Hashable,
        owned_ids: OwnedIds,
        resolve: Callable[[list[int]], Sequence[PERecord]],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
        batcher: SearchBatcher | None = None,
    ) -> list[CodeHit]:
        """Index-first serving path: materialize only the top-k records.

        The shared :func:`~repro.search.serving.serve_topk` protocol
        over the code shard — O(k) DAO work per request, with the exact
        brute-force scan as fallback.  With a ``batcher`` the request
        routes through the micro-batching dispatcher (bitwise-identical
        results, one index pass per batch of concurrent searches).
        """
        dispatch = batcher.submit if batcher is not None else serve_topk
        needs_embed = query_embedding is None
        return dispatch(
            index=index,
            user=user,
            kind=KIND_CODE,
            owned_ids=owned_ids,
            k=k,
            query_vector=lambda: self._query_vector(
                code_query, query_embedding, index
            ),
            resolve=resolve,
            rid_of=lambda record: record.pe_id,
            build_hit=lambda record, score: self._hit(
                record, code_query, score
            ),
            fallback=lambda records, qvec: self.search(
                code_query, records, k=k, query_embedding=qvec
            ),
            # same LRU key _query_vector uses, so batch-embedded vectors
            # serve later single-shot repeats of the same query
            embed_key=(
                (KIND_CODE, self.model.name, code_query)
                if needs_embed
                else None
            ),
            embed_text=code_query if needs_embed else None,
            embed_many=self.embed_queries if needs_embed else None,
        )
