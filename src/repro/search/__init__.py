"""Registry search and exploration (paper §4).

Three search mechanisms over registered PEs and workflows:

* :mod:`repro.search.text_search` — normalized partial matching on names
  and descriptions (§4.1, Figure 6).
* :mod:`repro.search.semantic` — bi-encoder semantic search of PE
  descriptions with the (fine-tuned) code-search model (§4.2, Figure 7).
* :mod:`repro.search.code_search` — code-completion retrieval over PE
  code embeddings with the ReACC-style model (§4.3, Figure 8).

All searches exploit embeddings stored in the Registry at registration
time (§3.1.1) — nothing is re-embedded on the corpus side at query time.

The vector index
================

:mod:`repro.search.index` is the serving layer underneath the two
embedding searches.  Without it, every query rebuilds an ``(N, D)``
corpus matrix from Python records and full-sorts the similarities; with
it, embeddings live in pre-stacked, pre-normalized float32 shards keyed
by ``(user, kind)`` and a query costs one BLAS product plus an
``argpartition`` top-k selection.

Quick tour::

    from repro.search import KIND_DESC, SemanticSearcher, VectorIndex

    index = VectorIndex()
    index.add(user_id, KIND_DESC, pe.pe_id, pe.desc_embedding)   # at register
    index.remove(user_id, KIND_DESC, pe.pe_id)                    # at remove

    searcher = SemanticSearcher(model)
    hits = searcher.search(query, pes, k=10, index=index, user=user_id)

Key properties:

* **Incremental** — ``add``/``remove``/``update`` are keyed by record id;
  insertion and removal shift at most the row tail, so registry
  mutations never trigger a rebuild.
* **Exact** — indexed and brute-force paths return identical ids and
  scores, including stable ascending-id tie-breaking for equal
  similarities (``tests/search/test_index_parity.py`` asserts this; the
  searchers fall back to brute force when the candidate set does not
  match the shard).  Live rows stay contiguous in id order precisely so
  the BLAS scoring call is bitwise identical to the brute-force matrix
  rebuild over the same id-ordered records.
* **Thread-safe** — one reentrant lock per index; searches never observe
  torn shards and removed ids are never returned after ``remove``.
* **Cached** — an LRU of recent query embeddings (``index.query_cache``)
  makes repeated queries skip the embedder entirely.

The index is maintained automatically by
:class:`~repro.registry.service.RegistryService` (every PE/workflow
add/remove updates the owner's shards — and journals the same rows to
the DAO so a warm restart attaches without the O(corpus) rebuild; see
*Persistence architecture* below) and served by
the HTTP layer's ``/registry/{user}/search`` endpoint and the ``repro
search`` CLI command, with concurrent same-shard requests coalesced by
:class:`~repro.search.serving.SearchBatcher` into one index pass (see
:mod:`repro.server` for the full request flow).
``benchmarks/test_index_vs_scan.py`` records the speedup over the
per-query matrix rebuild and ``benchmarks/test_http_batch.py`` the
concurrent-serving and cold-start gains.

Persistence architecture
========================

Shards persist **incrementally** (storage schema v6).  Every registry
mutation stamps the ``(user, kind)`` shards whose content it changed
with the bumped mutation counter (the DAO's ``shard_stamps``), and the
service appends the same row batches to an append-only delta journal
(``index_deltas``) at the same counters — a write costs one small
journal row, not a whole-snapshot export.
:meth:`~repro.registry.service.RegistryService.attach_index` replays
each persisted base slab through its delta chain: a shard whose
replayed chain tip equals its stamp loads straight into the index, so
the warm path is O(delta) with zero record deserialization, while
stale, torn, or corrupt shards rebuild individually from their own
owner's records.  The invariants:

* **Freshness is strict equality** — chain tip == shard stamp.  A
  foreign process's write bumps stamps the journal never saw, so its
  shards (and only its shards) rebuild; one tenant's write never
  invalidates another tenant's slab.
* **Chains are strictly increasing** — a delta at or below the current
  tip is a crash-mid-compaction artifact; replay discards exactly that
  shard (never the whole snapshot), and the attach rebuilds it.
* **Compaction is bounded and crash-safe** — past
  ``RegistryService.compact_after_deltas`` / ``compact_after_bytes``
  the chain folds into its base slab at the same stamp, deleting only
  the folded counters.  A crash at any point leaves tip <= stamp:
  stale at worst, never wrongly fresh.
* **Replay is bitwise** — a replayed slab is one C-contiguous float32
  matrix in ascending id order, identical to the live index's layout,
  so warm-started searches equal cold-rebuilt ones byte for byte.

Approximate backends persist their trained state per shard at the same
stamps (``ivf_states`` / ``hnsw_states``);
``attach_approx_backend`` adopts exactly the states whose stored stamp
matches the live shard's, and ``HNSWBackend`` extends its graph in
place on pure appends — new rows route and link into the existing
adjacency, provably identical to a full rebuild for untied
similarities — instead of rebuilding per mutation.
``benchmarks/test_incremental_persist.py`` records the
bytes-written-per-mutation and warm-attach gains.

Pluggable backends
==================

:mod:`repro.search.backend` separates the query API from the ranking
engine behind it: the :class:`~repro.search.backend.IndexBackend`
protocol (``add_many``/``remove``/``search_among_many``/``snapshot`` …)
is what the serving layer programs against, ``VectorIndex`` is the
exact reference implementation, and
:class:`~repro.search.backend.IVFFlatBackend` (name ``"ivf"``) is the
first approximate engine — IVF-flat lists over the *same* shards,
probing ``nprobe`` clusters and re-ranking candidates with the exact
dot product.  Engines are selected **by name** via
:func:`~repro.search.backend.create_backend` /
:func:`~repro.search.backend.build_backends` (the v1 API exposes the
choice per request as ``SearchRequest.backend``), and
``benchmarks/test_ann_recall.py`` tracks the recall-vs-QPS trade.
:class:`~repro.search.backend.HNSWBackend` (name ``"hnsw"``) is the
second approximate engine — a deterministically built small-world
graph over the same shards: an entry layer (a hashed ~1/m row sample)
routes each query, the entries' precomputed exact ``m0``-NN adjacency
expands it, and every candidate is scored with a true dot product, so
results stay a subset of the exact ranking in the exact order.

Indexed text ranking and hybrid fusion
======================================

``queryType=text`` on the v1 API no longer scans owned records in
Python: the DAOs maintain an inverted text index (SQLite FTS5 external
content tables on one side, an in-memory postings mirror computing the
same BM25 arithmetic on the other) and
``RegistryService.text_topk_pes`` / ``text_topk_workflows`` return the
owner-scoped BM25 top-k directly, so only the ``k`` winning records
are hydrated.  The legacy Table-3 route keeps its historical
byte-identical output through the ``candidate_patterns`` parity
adapter in :mod:`repro.search.text_search`.

``queryType=hybrid`` fuses that BM25 text ranking with the semantic
ranking via reciprocal-rank fusion
(:func:`~repro.search.fusion.rrf_fuse`): each leg is ranked
independently to a fused depth, fused scores are ``sum(1/(60+rank))``
accumulated in fixed leg order, and ties break on the ``(kind, id)``
key — the fused ordering is a pure function of the leg orders, so
hybrid pages are bitwise stable across repeats.
"""

from repro.search.text_search import TextMatch, text_search_pes, text_search_workflows
from repro.search.semantic import SemanticHit, SemanticSearcher, WorkflowSemanticHit
from repro.search.code_search import CodeHit, CodeSearcher
from repro.search.backend import (
    HNSWBackend,
    IVFFlatBackend,
    IndexBackend,
    backend_names,
    build_backends,
    create_backend,
    register_backend,
)
from repro.search.fusion import RRF_K, rrf_fuse
from repro.search.index import (
    KIND_CODE,
    KIND_DESC,
    KIND_WORKFLOW,
    EmbeddingLRU,
    VectorIndex,
)
from repro.search.serving import SearchBatcher, serve_topk

__all__ = [
    "IndexBackend",
    "HNSWBackend",
    "IVFFlatBackend",
    "RRF_K",
    "rrf_fuse",
    "backend_names",
    "build_backends",
    "create_backend",
    "register_backend",
    "SearchBatcher",
    "serve_topk",
    "TextMatch",
    "text_search_pes",
    "text_search_workflows",
    "SemanticHit",
    "WorkflowSemanticHit",
    "SemanticSearcher",
    "CodeHit",
    "CodeSearcher",
    "VectorIndex",
    "EmbeddingLRU",
    "KIND_DESC",
    "KIND_CODE",
    "KIND_WORKFLOW",
]
