"""Registry search and exploration (paper §4).

Three search mechanisms over registered PEs and workflows:

* :mod:`repro.search.text_search` — normalized partial matching on names
  and descriptions (§4.1, Figure 6).
* :mod:`repro.search.semantic` — bi-encoder semantic search of PE
  descriptions with the (fine-tuned) code-search model (§4.2, Figure 7).
* :mod:`repro.search.code_search` — code-completion retrieval over PE
  code embeddings with the ReACC-style model (§4.3, Figure 8).

All searches exploit embeddings stored in the Registry at registration
time (§3.1.1) — nothing is re-embedded on the corpus side at query time.
"""

from repro.search.text_search import TextMatch, text_search_pes, text_search_workflows
from repro.search.semantic import SemanticHit, SemanticSearcher, WorkflowSemanticHit
from repro.search.code_search import CodeHit, CodeSearcher

__all__ = [
    "TextMatch",
    "text_search_pes",
    "text_search_workflows",
    "SemanticHit",
    "WorkflowSemanticHit",
    "SemanticSearcher",
    "CodeHit",
    "CodeSearcher",
]
