"""Reciprocal-rank fusion (RRF) for hybrid search.

``queryType=hybrid`` fuses two independent rankings of the same corpus
— the indexed BM25 text ranking and the semantic embedding ranking —
with the classic RRF formula (Cormack, Clarke & Büttcher, SIGIR 2009):

    fused(key) = Σ_legs 1 / (K + rank_leg(key))        (1-based ranks)

with the standard ``K = 60``.  Keys absent from a leg simply contribute
nothing for it, so partial overlap fuses gracefully.

Determinism matters here: the repo's parity tests pin *bitwise* result
stability.  ``rrf_fuse`` guarantees it by construction —

* each key's score is accumulated in fixed leg order, so the float sum
  is evaluated in one deterministic order;
* the final ordering sorts on ``(-score, key)``: score ties (e.g. two
  keys holding the same ranks in swapped legs) break on the key itself,
  never on dict iteration order.

Given the same input rankings the fused output is therefore identical
across runs, platforms and repetitions.
"""

from __future__ import annotations

from typing import Hashable, Sequence

#: the standard RRF smoothing constant (Cormack et al. 2009)
RRF_K = 60


def rrf_fuse(
    rankings: Sequence[Sequence[Hashable]], *, k: int = RRF_K
) -> list[tuple[Hashable, float, tuple[int | None, ...]]]:
    """Fuse ``rankings`` (best-first key sequences) into one ranking.

    Returns ``(key, fused_score, per_leg_ranks)`` tuples, best first;
    ``per_leg_ranks[i]`` is the key's 1-based rank in ``rankings[i]``
    or ``None`` when that leg did not return it.  Keys must be unique
    within each leg (a ranking listing an item twice is a caller bug
    and raises ``ValueError``) and orderable across legs, since the
    deterministic tie-break sorts on the key.
    """
    if k <= 0:
        raise ValueError(f"RRF constant must be positive, got {k}")
    legs = len(rankings)
    scores: dict[Hashable, float] = {}
    ranks: dict[Hashable, list[int | None]] = {}
    for leg, ranking in enumerate(rankings):
        seen: set[Hashable] = set()
        for position, key in enumerate(ranking, start=1):
            if key in seen:
                raise ValueError(
                    f"ranking {leg} lists key {key!r} more than once"
                )
            seen.add(key)
            scores[key] = scores.get(key, 0.0) + 1.0 / (k + position)
            ranks.setdefault(key, [None] * legs)[leg] = position
    ordered = sorted(scores, key=lambda key: (-scores[key], key))
    return [(key, scores[key], tuple(ranks[key])) for key in ordered]
