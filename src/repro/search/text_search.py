"""Text-based registry search (paper §4.1).

Matches user text queries against workflow/PE names and descriptions
with support for partial matching: querying ``prime`` finds the
registered ``isPrime`` workflow (Figure 6).  Query and stored text are
normalized in a preprocessing step (lowercasing, splitting identifiers)
exactly as footnote 14 describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.ml.tokenize import split_subtokens, tokenize_text
from repro.registry.entities import PERecord, WorkflowRecord

_ALNUM_RUN = re.compile(r"[a-z0-9]+")


@dataclass
class TextMatch:
    """One text-search hit."""

    kind: str  # "pe" | "workflow"
    entity_id: int
    name: str
    description: str
    matched_on: str  # "name" | "description" | "name+description"
    score: float

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "id": self.entity_id,
            "name": self.name,
            "description": self.description,
            "matchedOn": self.matched_on,
            "score": round(self.score, 4),
        }


def normalize(text: str) -> str:
    """Lowercased, subtoken-expanded view used for matching.

    ``isPrime`` -> ``isprime is prime`` so both the raw name and its word
    parts are searchable.
    """
    raw = text.lower()
    words = []
    for token in text.replace("-", " ").replace(".", " ").split():
        words.extend(split_subtokens(token))
    return " ".join([raw, *words])


def fts_pe_document(name: str, description: str) -> tuple[str, str]:
    """``(name_norm, desc_doc)`` columns for the PE text side table.

    ``name_norm`` is the :func:`normalize` view of the name — it doubles
    as the whole-query substring arm (LIKE / ``in``) and as the FTS5
    name document; ``desc_doc`` is the normalized description.
    """
    return normalize(name), normalize(description or "")


def fts_workflow_document(
    entry_point: str, workflow_name: str, description: str
) -> tuple[str, str]:
    """``(name_norm, desc_doc)`` columns for the workflow side table.

    The two name arms are joined with a newline: ``\\n`` is a tokenizer
    separator (so BM25 sees both arms' tokens) and cannot occur inside
    a stripped query needle, so the substring arm never matches across
    the arm boundary.
    """
    name_norm = normalize(entry_point) + "\n" + normalize(workflow_name)
    return name_norm, normalize(description or "")


def match_terms(query: str) -> list[str]:
    """Sorted distinct scorer words — the BM25 ``MATCH`` vocabulary.

    Exactly the words :func:`_match_score` tests for per-word hits
    (pure ASCII ``[a-z]+``, no synonyms/stemming), so a term-level FTS5
    match agrees with the legacy scorer's word-hit conditions.
    """
    return sorted(
        {w for w in tokenize_text(query, synonyms=False, stemming=False) if w}
    )


def pe_match_label(query: str, record: PERecord) -> str:
    """``matchedOn`` label for an FTS-ranked PE hit.

    Falls back to ``name+description`` for the rare hits the indexed
    path finds but the legacy scorer would miss (punctuation-embedded
    camelCase, where unicode61 runs differ from subtoken splits).
    """
    return (
        _match_score(query, record.pe_name, record.description)[1]
        or "name+description"
    )


def workflow_match_label(query: str, record: WorkflowRecord) -> str:
    """``matchedOn`` label for an FTS-ranked workflow hit (best arm)."""
    best, label = 0.0, ""
    for name in (record.entry_point, record.workflow_name):
        score, matched = _match_score(query, name, record.description)
        if score > best:
            best, label = score, matched
    return label or "name+description"


def candidate_patterns(query: str) -> list[str] | None:
    """Substring patterns whose LIKE union over-approximates the scorer.

    Only the **legacy Table-3 parity adapter** still consumes these
    (``RegistryDAO.pes_owned_by_matching`` feeding the byte-identical
    legacy text route).  The v1 ``queryType=text`` path ranks directly
    in the FTS5 index (``RegistryDAO.text_topk_pes``) and never builds
    patterns.  Kept because the legacy route's contract is the *exact*
    Python scorer output, which wants the exact candidate superset: a
    record can only score above zero in :func:`_match_score` if at
    least one of these patterns occurs as a case-insensitive substring
    of its raw name or description.  That holds because every token
    :func:`normalize` produces (the raw lowercase words and all
    identifier subtokens) is a contiguous lowercase substring of the
    stored text, and every scorer condition — whole-query containment,
    per-word name hits, per-word description hits — requires one of the
    query's words or alphanumeric runs to land inside such a token.
    Patterns are pure ASCII (both tokenizers are), matching SQLite's
    ASCII-only case folding for ``LIKE``.

    Returns ``None`` when the query yields no usable pattern (e.g. pure
    punctuation); the caller must then scan the full owned listing.
    """
    patterns = {
        word
        for word in tokenize_text(query, synonyms=False, stemming=False)
        if word
    }
    patterns.update(_ALNUM_RUN.findall(query.lower()))
    if not patterns:
        return None
    return sorted(patterns)


def _match_score(query: str, name: str, description: str) -> tuple[float, str]:
    """Score a (name, description) pair against the normalized query.

    Name substring hits dominate; description hits contribute per-word.
    Returns (score, matched_on); score 0 means no match.
    """
    query_words = [
        w for w in tokenize_text(query, synonyms=False, stemming=False) if w
    ]
    name_norm = normalize(name)
    desc_norm = normalize(description or "")

    score = 0.0
    matched = []
    if query.lower().strip() and query.lower().strip() in name_norm:
        score += 2.0
        matched.append("name")
    name_hits = sum(1 for w in query_words if w in name_norm.split())
    if name_hits and "name" not in matched:
        score += 1.0 + 0.25 * name_hits
        matched.append("name")
    desc_hits = sum(1 for w in query_words if w in desc_norm.split())
    if desc_hits:
        score += 0.5 * desc_hits
        matched.append("description")
    return score, "+".join(matched) if matched else ""


def text_search_workflows(
    query: str, workflows: Sequence[WorkflowRecord]
) -> list[TextMatch]:
    """Rank workflows by partial text match on names/descriptions."""
    hits: list[TextMatch] = []
    for record in workflows:
        best = 0.0
        matched_on = ""
        for name in (record.entry_point, record.workflow_name):
            score, matched = _match_score(query, name, record.description)
            if score > best:
                best, matched_on = score, matched
        if best > 0:
            hits.append(
                TextMatch(
                    kind="workflow",
                    entity_id=record.workflow_id,
                    name=record.entry_point,
                    description=record.description,
                    matched_on=matched_on,
                    score=best,
                )
            )
    hits.sort(key=lambda h: (-h.score, h.entity_id))
    return hits


def text_search_pes(query: str, pes: Sequence[PERecord]) -> list[TextMatch]:
    """Rank PEs by partial text match on names/descriptions."""
    hits: list[TextMatch] = []
    for record in pes:
        score, matched_on = _match_score(query, record.pe_name, record.description)
        if score > 0:
            hits.append(
                TextMatch(
                    kind="pe",
                    entity_id=record.pe_id,
                    name=record.pe_name,
                    description=record.description,
                    matched_on=matched_on,
                    score=score,
                )
            )
    hits.sort(key=lambda h: (-h.score, h.entity_id))
    return hits
