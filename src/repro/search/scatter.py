"""Scatter/gather serving over partitioned index shards (ROADMAP item 1).

The single-process serving stack holds every (user, kind) slab inside
one :class:`~repro.search.index.VectorIndex` guarded by one lock — all
queries serialize on that lock, and the whole corpus must fit one
process.  This module partitions the slabs across N *shard workers*
(in-process or remote) behind the same
:class:`~repro.search.backend.IndexBackend` protocol, in the spirit of
Serverless Lucene's per-shard query executors:

* :func:`assign_worker` — deterministic placement: each ``(user, kind)``
  shard lives **whole** on exactly one worker, chosen by a stable
  content hash (``sha1``, never Python's per-process salted ``hash``),
  so every process in a fleet computes the same placement;
* :class:`LocalShardWorker` — an in-process worker owning its own
  :class:`~repro.search.index.VectorIndex` (own slabs, own lock:
  queries against different workers rank concurrently, the BLAS product
  releasing the GIL);
* :class:`RemoteShardWorker` — the same worker surface over a
  :class:`~repro.net.transport.Transport` to a
  :class:`~repro.server.shardnode.ShardNode` (in-process or real HTTP),
  with bounded retry/backoff and failure accounting;
* :func:`merge_ranked` — the gather step: merge per-shard top-k lists
  into one ranking with the exact backend's stable ordering (descending
  score, ascending-id tie-break);
* :class:`ScatterGatherBackend` — the backend: mutations route to the
  owning worker, ``search_among``/``search_among_many`` fan to the
  owning worker(s) and gather through :func:`merge_ranked`, and any
  unreachable shard degrades to ``None`` — the serving layer's
  brute-force fallback path — instead of failing the request.

Why whole-shard placement (a measured result)
=============================================

Bitwise parity with the single-process exact backend is this repo's
correctness bar, and it *forbids* splitting one slab's rows across
workers: float32 BLAS GEMV results depend on the slab shape (kernel
blocking and tail handling change the accumulation order), so scoring a
row subset ``M[part] @ q`` does not reproduce the rows' scores from the
full-slab product ``M @ q``.  Measured on this container: partitioning
an ``N=5003, D=2048`` slab into 2..8 row groups changes at least one
score for every grouping tried, and per-row ``np.dot(M[i], q)`` differs
from the GEMV element for 4435 of 5003 rows.  (Same family of effect as
the measured joint-GEMM note in ``VectorIndex.search_among_many``.)
Placing each (user, kind) slab whole on one worker sidesteps this: the
owning worker computes the identical ``(1, D) @ (D, N)`` product over
the identical slab, so scatter/gather results are bitwise identical to
the single-process backend, and throughput scales by spreading distinct
serving keys — the registry's unit of tenant isolation — across
workers.  :func:`merge_ranked` is still the gather step for every query
(and is itself bitwise-exact: merging any disjoint partition of a
ranking's (id, score) pairs reproduces the global ranking, because the
scores being merged are position-independent *outputs*).
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.errors import TransportError, ValidationError
from repro.net.transport import Request, Transport
from repro.search.index import EmbeddingLRU, VectorIndex, _as_vector


def assign_worker(user: Hashable, kind: str, n_workers: int) -> int:
    """Deterministic owner of the ``(user, kind)`` shard among N workers.

    Stable across processes and Python invocations (``sha1`` of the
    repr-serialized key, not the salted builtin ``hash``), so a client,
    a router and every node in a fleet agree on placement without
    coordination.
    """
    if n_workers <= 0:
        raise ValidationError(f"n_workers must be positive, got {n_workers}")
    digest = hashlib.sha1(f"{user!r}/{kind}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_workers


def merge_ranked(
    parts: Sequence[tuple[Sequence[int], np.ndarray]],
    k: int | None = None,
) -> tuple[list[int], np.ndarray]:
    """Merge per-shard top-k ``(ids, scores)`` lists into one ranking.

    The gather step of the scatter protocol: descending score with the
    exact backend's stable **ascending-id tie-break**.  Merging any
    disjoint partition of a ranking's (id, score) pairs reproduces the
    global ranking bitwise — scores are outputs, carried through
    unchanged — which is what makes the gather exact whenever the
    per-shard scores themselves are exact.
    """
    live = [
        (ids, scores)
        for ids, scores in parts
        if len(ids) > 0
    ]
    if not live:
        return [], np.empty(0, dtype=np.float32)
    all_ids = np.concatenate(
        [np.asarray(ids, dtype=np.int64) for ids, _ in live]
    )
    all_scores = np.concatenate(
        [np.asarray(scores, dtype=np.float32) for _, scores in live]
    )
    # primary key last in lexsort: descending score (float32 negation is
    # exact), secondary ascending id — the exact backend's tie-break
    order = np.lexsort((all_ids, -all_scores))
    if k is not None:
        order = order[:k]
    return (
        [int(i) for i in all_ids[order]],
        all_scores[order].astype(np.float32, copy=False),
    )


class ShardUnavailable(RuntimeError):
    """A shard worker could not serve (node down / transport exhausted)."""


class LocalShardWorker:
    """In-process shard worker: owns its slabs, its lock, its stats.

    Each worker's :class:`VectorIndex` has its *own* reentrant lock, so
    queries routed to different workers rank concurrently (the BLAS
    product drops the GIL) instead of serializing on one process-wide
    index lock — that is where the 1 → N QPS scaling comes from.
    """

    transport_kind = "local"

    def __init__(self, worker_id: int, index: VectorIndex | None = None) -> None:
        self.worker_id = int(worker_id)
        self.index = index if index is not None else VectorIndex()

    # -- mutation -------------------------------------------------------
    def add(self, user, kind, rid, vector) -> None:
        self.index.add(user, kind, rid, vector)

    def add_many(self, user, kind, rids, vectors) -> None:
        self.index.add_many(user, kind, rids, vectors)

    def remove(self, user, kind, rid) -> bool:
        return self.index.remove(user, kind, rid)

    def remove_everywhere(self, user, rid) -> None:
        self.index.remove_everywhere(user, rid)

    def clear(self, user=None) -> None:
        self.index.clear(user)

    # -- retrieval ------------------------------------------------------
    def search_among_many(self, user, kind, rids, queries, ks):
        return self.index.search_among_many(user, kind, rids, queries, ks)

    # -- introspection --------------------------------------------------
    def snapshot(self, user=None):
        return self.index.snapshot(user)

    def ping(self) -> dict:
        stats = self.index.stats()
        return {
            "ok": True,
            "shards": len(stats),
            "rows": sum(info["live"] for info in stats.values()),
        }

    def describe(self) -> dict:
        return {"kind": self.transport_kind, "workerId": self.worker_id}


def _wire_vector(vector) -> list[float]:
    """float32 row -> JSON floats, losslessly.

    float32 → float64 is exact, ``json`` round-trips float64 exactly
    (shortest-repr), and converting back to float32 restores the value
    bit for bit — so remote scoring inputs and outputs survive the wire
    unchanged and HTTP-reached shards stay bitwise identical.
    """
    return [float(x) for x in np.asarray(vector, dtype=np.float32).reshape(-1)]


class RemoteShardWorker:
    """Shard worker behind a :class:`Transport` (shard-node protocol).

    Speaks the JSON protocol of :class:`repro.server.shardnode.ShardNode`
    — usable over :class:`~repro.net.transport.InProcessTransport` or
    real HTTP via :class:`~repro.server.http.HttpTransport`.  Transport
    failures retry with bounded backoff (``retries`` attempts beyond the
    first, sleeping ``backoff * 2**attempt`` capped at ``backoff_cap``);
    exhausted retries raise :class:`ShardUnavailable`, which the backend
    converts into the brute-force fallback path.
    """

    transport_kind = "remote"

    def __init__(
        self,
        worker_id: int,
        transport: Transport,
        *,
        retries: int = 2,
        backoff: float = 0.02,
        backoff_cap: float = 0.25,
    ) -> None:
        self.worker_id = int(worker_id)
        self.transport = transport
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = max(self.backoff, float(backoff_cap))
        self.calls = 0
        self.retried = 0

    def _call(self, path: str, payload: dict) -> dict:
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retried += 1
                time.sleep(min(self.backoff * (2 ** (attempt - 1)),
                               self.backoff_cap))
            try:
                self.calls += 1
                response = self.transport.request(
                    Request("POST", path, payload)
                )
            except TransportError as exc:
                last = exc
                continue
            if response.status != 200:
                raise ShardUnavailable(
                    f"shard worker {self.worker_id} rejected {path}: "
                    f"{response.status} {response.body}"
                )
            return response.body
        raise ShardUnavailable(
            f"shard worker {self.worker_id} unreachable after "
            f"{self.retries + 1} attempts: {last}"
        ) from last

    # -- mutation -------------------------------------------------------
    def add(self, user, kind, rid, vector) -> None:
        self._call(
            "/shard/add",
            {
                "user": user,
                "kind": kind,
                "rid": int(rid),
                "vector": _wire_vector(vector),
            },
        )

    def add_many(self, user, kind, rids, vectors) -> None:
        matrix = np.asarray(vectors, dtype=np.float32)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        self._call(
            "/shard/add_many",
            {
                "user": user,
                "kind": kind,
                "rids": [int(rid) for rid in rids],
                "vectors": [_wire_vector(row) for row in matrix],
            },
        )

    def remove(self, user, kind, rid) -> bool:
        body = self._call(
            "/shard/remove", {"user": user, "kind": kind, "rid": int(rid)}
        )
        return bool(body.get("removed"))

    def remove_everywhere(self, user, rid) -> None:
        self._call("/shard/remove_everywhere", {"user": user, "rid": int(rid)})

    def clear(self, user=None) -> None:
        self._call("/shard/clear", {"user": user})

    # -- retrieval ------------------------------------------------------
    def search_among_many(self, user, kind, rids, queries, ks):
        body = self._call(
            "/shard/search",
            {
                "user": user,
                "kind": kind,
                "rids": [int(rid) for rid in rids],
                "queries": [_wire_vector(q) for q in queries],
                "ks": [None if k is None else int(k) for k in ks],
            },
        )
        if not body.get("match", False):
            return None
        return [
            (
                [int(i) for i in entry["ids"]],
                np.asarray(entry["scores"], dtype=np.float32),
            )
            for entry in body["results"]
        ]

    # -- introspection --------------------------------------------------
    def snapshot(self, user=None):
        body = self._call("/shard/export", {"user": user})
        out = {}
        for entry in body.get("shards", []):
            key = (entry["user"], str(entry["kind"]))
            out[key] = (
                np.asarray(entry["ids"], dtype=np.int64),
                np.asarray(entry["vectors"], dtype=np.float32),
            )
        return out

    def ping(self) -> dict:
        return self._call("/shard/health", {})

    def describe(self) -> dict:
        return {"kind": self.transport_kind, "workerId": self.worker_id}


class _WorkerHealth:
    """Batcher-style per-worker counters + a small circuit breaker."""

    __slots__ = (
        "searches",
        "mutations",
        "failures",
        "consecutive_failures",
        "blocked_until",
    )

    def __init__(self) -> None:
        self.searches = 0
        self.mutations = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.blocked_until = 0.0

    def to_json(self) -> dict:
        return {
            "searches": self.searches,
            "mutations": self.mutations,
            "failures": self.failures,
            "consecutiveFailures": self.consecutive_failures,
            "down": self.blocked_until > time.monotonic(),
        }


class ScatterGatherBackend:
    """Fan-out :class:`IndexBackend` over N shard workers.

    Placement is :func:`assign_worker` — each (user, kind) slab lives
    whole on one worker (see the module docstring for the measured
    reason row-splitting is not bitwise-safe).  Mutations route to the
    owning worker; retrieval fans the query out to the shard's worker
    set and gathers through :func:`merge_ranked`.  The contract the
    serving layer relies on is unchanged:

    * results are **bitwise identical** to the single-process exact
      backend (same slab contents, same ``(1, D)`` product, same stable
      ascending-id tie-break, lossless JSON wire format for remote
      workers);
    * a membership mismatch — *or an unreachable worker, or a shard
      marked dirty by a failed remote mutation* — returns ``None``, so
      the caller serves brute force: a downed shard node degrades, it
      never fails the request;
    * per-worker health (searches, mutations, failures, circuit-breaker
      state) is tracked batcher-style and exposed via :meth:`stats`.

    After ``fail_threshold`` consecutive failures a worker is skipped
    for ``cooldown`` seconds (queries degrade immediately instead of
    re-paying the retry timeout per request); the first probe after the
    cooldown re-opens it.
    """

    name = "scatter"

    #: truncated top-k is a prefix of the full ranking — identical to
    #: the exact backend, because results are bitwise identical to it
    prefix_stable_topk = True

    def __init__(
        self,
        workers: Sequence[LocalShardWorker | RemoteShardWorker] | None = None,
        *,
        shards: int | None = None,
        query_cache_size: int = 256,
        fail_threshold: int = 3,
        cooldown: float = 1.0,
    ) -> None:
        if workers is None:
            workers = [LocalShardWorker(i) for i in range(int(shards or 2))]
        if not workers:
            raise ValidationError("scatter backend needs at least one worker")
        self.workers = list(workers)
        self.query_cache = EmbeddingLRU(query_cache_size)
        self.fail_threshold = max(1, int(fail_threshold))
        self.cooldown = max(0.0, float(cooldown))
        self._lock = threading.Lock()
        self._health = [_WorkerHealth() for _ in self.workers]
        #: (user, kind) shards whose owning worker missed a mutation —
        #: they must not serve until resynced (None -> exact fallback)
        self._dirty: set[tuple[Hashable, str]] = set()
        # gather-path counters (batcher-style, for `stats`)
        self.scatter_queries = 0
        self.gather_merges = 0
        self.degraded_queries = 0

    # ------------------------------------------------------------------
    # Placement + health
    # ------------------------------------------------------------------
    def worker_of(self, user: Hashable, kind: str) -> int:
        return assign_worker(user, kind, len(self.workers))

    def _blocked(self, worker_id: int) -> bool:
        with self._lock:
            return self._health[worker_id].blocked_until > time.monotonic()

    def _note_failure(self, worker_id: int) -> None:
        with self._lock:
            health = self._health[worker_id]
            health.failures += 1
            health.consecutive_failures += 1
            if health.consecutive_failures >= self.fail_threshold:
                health.blocked_until = time.monotonic() + self.cooldown

    def _note_success(self, worker_id: int, *, search: bool) -> None:
        with self._lock:
            health = self._health[worker_id]
            health.consecutive_failures = 0
            health.blocked_until = 0.0
            if search:
                health.searches += 1
            else:
                health.mutations += 1

    # ------------------------------------------------------------------
    # Mutation: route to the owning worker
    # ------------------------------------------------------------------
    def _mutate(
        self, user: Hashable, kind: str, op: Callable[..., object], *args
    ):
        worker_id = self.worker_of(user, kind)
        try:
            result = op(self.workers[worker_id], *args)
        except ShardUnavailable:
            # never lose a write silently: the shard is marked dirty and
            # stops serving (None -> exact fallback) until resynced
            self._note_failure(worker_id)
            with self._lock:
                self._dirty.add((user, kind))
            return None
        self._note_success(worker_id, search=False)
        return result

    def add(self, user, kind, rid, vector) -> None:
        self._mutate(
            user, kind, lambda w: w.add(user, kind, rid, vector)
        )

    def add_many(self, user, kind, rids, vectors) -> None:
        self._mutate(
            user, kind, lambda w: w.add_many(user, kind, rids, vectors)
        )

    def remove(self, user, kind, rid) -> bool:
        removed = self._mutate(
            user, kind, lambda w: w.remove(user, kind, rid)
        )
        return bool(removed)

    def remove_everywhere(self, user, rid) -> None:
        # the id may live in any of the user's kinds — every worker that
        # owns one of them gets the removal (kind set is small and fixed)
        from repro.search.index import KIND_CODE, KIND_DESC, KIND_WORKFLOW

        for kind in (KIND_DESC, KIND_CODE, KIND_WORKFLOW):
            self._mutate(user, kind, lambda w, k=kind: w.remove(user, k, rid))

    def clear(self, user=None) -> None:
        for worker_id, worker in enumerate(self.workers):
            try:
                worker.clear(user)
            except ShardUnavailable:
                self._note_failure(worker_id)
                continue
            self._note_success(worker_id, search=False)
        with self._lock:
            if user is None:
                self._dirty.clear()
            else:
                self._dirty = {
                    key for key in self._dirty if key[0] != user
                }
        self.query_cache.clear()

    # ------------------------------------------------------------------
    # Retrieval: scatter to the owning worker set, gather + merge
    # ------------------------------------------------------------------
    def search_among(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray] | None:
        results = self.search_among_many(user, kind, rids, [query], [k])
        return None if results is None else results[0]

    def search_among_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        queries: Sequence[np.ndarray],
        ks: Sequence[int | None],
    ) -> list[tuple[list[int], np.ndarray]] | None:
        for k in ks:
            if k is not None and k <= 0:
                raise ValidationError(f"k must be positive, got {k}")
        if len(queries) != len(ks):
            raise ValidationError(
                f"got {len(queries)} queries for {len(ks)} k values"
            )
        qvecs = [_as_vector(query) for query in queries]
        with self._lock:
            self.scatter_queries += 1
            dirty = (user, kind) in self._dirty
        if dirty:
            with self._lock:
                self.degraded_queries += 1
            return None
        worker_id = self.worker_of(user, kind)
        if self._blocked(worker_id):
            # circuit open: degrade immediately instead of re-paying the
            # retry timeout on every request while the node is down
            with self._lock:
                self.degraded_queries += 1
            return None
        try:
            per_shard = self.workers[worker_id].search_among_many(
                user, kind, rids, qvecs, ks
            )
        except ShardUnavailable:
            self._note_failure(worker_id)
            with self._lock:
                self.degraded_queries += 1
            return None
        self._note_success(worker_id, search=True)
        if per_shard is None:  # membership mismatch on the worker
            return None
        # gather: whole-shard placement means one ranked list per query,
        # but every result flows through the same merge the multi-source
        # protocol defines — (descending score, ascending id), stable
        with self._lock:
            self.gather_merges += len(per_shard)
        return [
            merge_ranked([(ids, scores)], k)
            for (ids, scores), k in zip(per_shard, ks)
        ]

    # ------------------------------------------------------------------
    # Persistence / introspection
    # ------------------------------------------------------------------
    def snapshot(
        self, user: Hashable | None = None
    ) -> dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]]:
        """Union of every reachable worker's slabs (placement is
        disjoint, so the dict union is exact); unreachable workers are
        skipped — persistence of the authoritative copy lives with the
        registry's exact index, not here."""
        out: dict = {}
        for worker_id, worker in enumerate(self.workers):
            try:
                out.update(worker.snapshot(user))
            except ShardUnavailable:
                self._note_failure(worker_id)
        return out

    def stats(self) -> dict:
        with self._lock:
            health = [h.to_json() for h in self._health]
            dirty = sorted(f"{user}/{kind}" for user, kind in self._dirty)
            counters = {
                "scatterQueries": self.scatter_queries,
                "gatherMerges": self.gather_merges,
                "degradedQueries": self.degraded_queries,
            }
        workers = []
        for worker, info in zip(self.workers, health):
            entry = dict(worker.describe())
            entry.update(info)
            workers.append(entry)
        return {
            "backend": self.name,
            "workers": workers,
            "dirtyShards": dirty,
            **counters,
        }

    def cached_query_vector(
        self, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        return self.query_cache.get_or_compute(key, compute)
