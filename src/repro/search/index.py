"""Incremental vector index for registry search (the hot path of §4.2–4.3).

The brute-force searchers rebuild an ``(N, D)`` similarity matrix from
Python records on *every* query — a Python-level loop over the corpus
followed by a full ``argsort``.  :class:`VectorIndex` removes that cost
from the query path:

* embeddings live in pre-stacked float32 **shards**, one per
  ``(user, kind)`` pair (``desc`` / ``code`` for PEs, ``wf-desc`` for
  workflows), so a query is a single BLAS matrix-vector product (the
  package's embedders emit L2-normalized rows, making that product the
  cosine similarity; vectors are stored verbatim so scores match the
  brute-force scan bit for bit);
* ``add`` / ``remove`` / ``update`` are incremental and keyed by record
  id — insertion and removal shift at most the row tail (appends, the
  common case for the registry's monotonic ids, are O(1) amortized), so
  registry mutations never trigger a full rebuild.  Live rows stay
  *contiguous and in ascending-id order*, which makes the scoring call
  see exactly the matrix the brute-force rebuild would produce from the
  same id-ordered records — scores are bitwise identical, so even
  floating-point near-ties rank the same;
* top-k retrieval uses ``np.argpartition`` (O(N) selection) instead of a
  full O(N log N) sort, while reproducing the brute-force scan's stable
  tie-break (equal scores rank by insertion order) *exactly*;
* multi-query batches score as one ``(Q, D) @ (D, N)`` product;
* a small LRU cache keeps recently embedded query vectors, so repeated
  queries skip the embedder entirely.

All operations are guarded by one reentrant lock per index, making the
structure safe for the threaded HTTP server: a search never observes a
torn shard, and a removed id is never returned once ``remove`` returned.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.errors import ValidationError

#: shard kinds used by the registry wiring
KIND_DESC = "desc"
KIND_CODE = "code"
KIND_WORKFLOW = "wf-desc"

#: initial shard capacity (rows)
_INITIAL_CAPACITY = 8


def _as_vector(vector: np.ndarray) -> np.ndarray:
    """float32 row exactly as given — no renormalization.

    The embedders in this package emit L2-normalized rows, which is what
    makes the dot products cosine similarities; storing vectors verbatim
    keeps index scores bitwise identical to the brute-force scan even
    for caller-supplied non-unit embeddings.
    """
    return np.asarray(vector, dtype=np.float32).reshape(-1)


class EmbeddingLRU:
    """Small thread-safe LRU of query embeddings keyed by (kind, text)."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValidationError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        with self._lock:
            cached = self._data.get(key)
            if cached is not None:
                self._data.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        vector = np.asarray(compute(), dtype=np.float32)
        with self._lock:
            self._data[key] = vector
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
        return vector

    def get(self, key: Hashable) -> np.ndarray | None:
        """Peek without computing (used by the batch embedder to split
        a batch's queries into cache hits and one bulk embed call)."""
        with self._lock:
            cached = self._data.get(key)
            if cached is not None:
                self._data.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            return None

    def put(self, key: Hashable, vector: np.ndarray) -> np.ndarray:
        """Insert one precomputed vector (idempotent)."""
        vec = np.asarray(vector, dtype=np.float32)
        with self._lock:
            self._data[key] = vec
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
        return vec

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class _Shard:
    """One (user, kind) slab: contiguous rows in ascending-id order.

    Rows are kept sorted by record id — for the registry's monotonic
    ids that *is* insertion order, and it stays correct even when a
    dedup ownership grant adds an older record to a user's shard after
    newer ones.  Insertion/removal shift the tail one row.  Keeping
    live rows contiguous and id-ordered is what makes the scoring call
    *bitwise identical* to the brute-force matrix rebuild over the same
    (id-ordered) records — BLAS rounding is position-dependent, so any
    other layout (e.g. tombstoned rows) would let floating-point
    near-ties rank differently than the reference scan.
    """

    __slots__ = (
        "matrix",
        "ids",
        "size",
        "row_of",
        "dim",
        "version",
        "last_nonappend_version",
    )

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.matrix = np.zeros((_INITIAL_CAPACITY, dim), dtype=np.float32)
        self.ids = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.size = 0
        self.row_of: dict[int, int] = {}
        #: bumped on every row mutation; approximate backends key their
        #: derived structures (e.g. IVF lists) off (shard, version)
        self.version = 0
        #: version of the most recent mutation that was *not* a pure
        #: tail append (in-place update, mid-insert, remove).  A derived
        #: structure built at version V can be extended incrementally
        #: iff ``last_nonappend_version <= V`` — every row it indexed
        #: still sits at the same position with the same bytes.
        self.last_nonappend_version = 0

    # -- mutation ---------------------------------------------------------
    def _grow(self) -> None:
        capacity = max(_INITIAL_CAPACITY, self.matrix.shape[0] * 2)
        matrix = np.zeros((capacity, self.dim), dtype=np.float32)
        matrix[: self.size] = self.matrix[: self.size]
        ids = np.zeros(capacity, dtype=np.int64)
        ids[: self.size] = self.ids[: self.size]
        self.matrix, self.ids = matrix, ids

    def add(self, rid: int, vector: np.ndarray) -> None:
        self.version += 1
        row = self.row_of.get(rid)
        if row is not None:  # update in place, keeping the row position
            self.last_nonappend_version = self.version
            self.matrix[row] = vector
            return
        if self.size == self.matrix.shape[0]:
            self._grow()
        pos = int(np.searchsorted(self.ids[: self.size], rid))
        if pos < self.size:  # mid-insert: shift the tail up one row
            self.last_nonappend_version = self.version
            self.matrix[pos + 1 : self.size + 1] = self.matrix[
                pos : self.size
            ].copy()
            self.ids[pos + 1 : self.size + 1] = self.ids[pos : self.size].copy()
            for shifted in range(pos + 1, self.size + 1):
                self.row_of[int(self.ids[shifted])] = shifted
        self.matrix[pos] = vector
        self.ids[pos] = rid
        self.row_of[rid] = pos
        self.size += 1

    def remove(self, rid: int) -> bool:
        row = self.row_of.pop(rid, None)
        if row is None:
            return False
        self.version += 1
        self.last_nonappend_version = self.version
        last = self.size - 1
        if row != last:
            self.matrix[row:last] = self.matrix[row + 1 : self.size]
            self.ids[row:last] = self.ids[row + 1 : self.size]
            for shifted in range(row, last):
                self.row_of[int(self.ids[shifted])] = shifted
        self.size = last
        return True

    # -- query ------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return self.size

    def live_ids(self) -> list[int]:
        return [int(self.ids[r]) for r in range(self.size)]

    def scores(self, queries: np.ndarray) -> np.ndarray:
        """(nq, d) @ slab -> (nq, size)."""
        return queries @ self.matrix[: self.size].T

    def topk_rows(self, sims: np.ndarray, k: int | None) -> np.ndarray:
        """Row indices of the top-k scores, brute-force-identical order.

        Equal scores rank by ascending record id (row order), matching
        ``np.argsort(-sims, kind="stable")`` over id-ordered records —
        but the truncated path only sorts the O(k) winners after an O(N)
        ``argpartition`` selection.
        """
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        if k is None or k >= self.size:
            return np.argsort(-sims, kind="stable")
        part = np.argpartition(-sims, k - 1)[:k]
        threshold = sims[part].min()
        # pull in *every* row tied with the k-th score so the stable
        # tie-break picks the same winners as the full sort would
        candidates = np.flatnonzero(sims >= threshold)
        candidates = candidates[np.argsort(-sims[candidates], kind="stable")]
        return candidates[:k]


class VectorIndex:
    """Sharded, incrementally maintained cosine-similarity index.

    Shards are keyed by ``(user, kind)``; record ids are unique within a
    shard.  Vectors are stored as float32 exactly as supplied (the
    embedders in this package emit L2-normalized rows, making the dot
    product a cosine similarity), so scoring one query is exactly one
    matrix-vector product.  Shard membership is owned by the registry
    service — searchers only read, via :meth:`search_among`, which
    verifies the candidate set and searches under a single lock hold.
    """

    #: backend-registry name: this is the exact reference backend every
    #: approximate engine is measured against (see repro.search.backend)
    name = "exact"

    #: truncated top-k is a *prefix* of the full ranking (stable
    #: descending order, ascending-id tie-break) — pagination may cap k
    #: at the page boundary without changing which hits appear
    prefix_stable_topk = True

    def __init__(self, query_cache_size: int = 256) -> None:
        self._lock = threading.RLock()
        self._shards: dict[tuple[Hashable, str], _Shard] = {}
        self.query_cache = EmbeddingLRU(query_cache_size)
        #: shard keys mutated since the last :meth:`consume_dirty` —
        #: the persistence layer flushes exactly these, never O(corpus)
        self._dirty: set[tuple[Hashable, str]] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(
        self, user: Hashable, kind: str, rid: int, vector: np.ndarray
    ) -> None:
        """Insert or update (idempotent by ``rid``) one vector."""
        vec = _as_vector(vector)
        with self._lock:
            shard = self._shards.get((user, kind))
            if shard is None:
                shard = _Shard(vec.shape[0])
                self._shards[(user, kind)] = shard
            elif shard.dim != vec.shape[0]:
                raise ValidationError(
                    f"dimension mismatch for shard ({user!r}, {kind!r}): "
                    f"index d={shard.dim} vs vector d={vec.shape[0]}"
                )
            shard.add(int(rid), vec)
            self._dirty.add((user, kind))

    update = add

    def add_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        vectors: np.ndarray | Sequence[np.ndarray],
    ) -> None:
        """Bulk insert one shard's rows in a single vectorized pass.

        The attach-time fast path: when the shard does not exist yet and
        ``rids`` arrive in strictly ascending order (the DAO's natural
        id order), the whole slab is stacked at once — no per-row
        ``searchsorted``, shifting or geometric regrowth.  Any other
        case falls back to per-row :meth:`add`, which preserves the
        id-ordered layout invariant.

        ``rids`` may be an int64 ndarray (the DAO hands slabs back that
        way) — it is consumed vectorized, with no per-id Python
        conversion loop on the fast path.
        """
        ids = np.asarray(rids, dtype=np.int64).reshape(-1)
        matrix = np.asarray(vectors, dtype=np.float32)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[0] != ids.shape[0]:
            raise ValidationError(
                f"got {ids.shape[0]} ids for {matrix.shape[0]} vectors"
            )
        count = int(ids.shape[0])
        if count == 0:
            return
        with self._lock:
            shard = self._shards.get((user, kind))
            ascending = bool(np.all(ids[:-1] < ids[1:]))
            if shard is None and ascending:
                shard = _Shard(int(matrix.shape[1]))
                capacity = max(_INITIAL_CAPACITY, 1 << (count - 1).bit_length())
                shard.matrix = np.zeros((capacity, shard.dim), dtype=np.float32)
                shard.matrix[:count] = matrix
                shard.ids = np.zeros(capacity, dtype=np.int64)
                shard.ids[:count] = ids
                shard.size = count
                shard.row_of = {int(rid): row for row, rid in enumerate(ids)}
                self._shards[(user, kind)] = shard
                self._dirty.add((user, kind))
                return
            for rid, vector in zip(ids.tolist(), matrix):
                self.add(user, kind, rid, vector)

    def remove(self, user: Hashable, kind: str, rid: int) -> bool:
        """Drop one record from a shard; returns whether it was present."""
        with self._lock:
            shard = self._shards.get((user, kind))
            if shard is None:
                return False
            removed = shard.remove(int(rid))
            if removed:
                self._dirty.add((user, kind))
            return removed

    def remove_everywhere(self, user: Hashable, rid: int) -> None:
        """Drop a record id from every shard of one user."""
        with self._lock:
            for (shard_user, kind), shard in self._shards.items():
                if shard_user == user and shard.remove(int(rid)):
                    self._dirty.add((shard_user, kind))

    def clear(self, user: Hashable | None = None) -> None:
        with self._lock:
            if user is None:
                self._dirty.update(self._shards)
                self._shards.clear()
            else:
                for key in [k for k in self._shards if k[0] == user]:
                    del self._shards[key]
                    self._dirty.add(key)
        self.query_cache.clear()

    # ------------------------------------------------------------------
    # Dirty tracking (the persistence layer's O(delta) contract)
    # ------------------------------------------------------------------
    def dirty_keys(self) -> set[tuple[Hashable, str]]:
        """Shard keys mutated since the last :meth:`consume_dirty`."""
        with self._lock:
            return set(self._dirty)

    def consume_dirty(self) -> set[tuple[Hashable, str]]:
        """Return and clear the dirty shard-key set.

        The caller owns flushing exactly these keys; a key whose shard
        no longer exists (or is empty) means the persisted slab should
        be dropped, not rewritten.
        """
        with self._lock:
            dirty = self._dirty
            self._dirty = set()
            return dirty

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, user: Hashable, kind: str, rid: int) -> bool:
        with self._lock:
            shard = self._shards.get((user, kind))
            return shard is not None and int(rid) in shard.row_of

    def missing_ids(
        self, user: Hashable, kind: str, rids: Sequence[int]
    ) -> set[int]:
        """The subset of ``rids`` without a live row, in one lock hold."""
        with self._lock:
            shard = self._shards.get((user, kind))
            if shard is None:
                return {int(rid) for rid in rids}
            return {int(rid) for rid in rids if int(rid) not in shard.row_of}

    def size(self, user: Hashable, kind: str) -> int:
        with self._lock:
            shard = self._shards.get((user, kind))
            return 0 if shard is None else shard.live_count

    def ids(self, user: Hashable, kind: str) -> list[int]:
        """Live record ids in ascending order (the ranking tie-break)."""
        with self._lock:
            shard = self._shards.get((user, kind))
            return [] if shard is None else shard.live_ids()

    def export_shards(
        self,
        user: Hashable | None = None,
        keys: set[tuple[Hashable, str]] | None = None,
    ) -> dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]]:
        """Snapshot live slabs as ``{(user, kind): (ids, matrix)}``.

        ``ids`` is the ascending int64 id vector and ``matrix`` the
        matching float32 rows — exactly the layout :meth:`add_many`
        bulk-stacks on import, so a persisted slab round-trips into an
        identical shard (bitwise: vectors are copied verbatim).  Empty
        shards are omitted.  Copies are taken under the lock, so the
        snapshot is never torn by concurrent mutation.  ``keys``
        restricts the export to specific shard keys (the dirty-set
        flush path), ``user`` to one tenant.
        """
        with self._lock:
            return {
                key: (
                    shard.ids[: shard.size].copy(),
                    shard.matrix[: shard.size].copy(),
                )
                for key, shard in self._shards.items()
                if shard.size > 0
                and (user is None or key[0] == user)
                and (keys is None or key in keys)
            }

    def snapshot(
        self,
        user: Hashable | None = None,
        keys: set[tuple[Hashable, str]] | None = None,
    ) -> dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]]:
        """Protocol name for :meth:`export_shards` (see
        :class:`repro.search.backend.IndexBackend`)."""
        return self.export_shards(user, keys)

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                f"{user}/{kind}": {
                    "live": shard.live_count,
                    "capacity": shard.matrix.shape[0],
                    "dim": shard.dim,
                }
                for (user, kind), shard in self._shards.items()
            }

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def search(
        self,
        user: Hashable,
        kind: str,
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray]:
        """Top-k ``(ids, scores)`` for one query vector.

        Results are ordered by descending similarity with stable
        ascending-id tie-breaking — identical ids *and* scores to a
        linear scan over the same vectors in id order.
        """
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        qvec = _as_vector(query)
        with self._lock:
            shard = self._shards.get((user, kind))
            if shard is None or shard.live_count == 0:
                return [], np.empty(0, dtype=np.float32)
            return self._shard_topk(shard, qvec, k)

    @staticmethod
    def _shard_topk(
        shard: _Shard, qvec: np.ndarray, k: int | None
    ) -> tuple[list[int], np.ndarray]:
        sims = shard.scores(qvec[np.newaxis, :])[0]
        rows = shard.topk_rows(sims, k)
        return [int(i) for i in shard.ids[rows]], sims[rows].astype(
            np.float32, copy=False
        )

    def _verified_shard(
        self, user: Hashable, kind: str, rids: Sequence[int]
    ) -> _Shard | None:
        """The shard for ``(user, kind)`` iff it holds *exactly* ``rids``.

        Must be called (and the returned shard used) under ``self._lock``
        — this is the membership verification every ``search_among*``
        variant (exact or approximate) performs before ranking.
        """
        shard = self._shards.get((user, kind))
        if shard is None or shard.size != len(rids):
            return None
        row_of = shard.row_of
        for rid in rids:
            if int(rid) not in row_of:
                return None
        return shard

    def search_among(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray] | None:
        """Atomic membership-checked search for the searcher fast path.

        Returns top-k ``(ids, scores)`` only if the shard holds *exactly*
        the records in ``rids`` — verified and searched under one lock
        hold, so a concurrent add/remove can never make the result
        under-filled or include a stale id.  Returns ``None`` when the
        shard and candidate set disagree (caller passed a subset, some
        records were never indexed, or the registry mutated since the
        caller snapshotted it); the caller then serves the query brute
        force, which is always exact.
        """
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        qvec = _as_vector(query)
        with self._lock:
            shard = self._verified_shard(user, kind, rids)
            if shard is None:
                return None
            if shard.size == 0:
                return [], np.empty(0, dtype=np.float32)
            return self._shard_topk(shard, qvec, k)

    def search_among_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        queries: Sequence[np.ndarray],
        ks: Sequence[int | None],
    ) -> list[tuple[list[int], np.ndarray]] | None:
        """Membership-checked search for a whole micro-batch of queries.

        The batched counterpart of :meth:`search_among`: one candidate
        set (all queries come from the same (user, kind) serving key),
        verified *once*, with every query scored under the same lock
        hold.  Each query is scored as its own ``(1, D)`` product — the
        identical computation :meth:`search_among` performs — so the
        per-query results are bitwise identical to the single-shot path
        (a joint ``(Q, D)`` product would not be: BLAS accumulation
        order differs between matrix-vector and matrix-matrix kernels,
        which lets floating-point near-ties rank differently).  The
        amortization is everything *around* the product: one lock
        acquisition, one membership verification and one shard lookup
        for the whole batch.

        Returns ``None`` when the shard and candidate set disagree; the
        caller then serves every query brute force, which is exact.
        """
        for k in ks:
            if k is not None and k <= 0:
                raise ValidationError(f"k must be positive, got {k}")
        if len(queries) != len(ks):
            raise ValidationError(
                f"got {len(queries)} queries for {len(ks)} k values"
            )
        qvecs = [_as_vector(query) for query in queries]
        with self._lock:
            shard = self._verified_shard(user, kind, rids)
            if shard is None:
                return None
            if shard.size == 0:
                empty = ([], np.empty(0, dtype=np.float32))
                return [empty for _ in qvecs]
            # identical queries (trending searches landing in one batch)
            # are scored once — the same bytes produce the same product,
            # so sharing the result stays bitwise exact; distinct (k,
            # vector) pairs still select their own top-k
            cache: dict[tuple[bytes, int | None], tuple] = {}
            results = []
            for qvec, k in zip(qvecs, ks):
                key = (qvec.tobytes(), k)
                hit = cache.get(key)
                if hit is None:
                    hit = self._shard_topk(shard, qvec, k)
                    cache[key] = hit
                results.append(hit)
            return results

    def search_batch(
        self,
        user: Hashable,
        kind: str,
        queries: np.ndarray | Sequence[np.ndarray],
        k: int | None = None,
    ) -> list[tuple[list[int], np.ndarray]]:
        """Top-k per query for a whole batch, scored as one matrix product."""
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        with self._lock:
            shard = self._shards.get((user, kind))
            if shard is None or shard.live_count == 0:
                empty = (list(), np.empty(0, dtype=np.float32))
                return [empty for _ in range(matrix.shape[0])]
            sims = shard.scores(matrix)
            out = []
            for row_sims in sims:
                rows = shard.topk_rows(row_sims, k)
                out.append(
                    (
                        [int(i) for i in shard.ids[rows]],
                        row_sims[rows].astype(np.float32, copy=False),
                    )
                )
            return out

    def cached_query_vector(
        self, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Embed-once helper: LRU-cached query vector for ``key``."""
        return self.query_cache.get_or_compute(key, compute)
