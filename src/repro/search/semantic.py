"""Semantic code search over PE descriptions (paper §4.2, Figure 7).

The query is embedded with the fine-tuned code-search model and compared
(cosine) against all stored ``descEmbedding`` vectors — embeddings that
were computed once at registration (§3.1.1), never re-computed at query
time.  Results are the ranked PEs with their similarity scores, exactly
the Figure 7 table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.embedding import EmbeddingModel
from repro.ml.models import UnixCoderCodeSearch
from repro.ml.similarity import cosine_similarity_matrix
from repro.registry.entities import PERecord, WorkflowRecord


@dataclass
class SemanticHit:
    """One semantic-search result row (Figure 7)."""

    pe_id: int
    pe_name: str
    description: str
    description_origin: str
    score: float

    def to_json(self) -> dict:
        return {
            "peId": self.pe_id,
            "peName": self.pe_name,
            "description": self.description,
            "descriptionOrigin": self.description_origin,
            "score": round(float(self.score), 4),
        }


class SemanticSearcher:
    """Bi-encoder semantic search against stored description embeddings."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or UnixCoderCodeSearch()

    def embed_query(self, query: str) -> np.ndarray:
        return self.model.embed_one(query, kind="text")

    def embed_description(self, description: str) -> np.ndarray:
        """The embedding computed at registration time (§3.1.1)."""
        return self.model.embed_one(description, kind="text")

    def search(
        self,
        query: str,
        pes: Sequence[PERecord],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
    ) -> list[SemanticHit]:
        """Rank ``pes`` by description similarity to ``query``.

        ``query_embedding`` may be supplied by the caller (the Client
        computes it in the paper's architecture); PEs lacking a stored
        embedding are embedded on the fly as a fallback.
        """
        if not pes:
            return []
        qvec = (
            np.asarray(query_embedding, dtype=np.float32)
            if query_embedding is not None
            else self.embed_query(query)
        )
        matrix = np.zeros((len(pes), qvec.shape[0]), dtype=np.float32)
        for i, record in enumerate(pes):
            vec = record.desc_embedding
            if vec is None:
                vec = self.embed_description(record.description or record.pe_name)
            matrix[i] = vec
        sims = cosine_similarity_matrix(qvec, matrix)[0]
        order = np.argsort(-sims)
        if k is not None:
            order = order[:k]
        return [
            SemanticHit(
                pe_id=pes[i].pe_id,
                pe_name=pes[i].pe_name,
                description=pes[i].description,
                description_origin=pes[i].description_origin,
                score=float(sims[i]),
            )
            for i in order
        ]

    def search_workflows(
        self,
        query: str,
        workflows: Sequence[WorkflowRecord],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
    ) -> list["WorkflowSemanticHit"]:
        """Semantic search over *workflow* descriptions.

        Implements the paper's §8 future-work item ("enhance deep
        learning search for workflows") with the identical bi-encoder
        machinery: workflow descriptions are embedded at registration
        and ranked by cosine similarity at query time.
        """
        if not workflows:
            return []
        qvec = (
            np.asarray(query_embedding, dtype=np.float32)
            if query_embedding is not None
            else self.embed_query(query)
        )
        matrix = np.zeros((len(workflows), qvec.shape[0]), dtype=np.float32)
        for i, record in enumerate(workflows):
            vec = record.desc_embedding
            if vec is None:
                vec = self.embed_description(
                    record.description or record.entry_point
                )
            matrix[i] = vec
        sims = cosine_similarity_matrix(qvec, matrix)[0]
        order = np.argsort(-sims)
        if k is not None:
            order = order[:k]
        return [
            WorkflowSemanticHit(
                workflow_id=workflows[i].workflow_id,
                entry_point=workflows[i].entry_point,
                description=workflows[i].description,
                score=float(sims[i]),
            )
            for i in order
        ]


@dataclass
class WorkflowSemanticHit:
    """One workflow-level semantic search result (the §8 extension)."""

    workflow_id: int
    entry_point: str
    description: str
    score: float

    def to_json(self) -> dict:
        return {
            "workflowId": self.workflow_id,
            "entryPoint": self.entry_point,
            "description": self.description,
            "score": round(float(self.score), 4),
        }
