"""Semantic code search over PE descriptions (paper §4.2, Figure 7).

The query is embedded with the fine-tuned code-search model and compared
(cosine) against all stored ``descEmbedding`` vectors — embeddings that
were computed once at registration (§3.1.1), never re-computed at query
time.  Results are the ranked PEs with their similarity scores, exactly
the Figure 7 table.

Two execution paths serve every search:

* **indexed** — when a :class:`~repro.search.index.VectorIndex` (and the
  shard owner) is supplied, scoring runs against the pre-stacked shard
  with ``argpartition`` top-k selection and an LRU-cached query vector;
* **brute force** — without an index the corpus matrix is rebuilt from
  the records, the historical behaviour kept as reference and fallback.

Both paths rank ties by insertion order (stable sort) and return
identical ids and scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.ml.embedding import EmbeddingModel
from repro.ml.models import UnixCoderCodeSearch
from repro.ml.similarity import cosine_similarity_matrix
from repro.registry.entities import PERecord, WorkflowRecord
from repro.search.backend import IndexBackend
from repro.search.index import KIND_DESC, KIND_WORKFLOW
from repro.search.serving import OwnedIds, SearchBatcher, serve_topk


@dataclass
class SemanticHit:
    """One semantic-search result row (Figure 7)."""

    pe_id: int
    pe_name: str
    description: str
    description_origin: str
    score: float

    def to_json(self) -> dict:
        return {
            "peId": self.pe_id,
            "peName": self.pe_name,
            "description": self.description,
            "descriptionOrigin": self.description_origin,
            "score": round(float(self.score), 4),
        }


class SemanticSearcher:
    """Bi-encoder semantic search against stored description embeddings."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or UnixCoderCodeSearch()

    def embed_query(self, query: str) -> np.ndarray:
        return self.model.embed_one(query, kind="text")

    def embed_description(self, description: str) -> np.ndarray:
        """The embedding computed at registration time (§3.1.1)."""
        return self.model.embed_one(description, kind="text")

    def embed_queries(self, queries: list[str]) -> np.ndarray:
        """Batch-embed query texts in one model call (row-independent,
        bitwise identical to per-query :meth:`embed_query`)."""
        return self.model.embed_many(queries, kind="text")

    def _query_vector(
        self,
        query: str,
        query_embedding: np.ndarray | None,
        index: IndexBackend | None,
    ) -> np.ndarray:
        if query_embedding is not None:
            return np.asarray(query_embedding, dtype=np.float32)
        if index is not None:
            return index.cached_query_vector(
                (KIND_DESC, self.model.name, query),
                lambda: self.embed_query(query),
            )
        return self.embed_query(query)

    def search(
        self,
        query: str,
        pes: Sequence[PERecord],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
        *,
        index: IndexBackend | None = None,
        user: Hashable | None = None,
    ) -> list[SemanticHit]:
        """Rank ``pes`` by description similarity to ``query``.

        ``query_embedding`` may be supplied by the caller (the Client
        computes it in the paper's architecture); PEs lacking a stored
        embedding are embedded once as a fallback and the vector is
        cached back onto the record.  With ``index``/``user`` the scoring
        runs against the pre-stacked shard instead of rebuilding the
        corpus matrix.
        """
        if not pes:
            return []
        qvec = self._query_vector(query, query_embedding, index)
        if index is not None and user is not None:
            # read-only fast path: membership is owned by the registry
            # service; a mismatched shard (subset query, unindexed
            # records, concurrent mutation) returns None and the query
            # serves brute force, which is always exact
            result = index.search_among(
                user, KIND_DESC, [record.pe_id for record in pes], qvec, k
            )
            if result is not None:
                by_id = {record.pe_id: record for record in pes}
                return [
                    SemanticHit(
                        pe_id=rid,
                        pe_name=by_id[rid].pe_name,
                        description=by_id[rid].description,
                        description_origin=by_id[rid].description_origin,
                        score=float(score),
                    )
                    for rid, score in zip(*result)
                ]
        matrix = np.zeros((len(pes), qvec.shape[0]), dtype=np.float32)
        for i, record in enumerate(pes):
            vec = record.desc_embedding
            if vec is None:
                vec = self.embed_description(record.description or record.pe_name)
                record.desc_embedding = vec
            matrix[i] = vec
        sims = cosine_similarity_matrix(qvec, matrix)[0]
        order = np.argsort(-sims, kind="stable")
        if k is not None:
            order = order[:k]
        return [
            SemanticHit(
                pe_id=pes[i].pe_id,
                pe_name=pes[i].pe_name,
                description=pes[i].description,
                description_origin=pes[i].description_origin,
                score=float(sims[i]),
            )
            for i in order
        ]

    def search_topk(
        self,
        query: str,
        *,
        index: IndexBackend,
        user: Hashable,
        owned_ids: OwnedIds,
        resolve: Callable[[list[int]], Sequence[PERecord]],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
        batcher: SearchBatcher | None = None,
    ) -> list[SemanticHit]:
        """Index-first serving path: materialize only the top-k records.

        The shared :func:`~repro.search.serving.serve_topk` protocol
        over the description shard — per-request DAO work is O(k), not
        O(corpus), with the exact brute-force scan as fallback.  With a
        ``batcher`` the request routes through the micro-batching
        dispatcher instead, which coalesces concurrent same-shard
        searches into one index pass (bitwise-identical results) and
        embeds each batch's distinct queries in one model call.
        """
        dispatch = batcher.submit if batcher is not None else serve_topk
        needs_embed = query_embedding is None
        return dispatch(
            index=index,
            user=user,
            kind=KIND_DESC,
            owned_ids=owned_ids,
            k=k,
            query_vector=lambda: self._query_vector(
                query, query_embedding, index
            ),
            resolve=resolve,
            rid_of=lambda record: record.pe_id,
            build_hit=lambda record, score: SemanticHit(
                pe_id=record.pe_id,
                pe_name=record.pe_name,
                description=record.description,
                description_origin=record.description_origin,
                score=score,
            ),
            fallback=lambda records, qvec: self.search(
                query, records, k=k, query_embedding=qvec
            ),
            # same LRU key _query_vector uses, so batch-embedded vectors
            # serve later single-shot repeats of the same query
            embed_key=(
                (KIND_DESC, self.model.name, query) if needs_embed else None
            ),
            embed_text=query if needs_embed else None,
            embed_many=self.embed_queries if needs_embed else None,
        )

    def search_workflows_topk(
        self,
        query: str,
        *,
        index: IndexBackend,
        user: Hashable,
        owned_ids: OwnedIds,
        resolve: Callable[[list[int]], Sequence[WorkflowRecord]],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
        batcher: SearchBatcher | None = None,
    ) -> list["WorkflowSemanticHit"]:
        """O(k)-materialization serving path for workflow search."""
        dispatch = batcher.submit if batcher is not None else serve_topk
        needs_embed = query_embedding is None
        return dispatch(
            index=index,
            user=user,
            kind=KIND_WORKFLOW,
            owned_ids=owned_ids,
            k=k,
            query_vector=lambda: self._query_vector(
                query, query_embedding, index
            ),
            resolve=resolve,
            rid_of=lambda record: record.workflow_id,
            build_hit=lambda record, score: WorkflowSemanticHit(
                workflow_id=record.workflow_id,
                entry_point=record.entry_point,
                description=record.description,
                score=score,
            ),
            fallback=lambda records, qvec: self.search_workflows(
                query, records, k=k, query_embedding=qvec
            ),
            embed_key=(
                (KIND_DESC, self.model.name, query) if needs_embed else None
            ),
            embed_text=query if needs_embed else None,
            embed_many=self.embed_queries if needs_embed else None,
        )

    def search_workflows(
        self,
        query: str,
        workflows: Sequence[WorkflowRecord],
        k: int | None = None,
        query_embedding: np.ndarray | None = None,
        *,
        index: IndexBackend | None = None,
        user: Hashable | None = None,
    ) -> list["WorkflowSemanticHit"]:
        """Semantic search over *workflow* descriptions.

        Implements the paper's §8 future-work item ("enhance deep
        learning search for workflows") with the identical bi-encoder
        machinery: workflow descriptions are embedded at registration
        and ranked by cosine similarity at query time.
        """
        if not workflows:
            return []
        qvec = self._query_vector(query, query_embedding, index)
        if index is not None and user is not None:
            result = index.search_among(
                user,
                KIND_WORKFLOW,
                [record.workflow_id for record in workflows],
                qvec,
                k,
            )
            if result is not None:
                by_id = {record.workflow_id: record for record in workflows}
                return [
                    WorkflowSemanticHit(
                        workflow_id=rid,
                        entry_point=by_id[rid].entry_point,
                        description=by_id[rid].description,
                        score=float(score),
                    )
                    for rid, score in zip(*result)
                ]
        matrix = np.zeros((len(workflows), qvec.shape[0]), dtype=np.float32)
        for i, record in enumerate(workflows):
            vec = record.desc_embedding
            if vec is None:
                vec = self.embed_description(
                    record.description or record.entry_point
                )
                record.desc_embedding = vec
            matrix[i] = vec
        sims = cosine_similarity_matrix(qvec, matrix)[0]
        order = np.argsort(-sims, kind="stable")
        if k is not None:
            order = order[:k]
        return [
            WorkflowSemanticHit(
                workflow_id=workflows[i].workflow_id,
                entry_point=workflows[i].entry_point,
                description=workflows[i].description,
                score=float(sims[i]),
            )
            for i in order
        ]


@dataclass
class WorkflowSemanticHit:
    """One workflow-level semantic search result (the §8 extension)."""

    workflow_id: int
    entry_point: str
    description: str
    score: float

    def to_json(self) -> dict:
        return {
            "workflowId": self.workflow_id,
            "entryPoint": self.entry_point,
            "description": self.description,
            "score": round(float(self.score), 4),
        }
