"""Pluggable index backends behind one retrieval protocol.

The serving layer (``serve_topk``, :class:`~repro.search.serving.SearchBatcher`,
the controllers and the ``repro search`` CLI) used to construct
:class:`~repro.search.index.VectorIndex` directly, hard-wiring the exact
BLAS scan as the only ranking engine.  This module separates the *query
API* from the *index implementation* behind it:

* :class:`IndexBackend` — the structural protocol every ranking engine
  implements: incremental mutation (``add``/``add_many``/``remove``),
  membership-checked retrieval (``search_among``/``search_among_many``)
  and slab export (``snapshot``).  :class:`VectorIndex` satisfies it as
  the **exact reference** implementation.
* :class:`IVFFlatBackend` — the first approximate backend: IVF-flat
  (inverted-file with exact re-ranking).  Each shard is clustered into
  ``nlist`` lists by deterministic spherical k-means; a query probes the
  ``nprobe`` nearest lists and re-ranks their members with the same
  full-precision dot product the exact scan uses.  It *wraps* the exact
  index — sharing its slabs, lock and LRU — so the registry service
  maintains one copy of the vectors and both backends serve from it.
* :class:`HNSWBackend` — a graph-navigation backend over the same
  shards: each shard lazily builds a deterministic two-layer small-world
  graph (hash-assigned entry levels, exact ``m0``-NN base adjacency),
  queries beam-search it from the entry layer and exactly re-rank every
  visited row.  A second QPS point for corpora where IVF's cluster
  assumption is weak.
* a **backend registry** — backends are selected by name (``"exact"``,
  ``"ivf"``, ``"hnsw"``); :func:`create_backend` / :func:`build_backends`
  construct them, and new engines plug in via :func:`register_backend`
  without touching the serving layer.  The scatter/gather engine
  (:mod:`repro.search.scatter`) implements this same protocol but is
  wired *per server* (``LaminarServer(scatter_shards=N)`` mirrors it
  from that server's registry service) rather than through the global
  registry — a shard fleet only makes sense bound to the registry whose
  mutations it mirrors.

Safety properties shared by every backend:

* membership is verified against the caller's owned-id projection under
  one lock hold (the registry owns shard membership; backends only
  read), and any mismatch returns ``None`` so the caller falls back to
  the exact brute-force scan;
* ``nprobe >= nlist`` (or a shard too small to train) degenerates to the
  exact scan, so IVF at full probe width is *bitwise identical* to the
  exact backend;
* candidate re-ranking keeps the exact path's stable ascending-id
  tie-break, so approximate results are always a subset of the exact
  ranking in the exact order.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Hashable,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from repro.errors import ValidationError
from repro.search.index import VectorIndex, _as_vector, _Shard

#: shards smaller than this are served exactly — training IVF lists on a
#: handful of rows costs more than the scan it would save
_MIN_TRAIN_ROWS = 64

#: Lloyd iterations for the deterministic spherical k-means
_KMEANS_ITERS = 8


@runtime_checkable
class IndexBackend(Protocol):
    """Structural contract between the serving layer and a ranking engine.

    ``VectorIndex`` is the exact reference implementation; approximate
    engines must return ids in descending-similarity order with the same
    stable ascending-id tie-break, and must return ``None`` from the
    ``search_among*`` methods whenever the shard does not hold exactly
    the caller's candidate ids (the caller then serves brute force).
    """

    # -- mutation -------------------------------------------------------
    def add(
        self, user: Hashable, kind: str, rid: int, vector: np.ndarray
    ) -> None: ...

    def add_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        vectors: np.ndarray | Sequence[np.ndarray],
    ) -> None: ...

    def remove(self, user: Hashable, kind: str, rid: int) -> bool: ...

    def remove_everywhere(self, user: Hashable, rid: int) -> None: ...

    def clear(self, user: Hashable | None = None) -> None: ...

    # -- retrieval ------------------------------------------------------
    def search_among(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray] | None: ...

    def search_among_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        queries: Sequence[np.ndarray],
        ks: Sequence[int | None],
    ) -> list[tuple[list[int], np.ndarray]] | None: ...

    # -- persistence / introspection ------------------------------------
    # ``keys`` restricts the export to specific shard keys — the
    # persistence layer pairs it with ``consume_dirty()`` (an optional
    # capability; backends wrapping a ``VectorIndex`` delegate both) to
    # flush only the shards a write actually touched.
    def snapshot(
        self,
        user: Hashable | None = None,
        keys: set[tuple[Hashable, str]] | None = None,
    ) -> dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]]: ...

    def stats(self) -> dict: ...

    def cached_query_vector(
        self, key: Hashable, compute: Callable[[], np.ndarray]
    ) -> np.ndarray: ...


class _IVFState:
    """Trained clustering for one shard at one version.

    Validity is ``state.shard is shard and state.version == shard.version``
    — object identity guards against a shard being dropped and rebuilt
    (fresh shards restart their version counter), the version against
    in-place mutation.  ``stale_serves`` counts queries served exactly
    while the state was stale (see ``IVFFlatBackend._state_for``).
    """

    __slots__ = ("shard", "version", "centroids", "lists", "stale_serves")

    def __init__(
        self,
        shard: _Shard,
        version: int,
        centroids: np.ndarray,
        lists: list[np.ndarray],
    ) -> None:
        self.shard = shard
        self.version = version
        self.centroids = centroids
        self.lists = lists
        self.stale_serves = 0


def _train_ivf(shard: _Shard, nlist: int) -> _IVFState:
    """Deterministic spherical k-means over the live slab.

    No RNG: centroids initialize from evenly spaced rows of the
    id-ordered slab, then a fixed number of Lloyd iterations assign rows
    to their max-dot centroid and re-normalize the means (the rows are
    L2-normalized, so max-dot is nearest-cosine).  Empty clusters keep
    their previous centroid.  Deterministic training means two processes
    over the same registry build identical lists — recall numbers are
    reproducible.
    """
    matrix = shard.matrix[: shard.size]
    nlist = max(1, min(int(nlist), shard.size))
    seeds = np.unique(
        np.linspace(0, shard.size - 1, nlist).astype(np.int64)
    )
    centroids = matrix[seeds].copy()
    assign = np.empty(shard.size, dtype=np.int64)
    for _ in range(_KMEANS_ITERS):
        assign = np.argmax(matrix @ centroids.T, axis=1)
        for c in range(centroids.shape[0]):
            members = np.flatnonzero(assign == c)
            if members.size == 0:
                continue  # empty cluster: keep the previous centroid
            mean = matrix[members].mean(axis=0)
            norm = float(np.linalg.norm(mean))
            centroids[c] = mean / norm if norm > 0 else mean
    assign = np.argmax(matrix @ centroids.T, axis=1)
    lists = [
        np.flatnonzero(assign == c).astype(np.int64)
        for c in range(centroids.shape[0])
    ]
    return _IVFState(shard, shard.version, centroids, lists)


class IVFFlatBackend:
    """IVF-flat approximate retrieval over the exact index's shards.

    A *view* over a base :class:`VectorIndex`: mutation, persistence and
    the query-embedding LRU delegate to the base (one copy of every
    vector in the process), while retrieval probes the ``nprobe``
    nearest of ``nlist`` inverted lists and re-ranks only their members
    with the exact full-precision dot product.

    Guarantees:

    * **membership mismatch** returns ``None`` exactly like the exact
      backend — the caller's brute-force fallback stays the safety net;
    * **small or over-probed shards** (``size < min_train_rows`` or
      ``nprobe >= nlist``, including ``k=None`` full-listing queries)
      serve through the exact scan, bitwise identical to the reference;
    * **stale lists never serve**: the clustering is keyed to the shard
      object *and* its mutation version, so any add/remove triggers a
      lazy retrain on the next query.
    """

    name = "ivf"

    #: the probed candidate set depends on k (degenerate paths widen to
    #: the exact scan), so a truncated ranking is NOT a prefix of the
    #: k=None ranking — paginating callers must not cap k per page
    prefix_stable_topk = False

    def __init__(
        self,
        base: VectorIndex | None = None,
        *,
        nlist: int | None = None,
        nprobe: int | None = None,
        min_train_rows: int = _MIN_TRAIN_ROWS,
        retrain_fraction: float = 0.02,
    ) -> None:
        self.base = base if base is not None else VectorIndex()
        #: None -> sqrt(N) lists, the standard IVF sizing
        self.nlist = nlist
        #: None -> ceil(nlist / 8), a ~12% probe fraction
        self.nprobe = nprobe
        self.min_train_rows = max(2, int(min_train_rows))
        #: retraining is amortized: once trained, a shard must accrue
        #: ``max(1, retrain_fraction * size)`` mutations before the
        #: lists are rebuilt — queries in between serve the exact scan
        #: (always correct), so a write-heavy interleave never pays the
        #: O(N * nlist * D) k-means on every request.  0 retrains
        #: eagerly on any mutation.
        self.retrain_fraction = max(0.0, float(retrain_fraction))
        self._states: dict[tuple[Hashable, str], _IVFState] = {}
        self._states_lock = threading.Lock()
        # counters for benchmarks and `repro stats`
        self.trainings = 0
        self.approx_queries = 0
        self.exact_queries = 0

    # ------------------------------------------------------------------
    # Mutation / persistence / introspection: delegate to the base index
    # ------------------------------------------------------------------
    def add(self, user, kind, rid, vector) -> None:
        self.base.add(user, kind, rid, vector)

    def add_many(self, user, kind, rids, vectors) -> None:
        self.base.add_many(user, kind, rids, vectors)

    def remove(self, user, kind, rid) -> bool:
        return self.base.remove(user, kind, rid)

    def remove_everywhere(self, user, rid) -> None:
        self.base.remove_everywhere(user, rid)

    def clear(self, user=None) -> None:
        self.base.clear(user)
        with self._states_lock:
            if user is None:
                self._states.clear()
            else:
                for key in [k for k in self._states if k[0] == user]:
                    del self._states[key]

    def snapshot(self, user=None, keys=None):
        return self.base.snapshot(user, keys)

    def export_shards(self, user=None, keys=None):
        return self.base.export_shards(user, keys)

    def dirty_keys(self):
        return self.base.dirty_keys()

    def consume_dirty(self):
        return self.base.consume_dirty()

    def contains(self, user, kind, rid) -> bool:
        return self.base.contains(user, kind, rid)

    def missing_ids(self, user, kind, rids):
        return self.base.missing_ids(user, kind, rids)

    def size(self, user, kind) -> int:
        return self.base.size(user, kind)

    def ids(self, user, kind):
        return self.base.ids(user, kind)

    @property
    def query_cache(self):
        return self.base.query_cache

    def cached_query_vector(self, key, compute):
        return self.base.cached_query_vector(key, compute)

    def stats(self) -> dict:
        out = self.base.stats()
        with self._states_lock:
            trained = {
                f"{user}/{kind}": state.centroids.shape[0]
                for (user, kind), state in self._states.items()
            }
        for name, info in out.items():
            info["ivfLists"] = trained.get(name, 0)
        return out

    # ------------------------------------------------------------------
    # Training-state persistence (cold starts skip the lazy k-means)
    # ------------------------------------------------------------------
    def export_states(
        self,
    ) -> dict[tuple[Hashable, str], tuple[np.ndarray, list[np.ndarray]]]:
        """Snapshot ``{(user, kind): (centroids, lists)}`` for every
        trained clustering still valid against its live shard.

        Stale states (any mutation since training) are excluded — the
        member row indices would reference shifted slab positions.
        Taken under the base index lock so the validity check and the
        copy see one consistent shard.
        """
        out: dict[tuple[Hashable, str], tuple[np.ndarray, list[np.ndarray]]] = {}
        base = self.base
        with base._lock:
            with self._states_lock:
                items = list(self._states.items())
            for key, state in items:
                shard = base._shards.get(key)
                if (
                    shard is None
                    or state.shard is not shard
                    or state.version != shard.version
                ):
                    continue
                out[key] = (
                    state.centroids.copy(),
                    [members.copy() for members in state.lists],
                )
        return out

    def adopt_states(
        self,
        states: dict[tuple[Hashable, str], tuple[np.ndarray, list[np.ndarray]]],
    ) -> int:
        """Install pre-trained clusterings for the *current* shards.

        The caller (``RegistryService.attach_approx_backend``) vouches
        that the states were trained on exactly the slab contents now
        in the shards (same mutation counter as the loaded snapshot);
        this method still sanity-checks shape — member rows must cover
        the live slab exactly and centroid width must match — and skips
        anything inconsistent (the shard then retrains lazily, which is
        always correct).  Returns the number of shards adopted.
        """
        adopted = 0
        base = self.base
        with base._lock:
            for key, (centroids, lists) in states.items():
                shard = base._shards.get(key)
                if shard is None:
                    continue
                centroids = np.asarray(centroids, dtype=np.float32)
                lists = [np.asarray(members, dtype=np.int64) for members in lists]
                total = sum(int(members.shape[0]) for members in lists)
                if (
                    centroids.ndim != 2
                    or centroids.shape[1] != shard.dim
                    or total != shard.size
                    or any(
                        members.size > 0
                        and (members.min() < 0 or members.max() >= shard.size)
                        for members in lists
                    )
                ):
                    continue
                state = _IVFState(shard, shard.version, centroids, lists)
                with self._states_lock:
                    self._states[key] = state
                adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def _effective_nlist(self, size: int) -> int:
        if self.nlist is not None:
            return max(1, min(int(self.nlist), size))
        return max(1, min(int(round(float(size) ** 0.5)), size))

    def _effective_nprobe(self, nlist: int) -> int:
        if self.nprobe is not None:
            return max(1, int(self.nprobe))
        return max(1, -(-nlist // 8))  # ceil(nlist / 8)

    def _state_for(
        self, key: tuple[Hashable, str], shard: _Shard
    ) -> _IVFState | None:
        """Trained lists for ``shard``; retrains lazily when stale.

        Returns ``None`` while a previously trained shard is *recently*
        mutated — the stale lists reference shifted row positions and
        must not serve, but retraining on every write would cost more
        than the exact scan it replaces, so the caller serves exactly
        until a rebuild amortizes.  Two triggers end the deferral,
        whichever fires first:

        * **write count** — ``retrain_fraction * size`` mutations have
          accrued since training (write-heavy interleave pays at most
          one k-means per that many writes);
        * **stale-query count** — ``len(lists)`` queries were served
          exactly since staleness began.  Training runs a fixed number
          of Lloyd passes (each ~``nlist`` times one exact scan), so
          one retrain per ~``nlist`` stale queries keeps the amortized
          training overhead within a constant factor of the scans
          already paid — and a mutate-once-then-read-heavy shard
          recovers its approximate speed instead of scanning forever.

        Caller holds the base index lock, so the shard cannot mutate
        underneath the (version-stamped) training pass.
        """
        with self._states_lock:
            state = self._states.get(key)
        if state is not None and state.shard is shard:
            if state.version == shard.version:
                return state
            write_threshold = max(1, int(self.retrain_fraction * shard.size))
            state.stale_serves += 1
            if (
                shard.version - state.version < write_threshold
                and state.stale_serves <= len(state.lists)
            ):
                return None  # amortize: serve exact, retrain later
        state = _train_ivf(shard, self._effective_nlist(shard.size))
        with self._states_lock:
            self._states[key] = state
            self.trainings += 1
        return state

    def _ivf_topk(
        self,
        key: tuple[Hashable, str],
        shard: _Shard,
        qvec: np.ndarray,
        k: int | None,
    ) -> tuple[list[int], np.ndarray]:
        """Probe-and-rerank top-k; exact scan when probing cannot help.

        The exact degenerations (tiny shard, ``k=None`` full listing,
        ``nprobe >= nlist``, a recently mutated shard awaiting retrain,
        fewer candidates than ``k``) call the same ``_shard_topk`` the
        exact backend uses — bitwise identical.
        """
        if k is None or shard.size < self.min_train_rows or k >= shard.size:
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        # degenerate probe width: all lists would be scanned anyway, so
        # never pay the k-means (checked against the *configured* list
        # count; training can only shrink it via seed dedup)
        if self._effective_nprobe(
            self._effective_nlist(shard.size)
        ) >= self._effective_nlist(shard.size):
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        state = self._state_for(key, shard)
        if state is None:  # recently mutated: exact until retrain amortizes
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        nlist = len(state.lists)
        nprobe = self._effective_nprobe(nlist)
        if nprobe >= nlist:
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        centroid_sims = state.centroids @ qvec
        probe = np.argpartition(-centroid_sims, nprobe - 1)[:nprobe]
        member_lists = [state.lists[int(c)] for c in probe]
        rows = (
            np.concatenate(member_lists)
            if member_lists
            else np.empty(0, dtype=np.int64)
        )
        if rows.size < k:
            # the probed lists cannot fill k — widen to the exact scan
            # rather than return an under-filled page
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        self.approx_queries += 1
        # ascending row order == ascending id order: the stable argsort
        # below then reproduces the exact path's tie-break among the
        # candidates it sees
        rows.sort()
        sims = shard.matrix[rows] @ qvec
        order = np.argsort(-sims, kind="stable")[:k]
        winners = rows[order]
        return (
            [int(i) for i in shard.ids[winners]],
            sims[order].astype(np.float32, copy=False),
        )

    def search(
        self,
        user: Hashable,
        kind: str,
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray]:
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        qvec = _as_vector(query)
        base = self.base
        with base._lock:
            shard = base._shards.get((user, kind))
            if shard is None or shard.size == 0:
                return [], np.empty(0, dtype=np.float32)
            return self._ivf_topk((user, kind), shard, qvec, k)

    def search_among(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray] | None:
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        qvec = _as_vector(query)
        base = self.base
        with base._lock:
            shard = base._verified_shard(user, kind, rids)
            if shard is None:
                return None
            if shard.size == 0:
                return [], np.empty(0, dtype=np.float32)
            return self._ivf_topk((user, kind), shard, qvec, k)

    def search_among_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        queries: Sequence[np.ndarray],
        ks: Sequence[int | None],
    ) -> list[tuple[list[int], np.ndarray]] | None:
        for k in ks:
            if k is not None and k <= 0:
                raise ValidationError(f"k must be positive, got {k}")
        if len(queries) != len(ks):
            raise ValidationError(
                f"got {len(queries)} queries for {len(ks)} k values"
            )
        qvecs = [_as_vector(query) for query in queries]
        base = self.base
        with base._lock:
            shard = base._verified_shard(user, kind, rids)
            if shard is None:
                return None
            if shard.size == 0:
                empty = ([], np.empty(0, dtype=np.float32))
                return [empty for _ in qvecs]
            # same duplicate-query coalescing as the exact batch path
            cache: dict[tuple[bytes, int | None], tuple] = {}
            results = []
            for qvec, k in zip(qvecs, ks):
                key = (qvec.tobytes(), k)
                hit = cache.get(key)
                if hit is None:
                    hit = self._ivf_topk((user, kind), shard, qvec, k)
                    cache[key] = hit
                results.append(hit)
            return results


class _HNSWState:
    """Built navigation graph for one shard at one version.

    Same validity contract as :class:`_IVFState`: object identity plus
    the shard's mutation version.  ``levels`` assigns each slab row its
    entry layer (rows with ``level >= 1`` form the global entry set);
    ``neighbors`` is the base-layer adjacency — each row's exact
    ``m0``-nearest slab rows, ``-1``-padded.  Only those two arrays are
    persisted; the rest are query-time accelerators derived on
    construction:

    * ``entries`` / ``entry_matrix`` — the entry rows and a contiguous
      copy of their vectors, so the routing scan is one dense product
      instead of a strided gather per query;
    * ``entry_mask`` — membership mask used to drop entry rows from the
      gathered neighbor candidates (they are already scored);
    * ``neigh32`` — ``int32`` adjacency copy (half the gather traffic);
    * ``has_pad`` — whether any ``-1`` padding exists, so full shards
      skip the validity filter entirely.
    """

    __slots__ = (
        "shard",
        "version",
        "levels",
        "neighbors",
        "stale_serves",
        "entries",
        "entry_matrix",
        "entry_mask",
        "neigh32",
        "has_pad",
    )

    def __init__(
        self,
        shard: _Shard,
        version: int,
        levels: np.ndarray,
        neighbors: np.ndarray,
    ) -> None:
        self.shard = shard
        self.version = version
        self.levels = levels
        self.neighbors = neighbors
        self.stale_serves = 0
        size = shard.size
        self.entries = np.flatnonzero(levels >= 1)
        self.entry_matrix = np.ascontiguousarray(
            shard.matrix[self.entries]
        )
        self.entry_mask = np.zeros(size, dtype=bool)
        self.entry_mask[self.entries] = True
        self.neigh32 = np.ascontiguousarray(neighbors.astype(np.int32))
        self.has_pad = bool(neighbors.size > 0 and neighbors.min() < 0)


def _build_hnsw(shard: _Shard, m: int, m0: int) -> _HNSWState:
    """Deterministic graph build over the live slab.

    No RNG: each row's level comes from a Knuth multiplicative hash of
    its slab position mapped through the standard HNSW exponential
    (``floor(-ln(u) / ln(m))``), so two processes over the same registry
    build identical graphs.  The base layer is the *exact* ``m0``-NN
    adjacency, computed as blocked BLAS products — an O(N²) build paid
    once per (amortized) rebuild, the price of beam searches that then
    touch only a candidate neighborhood.
    """
    size = shard.size
    matrix = shard.matrix[:size]
    rows = np.arange(size, dtype=np.uint64)
    hashed = (rows * np.uint64(2654435761)) % np.uint64(2**32)
    uniform = (hashed.astype(np.float64) + 1.0) / float(2**32)
    levels = np.floor(-np.log(uniform) / np.log(float(m))).astype(np.int64)
    k_neigh = min(m0, size - 1)
    neighbors = np.full((size, m0), -1, dtype=np.int64)
    if k_neigh > 0:
        block = 512
        for start in range(0, size, block):
            stop = min(size, start + block)
            sims = matrix[start:stop] @ matrix.T
            sims[np.arange(stop - start), np.arange(start, stop)] = -np.inf
            part = np.argpartition(-sims, k_neigh - 1, axis=1)[:, :k_neigh]
            row_idx = np.arange(stop - start)[:, None]
            order = np.argsort(-sims[row_idx, part], kind="stable", axis=1)
            neighbors[start:stop, :k_neigh] = part[row_idx, order]
    return _HNSWState(shard, shard.version, levels, neighbors)


def _extend_hnsw(
    state: _HNSWState, shard: _Shard, m: int, m0: int
) -> _HNSWState:
    """Insert-time incremental build: extend an existing graph with the
    rows appended since it was built, instead of rebuilding whole-graph.

    Valid only when every mutation since ``state.version`` was a pure
    tail append (``shard.last_nonappend_version <= state.version``) —
    then every row the old graph indexed still sits at the same slab
    position with the same bytes, so:

    * **levels** — hashed from the slab *position*, so existing rows
      keep theirs verbatim and only the new positions are hashed;
    * **new rows' adjacency** — their exact ``m0``-NN over the whole
      slab, one ``(n_new, N)`` GEMM instead of the rebuild's O(N²);
    * **existing rows' adjacency** — unchanged unless some new row
      scores above the row's current worst neighbor (the old list is
      the exact top-k of the old rows, so only such rows can change);
      the affected rows — and every row whose list was shorter than the
      new ``k_neigh`` — are recomputed with the rebuild's own blocked
      kernel, which keeps their ordering semantics identical.

    The result matches :func:`_build_hnsw` over the grown slab (for
    untied similarities — real-valued embeddings), so incremental and
    rebuilt graphs serve the same candidates and, because every
    candidate is exactly re-scored at query time, identical results.
    """
    size = shard.size
    matrix = shard.matrix[:size]
    old_size = int(state.levels.shape[0])
    n_new = size - old_size
    rows = np.arange(old_size, size, dtype=np.uint64)
    hashed = (rows * np.uint64(2654435761)) % np.uint64(2**32)
    uniform = (hashed.astype(np.float64) + 1.0) / float(2**32)
    new_levels = np.floor(-np.log(uniform) / np.log(float(m))).astype(np.int64)
    levels = np.concatenate((state.levels, new_levels))
    k_neigh = min(m0, size - 1)
    old_k = min(m0, old_size - 1)
    neighbors = np.full((size, m0), -1, dtype=np.int64)
    # new rows: exact m0-NN against the whole slab in one product
    sims_new = matrix[old_size:size] @ matrix.T
    sims_new[np.arange(n_new), np.arange(old_size, size)] = -np.inf
    row_idx = np.arange(n_new)[:, None]
    part = np.argpartition(-sims_new, k_neigh - 1, axis=1)[:, :k_neigh]
    order = np.argsort(-sims_new[row_idx, part], kind="stable", axis=1)
    neighbors[old_size:size, :k_neigh] = part[row_idx, order]
    # existing rows: a new row enters a list only by beating its worst
    # current neighbor; short lists (old shard smaller than m0+1) grow
    # unconditionally
    if old_k < k_neigh:
        stale = np.arange(old_size, dtype=np.int64)
    else:
        worst_rows = state.neighbors[:, old_k - 1]
        worst = np.einsum(
            "ij,ij->i", matrix[:old_size], matrix[worst_rows]
        )
        best_new = sims_new[:, :old_size].max(axis=0)
        stale = np.flatnonzero(best_new > worst)
        fresh = np.ones(old_size, dtype=bool)
        fresh[stale] = False
        neighbors[:old_size][fresh] = state.neighbors[fresh]
    if stale.size > 0:
        block = 512
        for start in range(0, stale.size, block):
            rows_blk = stale[start : start + block]
            sims = matrix[rows_blk] @ matrix.T
            sims[np.arange(rows_blk.size), rows_blk] = -np.inf
            part = np.argpartition(-sims, k_neigh - 1, axis=1)[:, :k_neigh]
            blk_idx = np.arange(rows_blk.size)[:, None]
            order = np.argsort(-sims[blk_idx, part], kind="stable", axis=1)
            neighbors[rows_blk, :k_neigh] = part[blk_idx, order]
    return _HNSWState(shard, shard.version, levels, neighbors)


class HNSWBackend:
    """Graph-navigation approximate retrieval over the exact index's shards.

    Like :class:`IVFFlatBackend`, a *view* over the base
    :class:`VectorIndex` — mutation, persistence and the query LRU
    delegate to it.  Retrieval navigates a lazily built small-world
    graph, flattened into the two dense steps that vectorize well:

    1. **route** — score the entry layer (rows hashed to
       ``level >= 1``, an ~1/m sample of the shard) and keep the ``ef``
       best entries;
    2. **expand** — gather those entries' exact ``m0``-nearest
       neighbors from the precomputed base-layer adjacency and score
       them; the candidate set is the entry layer plus that expansion,
       every member scored with a true dot product, ranked with the
       same descending-score / ascending-id order the exact scan uses.

    The same safety net as IVF: membership mismatch returns ``None``,
    ``k=None`` / tiny shards / a graph awaiting its amortized rebuild
    serve through the exact scan, and exact scoring keeps approximate
    results a subset of the exact ranking in the exact order.
    """

    name = "hnsw"

    #: the beam's candidate set depends on k (via the default ef), so a
    #: truncated ranking is NOT a prefix of the k=None ranking
    prefix_stable_topk = False

    #: persisted graph state lives in the DAO's HNSW store, not the IVF
    #: one (see RegistryService.persist_approx_states)
    state_store = "hnsw"

    def __init__(
        self,
        base: VectorIndex | None = None,
        *,
        m: int = 16,
        m0: int | None = None,
        ef_search: int | None = None,
        min_build_rows: int = _MIN_TRAIN_ROWS,
        rebuild_fraction: float = 0.02,
    ) -> None:
        self.base = base if base is not None else VectorIndex()
        if m < 2:
            raise ValidationError(f"m must be at least 2, got {m}")
        self.m = int(m)
        #: base-layer degree; None -> 2m (the classic HNSW M0=2M choice)
        self.m0 = int(m0) if m0 is not None else 2 * int(m)
        #: routed entries to expand; None -> max(8, k) per query
        self.ef_search = ef_search
        self.min_build_rows = max(2, int(min_build_rows))
        #: graph rebuilds amortize exactly like IVF retraining — but a
        #: build is O(N) exact scans, so the stale-query deferral window
        #: scales with the shard size rather than the list count
        self.rebuild_fraction = max(0.0, float(rebuild_fraction))
        self._states: dict[tuple[Hashable, str], _HNSWState] = {}
        self._states_lock = threading.Lock()
        self.builds = 0
        #: insert-time incremental graph extensions (appends routed and
        #: linked into the existing graph instead of a whole-graph build)
        self.extends = 0
        self.approx_queries = 0
        self.exact_queries = 0

    # ------------------------------------------------------------------
    # Mutation / persistence / introspection: delegate to the base index
    # ------------------------------------------------------------------
    def add(self, user, kind, rid, vector) -> None:
        self.base.add(user, kind, rid, vector)

    def add_many(self, user, kind, rids, vectors) -> None:
        self.base.add_many(user, kind, rids, vectors)

    def remove(self, user, kind, rid) -> bool:
        return self.base.remove(user, kind, rid)

    def remove_everywhere(self, user, rid) -> None:
        self.base.remove_everywhere(user, rid)

    def clear(self, user=None) -> None:
        self.base.clear(user)
        with self._states_lock:
            if user is None:
                self._states.clear()
            else:
                for key in [k for k in self._states if k[0] == user]:
                    del self._states[key]

    def snapshot(self, user=None, keys=None):
        return self.base.snapshot(user, keys)

    def export_shards(self, user=None, keys=None):
        return self.base.export_shards(user, keys)

    def dirty_keys(self):
        return self.base.dirty_keys()

    def consume_dirty(self):
        return self.base.consume_dirty()

    def contains(self, user, kind, rid) -> bool:
        return self.base.contains(user, kind, rid)

    def missing_ids(self, user, kind, rids):
        return self.base.missing_ids(user, kind, rids)

    def size(self, user, kind) -> int:
        return self.base.size(user, kind)

    def ids(self, user, kind):
        return self.base.ids(user, kind)

    @property
    def query_cache(self):
        return self.base.query_cache

    def cached_query_vector(self, key, compute):
        return self.base.cached_query_vector(key, compute)

    def stats(self) -> dict:
        out = self.base.stats()
        with self._states_lock:
            built = {
                f"{user}/{kind}": int(state.entries.size)
                for (user, kind), state in self._states.items()
            }
        for name, info in out.items():
            info["hnswEntries"] = built.get(name, 0)
        return out

    # ------------------------------------------------------------------
    # Graph-state persistence (cold starts skip the O(N²) build)
    # ------------------------------------------------------------------
    def export_states(
        self,
    ) -> dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]]:
        """Snapshot ``{(user, kind): (levels, neighbors)}`` for every
        graph still valid against its live shard (see
        :meth:`IVFFlatBackend.export_states` for the protocol)."""
        out: dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]] = {}
        base = self.base
        with base._lock:
            with self._states_lock:
                items = list(self._states.items())
            for key, state in items:
                shard = base._shards.get(key)
                if (
                    shard is None
                    or state.shard is not shard
                    or state.version != shard.version
                ):
                    continue
                out[key] = (state.levels.copy(), state.neighbors.copy())
        return out

    def adopt_states(
        self,
        states: dict[tuple[Hashable, str], tuple[np.ndarray, np.ndarray]],
    ) -> int:
        """Install pre-built graphs for the *current* shards.

        Freshness is vouched by the caller (same protocol as IVF); shape
        is still sanity-checked — levels must cover the slab exactly and
        neighbor rows must reference live slab positions — and anything
        inconsistent is skipped (that shard rebuilds lazily).  Returns
        the number of shards adopted.
        """
        adopted = 0
        base = self.base
        with base._lock:
            for key, (levels, neighbors) in states.items():
                shard = base._shards.get(key)
                if shard is None:
                    continue
                levels = np.asarray(levels, dtype=np.int64).reshape(-1)
                neighbors = np.asarray(neighbors, dtype=np.int64)
                if (
                    levels.shape[0] != shard.size
                    or neighbors.ndim != 2
                    or neighbors.shape[0] != shard.size
                    or (
                        neighbors.size > 0
                        and (
                            neighbors.min() < -1
                            or neighbors.max() >= shard.size
                        )
                    )
                ):
                    continue
                state = _HNSWState(shard, shard.version, levels, neighbors)
                with self._states_lock:
                    self._states[key] = state
                adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def _state_for(
        self, key: tuple[Hashable, str], shard: _Shard
    ) -> _HNSWState | None:
        """Built graph for ``shard``; rebuilds lazily when stale.

        The same amortization contract as ``IVFFlatBackend._state_for``,
        with the stale-query deferral window sized to the build cost: a
        graph build is ~``size`` exact scans' worth of BLAS, so one
        rebuild per ``size`` stale-served queries bounds the amortized
        overhead at a constant factor.  Caller holds the base lock.

        When every mutation since the build was a pure tail append
        (the registry's monotonic-id common case), the graph is instead
        **extended in place** (:func:`_extend_hnsw`) — an O(delta · N)
        insert-time build, cheap enough to run eagerly on the first
        query after the appends rather than deferring behind the
        amortization window.
        """
        with self._states_lock:
            state = self._states.get(key)
        if state is not None and state.shard is shard:
            if state.version == shard.version:
                return state
            old_size = int(state.levels.shape[0])
            if (
                shard.last_nonappend_version <= state.version
                and 2 <= old_size < shard.size
            ):
                state = _extend_hnsw(state, shard, self.m, self.m0)
                with self._states_lock:
                    self._states[key] = state
                    self.extends += 1
                return state
            write_threshold = max(
                1, int(self.rebuild_fraction * shard.size)
            )
            state.stale_serves += 1
            if (
                shard.version - state.version < write_threshold
                and state.stale_serves <= shard.size
            ):
                return None  # amortize: serve exact, rebuild later
        state = _build_hnsw(shard, self.m, self.m0)
        with self._states_lock:
            self._states[key] = state
            self.builds += 1
        return state

    def _effective_ef(self, k: int) -> int:
        if self.ef_search is not None:
            return max(1, int(self.ef_search))
        return max(8, k)

    def _hnsw_topk(
        self,
        key: tuple[Hashable, str],
        shard: _Shard,
        qvec: np.ndarray,
        k: int | None,
        state: _HNSWState | None = None,
        entry_sims: np.ndarray | None = None,
        frontier: np.ndarray | None = None,
    ) -> tuple[list[int], np.ndarray]:
        """Route-expand-rank top-k; exact scan when the graph cannot help.

        Exact degenerations (tiny shard, ``k=None`` full listing, a
        mutated shard awaiting rebuild, an under-filled candidate set)
        call the same ``_shard_topk`` the exact backend uses.

        ``entry_sims`` lets the batched path score the entry layer for
        many queries in one GEMM; matrix-matrix accumulation can round
        differently than the per-query product, so batched scores for
        *entry-layer* hits may differ from the single-query path in the
        last ulp (candidate sets and, away from exact score ties, the
        ranking are unaffected).
        """
        if k is None or shard.size < self.min_build_rows or k >= shard.size:
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        if state is None:
            state = self._state_for(key, shard)
        if state is None:  # recently mutated: exact until rebuild amortizes
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        entries = state.entries
        if entries.size == 0:
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        if entry_sims is None:
            entry_sims = state.entry_matrix @ qvec
        if frontier is None:
            ef = self._effective_ef(k)
            if ef < entries.size:
                frontier = entries[
                    np.argpartition(-entry_sims, ef - 1)[:ef]
                ]
            else:
                frontier = entries
        neigh = state.neigh32[frontier].ravel()
        if state.has_pad:
            neigh = neigh[neigh >= 0]
        cand = np.unique(neigh)
        cand = cand[~state.entry_mask[cand]]
        rows = np.concatenate((entries, cand))
        if rows.size < k:
            # the expansion cannot fill k — widen to the exact scan
            # rather than return an under-filled page
            self.exact_queries += 1
            return VectorIndex._shard_topk(shard, qvec, k)
        self.approx_queries += 1
        sims = np.concatenate((entry_sims, shard.matrix[cand] @ qvec))
        # rows is NOT ascending (entries precede their expansion), so the
        # exact tie-break — equal scores rank by ascending row == id —
        # needs the explicit two-key sort; the argpartition prefilter
        # keeps it O(candidates) + O(k log k) like _Shard.topk_rows
        part = np.argpartition(-sims, k - 1)[:k]
        threshold = sims[part].min()
        take = np.flatnonzero(sims >= threshold)
        order = take[np.lexsort((rows[take], -sims[take]))[:k]]
        winners = rows[order]
        return (
            [int(i) for i in shard.ids[winners]],
            sims[order].astype(np.float32, copy=False),
        )

    def search(
        self,
        user: Hashable,
        kind: str,
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray]:
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        qvec = _as_vector(query)
        base = self.base
        with base._lock:
            shard = base._shards.get((user, kind))
            if shard is None or shard.size == 0:
                return [], np.empty(0, dtype=np.float32)
            return self._hnsw_topk((user, kind), shard, qvec, k)

    def search_among(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        query: np.ndarray,
        k: int | None = None,
    ) -> tuple[list[int], np.ndarray] | None:
        if k is not None and k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        qvec = _as_vector(query)
        base = self.base
        with base._lock:
            shard = base._verified_shard(user, kind, rids)
            if shard is None:
                return None
            if shard.size == 0:
                return [], np.empty(0, dtype=np.float32)
            return self._hnsw_topk((user, kind), shard, qvec, k)

    def search_among_many(
        self,
        user: Hashable,
        kind: str,
        rids: Sequence[int],
        queries: Sequence[np.ndarray],
        ks: Sequence[int | None],
    ) -> list[tuple[list[int], np.ndarray]] | None:
        for k in ks:
            if k is not None and k <= 0:
                raise ValidationError(f"k must be positive, got {k}")
        if len(queries) != len(ks):
            raise ValidationError(
                f"got {len(queries)} queries for {len(ks)} k values"
            )
        qvecs = [_as_vector(query) for query in queries]
        base = self.base
        with base._lock:
            shard = base._verified_shard(user, kind, rids)
            if shard is None:
                return None
            if shard.size == 0:
                empty = ([], np.empty(0, dtype=np.float32))
                return [empty for _ in qvecs]
            # batched routing scan: the dominant per-query cost is
            # scoring the entry layer, so score it for all of the
            # batch's distinct graph-eligible queries in one GEMM
            state: _HNSWState | None = None
            entry_sims_by_query: dict[bytes, np.ndarray] = {}
            eligible = [
                (qvec, k)
                for qvec, k in zip(qvecs, ks)
                if k is not None
                and shard.size >= self.min_build_rows
                and k < shard.size
            ]
            frontier_by_query: dict[tuple[bytes, int], np.ndarray] = {}
            if eligible:
                state = self._state_for((user, kind), shard)
                if state is not None and state.entries.size > 0:
                    distinct: dict[bytes, np.ndarray] = {}
                    for qvec, k in eligible:
                        distinct.setdefault(qvec.tobytes(), qvec)
                    qmat = np.stack(list(distinct.values()))
                    # row-major result: each query's entry sims land
                    # contiguous for the routing partition below
                    sims = qmat @ state.entry_matrix.T
                    for row, key_bytes in enumerate(distinct):
                        entry_sims_by_query[key_bytes] = sims[row]
                    # batched routing: one axis-wise partition per
                    # distinct ef instead of one call per query
                    n_entries = state.entries.size
                    for ef in {self._effective_ef(k) for _, k in eligible}:
                        if ef < n_entries:
                            part = np.argpartition(
                                -sims, ef - 1, axis=1
                            )[:, :ef]
                            picked = state.entries[part]
                        else:
                            picked = None
                        for row, key_bytes in enumerate(distinct):
                            frontier_by_query[(key_bytes, ef)] = (
                                state.entries
                                if picked is None
                                else picked[row]
                            )
            # same duplicate-query coalescing as the exact batch path
            cache: dict[tuple[bytes, int | None], tuple] = {}
            results = []
            for qvec, k in zip(qvecs, ks):
                cache_key = (qvec.tobytes(), k)
                hit = cache.get(cache_key)
                if hit is None:
                    hit = self._hnsw_topk(
                        (user, kind),
                        shard,
                        qvec,
                        k,
                        state=state,
                        entry_sims=entry_sims_by_query.get(qvec.tobytes()),
                        frontier=(
                            None
                            if k is None
                            else frontier_by_query.get(
                                (qvec.tobytes(), self._effective_ef(k))
                            )
                        ),
                    )
                    cache[cache_key] = hit
                results.append(hit)
            return results


# ---------------------------------------------------------------------------
# Backend registry: engines are selected by name, never constructed
# directly by the serving layer
# ---------------------------------------------------------------------------

#: name -> factory(base: VectorIndex | None, **options) -> IndexBackend.
#: The ``base`` argument is the process's exact index; wrapping backends
#: share its slabs, standalone backends may ignore it.
_BACKENDS: dict[str, Callable[..., IndexBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., IndexBackend]
) -> None:
    """Register a ranking engine under ``name`` (overwrites)."""
    _BACKENDS[str(name)] = factory


def backend_names() -> list[str]:
    """Registered backend names, ``"exact"`` first (the reference)."""
    names = sorted(_BACKENDS)
    if "exact" in names:
        names.remove("exact")
        names.insert(0, "exact")
    return names


def create_backend(
    name: str, base: VectorIndex | None = None, **options
) -> IndexBackend:
    """Construct one backend by name.

    ``base`` is the exact index a wrapping (approximate) backend should
    serve from; omitted, the backend owns a fresh index.
    """
    factory = _BACKENDS.get(str(name))
    if factory is None:
        raise ValidationError(
            f"unknown index backend {name!r}",
            params={"backend": name},
            details=f"registered backends: {', '.join(backend_names())}",
        )
    return factory(base, **options)


def build_backends(
    base: VectorIndex | None = None,
    options: dict[str, dict] | None = None,
) -> dict[str, IndexBackend]:
    """One instance of every registered backend over a shared exact index.

    The ``"exact"`` entry *is* the base index (so registry-service
    mutations through it are visible to every wrapping backend);
    ``options`` maps backend name to factory kwargs (e.g.
    ``{"ivf": {"nprobe": 16}, "exact": {"query_cache_size": 1024}}``).
    ``options["exact"]`` configures the shared base itself — unless a
    pre-built ``base`` was passed, which cannot be re-configured.
    """
    opts = options or {}
    if base is not None:
        if opts.get("exact"):
            raise ValidationError(
                "cannot apply 'exact' backend options to a pre-built base "
                "index",
                params={"options": sorted(opts["exact"])},
            )
        exact = base
    else:
        exact = create_backend("exact", None, **dict(opts.get("exact", {})))
    backends: dict[str, IndexBackend] = {}
    for name in backend_names():
        kwargs = dict(opts.get(name, {}))
        backends[name] = (
            exact if name == "exact" else create_backend(name, exact, **kwargs)
        )
    return backends


def _exact_factory(
    base: VectorIndex | None = None, **options
) -> VectorIndex:
    return base if base is not None else VectorIndex(**options)


register_backend("exact", _exact_factory)
register_backend(
    "ivf", lambda base=None, **options: IVFFlatBackend(base, **options)
)
register_backend(
    "hnsw", lambda base=None, **options: HNSWBackend(base, **options)
)
