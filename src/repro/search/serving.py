"""The shared O(k) serving protocol behind every ``search_topk``.

One implementation of the index-first request path used by the PE,
workflow and code searchers: rank on the pre-stacked shard, check
membership against the caller's cheap owned-id projection
(``search_among`` verifies the shard holds exactly those ids under one
lock hold), and materialize only the returned top-k records through
``resolve``.  Any shard / owned-set mismatch (records without stored
embeddings, concurrent mutation) falls back to the brute-force scan
over the fully materialized corpus, which is always exact and bitwise
identical to the historical behaviour.  Ids that vanish between ranking
and hydration are skipped — the result is then slightly under-filled
rather than wrong.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, TypeVar

import numpy as np

from repro.search.index import VectorIndex

R = TypeVar("R")  # record type
H = TypeVar("H")  # hit type


def serve_topk(
    *,
    index: VectorIndex,
    user: Hashable,
    kind: str,
    owned_ids: Sequence[int],
    k: int | None,
    query_vector: Callable[[], np.ndarray],
    resolve: Callable[[list[int]], Sequence[R]],
    rid_of: Callable[[R], int],
    build_hit: Callable[[R, float], H],
    fallback: Callable[[Sequence[R], np.ndarray], list[H]],
) -> list[H]:
    """Serve one query with O(k) record materialization.

    ``query_vector`` is called lazily (an empty owned set never embeds);
    ``fallback(records, qvec)`` is the searcher's brute-force scan over
    the full corpus, invoked only on a shard mismatch.
    """
    owned = [int(rid) for rid in owned_ids]
    if not owned:
        return []
    qvec = query_vector()
    result = index.search_among(user, kind, owned, qvec, k)
    if result is None:
        return fallback(resolve(owned), qvec)
    ids, scores = result
    by_id = {rid_of(record): record for record in resolve(list(ids))}
    return [
        build_hit(by_id[rid], float(score))
        for rid, score in zip(ids, scores)
        if rid in by_id
    ]
