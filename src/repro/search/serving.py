"""The concurrent O(k) serving layer behind every ``search_topk``.

Two cooperating pieces implement the index-first request path used by
the PE, workflow and code searchers:

* :func:`serve_topk` — the single-shot protocol: rank on the
  pre-stacked shard, check membership against the caller's cheap
  owned-id projection (``search_among`` verifies the shard holds
  exactly those ids under one lock hold), and materialize only the
  returned top-k records through ``resolve``.
* :class:`SearchBatcher` — the micro-batching dispatcher: concurrent
  requests for the same ``(user, kind)`` serving key are collected over
  a short window (or until a size cap) and served as *one* index pass —
  one owned-id projection, one membership verification, one lock hold
  and one batched top-k hydration for the whole batch.  Every query is
  still scored as its own ``(1, D)`` product inside that pass
  (:meth:`~repro.search.index.VectorIndex.search_among_many`), so
  batched results are bitwise identical to single-shot serving.  When a
  request arrives alone, the batcher skips the window entirely and
  degenerates into the single-shot path — sequential workloads pay no
  batching latency.

Any shard / owned-set mismatch (records without stored embeddings,
concurrent mutation) falls back to the brute-force scan over the fully
materialized corpus, which is always exact and bitwise identical to the
historical behaviour.  Ids that vanish between ranking and hydration
are skipped — the result is then slightly under-filled rather than
wrong.

The same ``None`` -> fallback contract is what lets the scatter/gather
backend (:mod:`repro.search.scatter`) degrade gracefully: a query whose
shard worker is unreachable (or whose shard missed a write) reports "no
answer" here and is served by the exact scan — fan-out can cost speed,
never correctness.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Sequence, TypeVar

import numpy as np

from repro.search.backend import IndexBackend

R = TypeVar("R")  # record type
H = TypeVar("H")  # hit type

#: owned ids may be given materialized or as a lazy projection thunk
OwnedIds = Sequence[int] | Callable[[], Sequence[int]]

#: batched query embedder: texts -> (len(texts), D) float32 rows
EmbedMany = Callable[[list[str]], np.ndarray]


def _materialize_owned(owned_ids: OwnedIds) -> list[int]:
    ids = owned_ids() if callable(owned_ids) else owned_ids
    return [int(rid) for rid in ids]


def serve_topk(
    *,
    index: IndexBackend,
    user: Hashable,
    kind: str,
    owned_ids: OwnedIds,
    k: int | None,
    query_vector: Callable[[], np.ndarray],
    resolve: Callable[[list[int]], Sequence[R]],
    rid_of: Callable[[R], int],
    build_hit: Callable[[R, float], H],
    fallback: Callable[[Sequence[R], np.ndarray], list[H]],
    embed_key: Hashable | None = None,
    embed_text: str | None = None,
    embed_many: EmbedMany | None = None,
) -> list[H]:
    """Serve one query with O(k) record materialization.

    ``query_vector`` is called lazily (an empty owned set never embeds);
    ``fallback(records, qvec)`` is the searcher's brute-force scan over
    the full corpus, invoked only on a shard mismatch.  The ``embed_*``
    parameters describe how to embed this query *as part of a batch* —
    single-shot serving has no batch, so they are accepted (the
    dispatch signature is shared with :meth:`SearchBatcher.submit`) but
    unused.
    """
    owned = _materialize_owned(owned_ids)
    if not owned:
        return []
    qvec = query_vector()
    result = index.search_among(user, kind, owned, qvec, k)
    if result is None:
        return fallback(resolve(owned), qvec)
    ids, scores = result
    by_id = {rid_of(record): record for record in resolve(list(ids))}
    return [
        build_hit(by_id[rid], float(score))
        for rid, score in zip(ids, scores)
        if rid in by_id
    ]


class _BatchRequest:
    """One enqueued search awaiting its share of a batch flush."""

    __slots__ = (
        "owned_ids",
        "k",
        "query_vector",
        "resolve",
        "rid_of",
        "build_hit",
        "fallback",
        "embed_key",
        "embed_text",
        "embed_many",
        "qvec",
        "result",
        "error",
    )

    def __init__(
        self,
        owned_ids,
        k,
        query_vector,
        resolve,
        rid_of,
        build_hit,
        fallback,
        embed_key=None,
        embed_text=None,
        embed_many=None,
    ) -> None:
        self.owned_ids = owned_ids
        self.k = k
        self.query_vector = query_vector
        self.resolve = resolve
        self.rid_of = rid_of
        self.build_hit = build_hit
        self.fallback = fallback
        #: LRU key + raw text + batched embedder for leader-side batch
        #: embedding; None means "embed via the query_vector thunk"
        self.embed_key = embed_key
        self.embed_text = embed_text
        self.embed_many = embed_many
        self.qvec = None
        self.result = None
        self.error = None


class _Batch:
    """Requests accumulating for one (user, kind) serving key."""

    __slots__ = ("requests", "closed", "full", "done")

    def __init__(self) -> None:
        self.requests: list[_BatchRequest] = []
        self.closed = False
        #: set by the follower that fills the batch to the size cap,
        #: waking the leader before the window expires
        self.full = threading.Event()
        #: set by the leader once every request's result is populated
        self.done = threading.Event()


class SearchBatcher:
    """Micro-batches concurrent same-``(user, kind)`` search requests.

    The first request for a key becomes the batch *leader*; while other
    searches are in flight it waits up to ``window`` seconds (or until
    ``max_batch`` requests have joined) and then serves the whole batch
    in one index pass.  A request that arrives with no other search in
    flight skips the window — the single-shot passthrough — so the
    batcher never taxes sequential traffic.

    Batched and single-shot serving return bitwise-identical results:
    the flush scores every query with the same ``(1, D)`` product the
    single-shot ``search_among`` uses (see
    :meth:`~repro.search.index.VectorIndex.search_among_many`), and any
    shard mismatch falls back to the exact brute-force scan per query.

    What one flush amortizes across its Q requests:

    * the owned-id projection (one DAO query instead of Q);
    * the shard membership verification and lock acquisition;
    * top-k hydration — the union of all winners is materialized in a
      single batched ``resolve`` call instead of Q round trips.

    The coalescing window **adapts to the observed queue depth**:
    sustained deep flushes (the window keeps filling half the size cap
    or more) double the effective window up to 4x the configured base —
    deeper batches amortize more per pass; a sustained run of
    single-request flushes collapses it to 0 (pure passthrough), and
    the first concurrent arrival after a collapse restores the base
    window.  ``stats()["effectiveWindow"]`` surfaces the current value.
    """

    #: consecutive deep flushes before the window widens
    _DEEP_STREAK = 3
    #: consecutive single-request flushes before it collapses to 0
    _SPARSE_STREAK = 8
    #: widening cap, as a multiple of the configured base window
    _MAX_WIDEN = 4

    def __init__(self, window: float = 0.003, max_batch: int = 16) -> None:
        self.window = float(window)
        self.max_batch = max(1, int(max_batch))
        self._lock = threading.Lock()
        self._pending: dict[tuple[Hashable, str], _Batch] = {}
        self._inflight = 0
        # adaptive-window state (guarded by _lock)
        self._effective_window = self.window
        self._deep_streak = 0
        self._sparse_streak = 0
        # counters for `repro stats` and the benchmarks
        self.requests_total = 0
        self.batches_total = 0
        self.batched_requests = 0
        self.largest_batch = 0
        self.fallbacks = 0
        self.batch_embeds = 0
        self.batch_embedded_queries = 0
        self.window_widenings = 0
        self.window_collapses = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        index: IndexBackend,
        user: Hashable,
        kind: str,
        owned_ids: OwnedIds,
        k: int | None,
        query_vector: Callable[[], np.ndarray],
        resolve: Callable[[list[int]], Sequence[R]],
        rid_of: Callable[[R], int],
        build_hit: Callable[[R, float], H],
        fallback: Callable[[Sequence[R], np.ndarray], list[H]],
        embed_key: Hashable | None = None,
        embed_text: str | None = None,
        embed_many: EmbedMany | None = None,
    ) -> list[H]:
        """Serve one query through the batch dispatcher (blocking).

        Same callback protocol as :func:`serve_topk`; the call returns
        this request's hits once its batch has flushed.  Exceptions
        raised by the callbacks re-raise in the submitting thread.

        When ``embed_key``/``embed_text``/``embed_many`` are supplied,
        the flush embeds the batch's distinct un-cached query texts in
        ONE ``embed_many`` model call (cross-request embedding batching)
        instead of one serial ``query_vector`` call per request; the
        vectors land in the index's query LRU under ``embed_key``, so
        repeats still skip the embedder entirely.
        """
        if k is not None and k <= 0:
            # reject before joining a batch: one request's bad k must
            # never poison the flush its batchmates ride in
            from repro.errors import ValidationError

            raise ValidationError(f"k must be positive, got {k}")
        request = _BatchRequest(
            owned_ids,
            k,
            query_vector,
            resolve,
            rid_of,
            build_hit,
            fallback,
            embed_key,
            embed_text,
            embed_many,
        )
        # different backends over the same shards must never share a
        # flush: the leader's index serves the whole batch
        key = (id(index), user, kind)
        with self._lock:
            self._inflight += 1
            self.requests_total += 1
            batch = self._pending.get(key)
            is_leader = batch is None or batch.closed
            if is_leader:
                batch = _Batch()
                self._pending[key] = batch
            batch.requests.append(request)
            if len(batch.requests) >= self.max_batch:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
                batch.full.set()
            # only worth waiting when another search is in flight; a
            # collapsed (passthrough) window un-collapses on the first
            # concurrent arrival, so a traffic burst after a quiet spell
            # starts coalescing again immediately
            if self._inflight > 1 and self._effective_window == 0.0:
                self._effective_window = self.window
            wait = self._effective_window if self._inflight > 1 else 0.0
        try:
            if not is_leader:
                batch.done.wait()
            else:
                if wait > 0.0 and not batch.full.is_set():
                    batch.full.wait(wait)
                with self._lock:
                    batch.closed = True
                    if self._pending.get(key) is batch:
                        del self._pending[key]
                try:
                    self._flush(index, user, kind, batch)
                finally:
                    batch.done.set()
        finally:
            with self._lock:
                self._inflight -= 1
        if request.error is not None:
            raise request.error
        return request.result

    # ------------------------------------------------------------------
    def _resolve_query_vectors(
        self, index: IndexBackend, requests: list[_BatchRequest]
    ) -> list[_BatchRequest]:
        """Populate ``request.qvec`` for the whole batch; returns the
        successfully embedded requests (failures carry their error).

        Requests that shipped an ``embed_many`` spec are resolved
        batch-first: the query LRU is consulted per key, then every
        distinct un-cached text is embedded in ONE model call per
        embedder, and the fresh vectors are written back to the LRU.
        The per-text computation inside ``embed_many`` is identical to
        the single-text ``embed_one`` path (row-independent hashing and
        normalization), so batch-embedded results stay bitwise equal to
        serial embedding.  Requests without a spec (caller-supplied
        embeddings, custom thunks) fall back to their ``query_vector``.
        """
        cache = getattr(index, "query_cache", None)
        live: list[_BatchRequest] = []
        direct: list[_BatchRequest] = []
        grouped: dict[
            Hashable, tuple[EmbedMany, dict[Hashable, list[_BatchRequest]]]
        ] = {}
        for request in requests:
            if (
                request.embed_many is None
                or request.embed_text is None
                or request.embed_key is None
            ):
                # an incomplete embed spec (no distinct cache key) must
                # not share a batch slot: grouping keyless requests
                # would serve them all the first request's vector
                direct.append(request)
                continue
            if cache is not None:
                hit = cache.get(request.embed_key)
                if hit is not None:
                    request.qvec = hit
                    live.append(request)
                    continue
            fn = request.embed_many
            # searchers pass a bound method (searcher.embed_queries),
            # and Python mints a NEW bound-method object per attribute
            # access — grouping by id(fn) would make every group a
            # singleton and defeat the batching entirely.  Group by the
            # underlying (function, instance) pair instead, so every
            # request from the same embedder shares one model call.
            group_key = (
                id(getattr(fn, "__func__", fn)),
                id(getattr(fn, "__self__", None)),
            )
            _, by_key = grouped.setdefault(group_key, (fn, {}))
            by_key.setdefault(request.embed_key, []).append(request)
        for fn, by_key in grouped.values():
            keys = list(by_key)
            texts = [by_key[key][0].embed_text for key in keys]
            try:
                matrix = np.asarray(fn(texts), dtype=np.float32)
                if matrix.shape[0] != len(texts):
                    raise ValueError(
                        f"embed_many returned {matrix.shape[0]} rows for "
                        f"{len(texts)} texts"
                    )
            except Exception as exc:
                for key in keys:
                    for request in by_key[key]:
                        request.error = exc
                continue
            if len(texts) > 1:
                with self._lock:
                    self.batch_embeds += 1
                    self.batch_embedded_queries += len(texts)
            for key, row in zip(keys, matrix):
                vec = cache.put(key, row) if cache is not None else row
                for request in by_key[key]:
                    request.qvec = vec
                    live.append(request)
        for request in direct:
            try:
                request.qvec = request.query_vector()
                live.append(request)
            except Exception as exc:
                request.error = exc
        return live

    # ------------------------------------------------------------------
    def _flush(
        self, index: IndexBackend, user: Hashable, kind: str, batch: _Batch
    ) -> None:
        """Serve every request of ``batch`` in one index pass."""
        requests = batch.requests
        with self._lock:
            self.batches_total += 1
            self.largest_batch = max(self.largest_batch, len(requests))
            if len(requests) > 1:
                self.batched_requests += len(requests)
            self._adapt_window(len(requests))
        lead = requests[0]
        try:
            owned = _materialize_owned(lead.owned_ids)
        except Exception as exc:  # DAO failure — fail the whole batch
            for request in requests:
                request.error = exc
            return
        if not owned:
            for request in requests:
                request.result = []
            return
        live = self._resolve_query_vectors(index, requests)
        if not live:
            return
        try:
            results = index.search_among_many(
                user,
                kind,
                owned,
                [request.qvec for request in live],
                [request.k for request in live],
            )
        except Exception as exc:  # defensive: fail the batch, not None
            for request in live:
                request.error = exc
            return
        if results is None:
            # shard/owned-set mismatch: materialize the corpus once and
            # serve every query with its exact brute-force fallback
            with self._lock:
                self.fallbacks += 1
            try:
                records = lead.resolve(owned)
            except Exception as exc:
                for request in live:
                    request.error = exc
                return
            for request in live:
                try:
                    request.result = request.fallback(records, request.qvec)
                except Exception as exc:
                    request.error = exc
            return
        # one hydration round trip for the union of every query's top-k
        union: list[int] = []
        seen: set[int] = set()
        for ids, _scores in results:
            for rid in ids:
                if rid not in seen:
                    seen.add(rid)
                    union.append(rid)
        try:
            by_id = {
                lead.rid_of(record): record for record in lead.resolve(union)
            }
        except Exception as exc:
            for request in live:
                request.error = exc
            return
        for request, (ids, scores) in zip(live, results):
            try:
                request.result = [
                    request.build_hit(by_id[rid], float(score))
                    for rid, score in zip(ids, scores)
                    if rid in by_id
                ]
            except Exception as exc:
                request.error = exc

    # ------------------------------------------------------------------
    def _adapt_window(self, flushed: int) -> None:
        """Adjust the effective window from one flush's batch size.

        Caller holds ``self._lock``.  Deep flushes (>= half the size
        cap) signal sustained queue depth: after ``_DEEP_STREAK`` in a
        row the window doubles, capped at ``_MAX_WIDEN`` x the base.
        Single-request flushes signal sparse traffic: after
        ``_SPARSE_STREAK`` in a row the window collapses to 0 and every
        lone request skips the wait entirely (``submit`` restores the
        base window on the next concurrent arrival).  In-between sizes
        reset both streaks — the current window is evidently adequate.
        """
        if flushed >= max(2, self.max_batch // 2):
            self._deep_streak += 1
            self._sparse_streak = 0
            if self._deep_streak >= self._DEEP_STREAK:
                self._deep_streak = 0
                widened = min(
                    self._MAX_WIDEN * self.window,
                    (self._effective_window * 2) or self.window,
                )
                if widened > self._effective_window:
                    self._effective_window = widened
                    self.window_widenings += 1
        elif flushed == 1:
            self._sparse_streak += 1
            self._deep_streak = 0
            if self._sparse_streak >= self._SPARSE_STREAK:
                self._sparse_streak = 0
                if self._effective_window > 0.0:
                    self._effective_window = 0.0
                    self.window_collapses += 1
        else:
            self._deep_streak = 0
            self._sparse_streak = 0

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | float]:
        """Dispatcher counters (requests, batches, coalescing, fallbacks)."""
        with self._lock:
            return {
                "window": self.window,
                "effectiveWindow": self._effective_window,
                "windowWidenings": self.window_widenings,
                "windowCollapses": self.window_collapses,
                "maxBatch": self.max_batch,
                "requests": self.requests_total,
                "batches": self.batches_total,
                "batchedRequests": self.batched_requests,
                "largestBatch": self.largest_batch,
                "fallbacks": self.fallbacks,
                "batchEmbeds": self.batch_embeds,
                "batchEmbeddedQueries": self.batch_embedded_queries,
            }
