"""An mpi4py-like communicator over multiprocessing queues.

Implements the "communication of generic Python objects" API of mpi4py
(all-lowercase method names, objects pickled under the hood): ``send``,
``recv``, ``isend``/``irecv``, and the collectives ``bcast``, ``scatter``,
``gather``, ``allgather``, ``reduce``, ``allreduce``, ``barrier``.

Message matching follows MPI semantics: ``recv`` can select by source
rank and tag, with :data:`ANY_SOURCE`/:data:`ANY_TAG` wildcards; messages
that arrive while waiting for a specific match are buffered and delivered
to later receives (non-overtaking per (source, tag) channel, because the
underlying queues are FIFO).
"""

from __future__ import annotations

import queue as queue_mod
import time
from typing import Any, Callable

from repro.errors import MappingError

ANY_SOURCE = -1
ANY_TAG = -1

#: tag space reserved for collective operations (user tags must be >= 0)
_COLLECTIVE_TAG_BASE = -1000


class Request:
    """Handle for a non-blocking operation (mpi4py ``Request`` analogue)."""

    def __init__(self, fetch: Callable[[], Any]) -> None:
        self._fetch = fetch
        self._done = False
        self._value: Any = None

    def test(self) -> tuple[bool, Any]:
        if not self._done:
            try:
                self._value = self._fetch()
                self._done = True
            except queue_mod.Empty:
                return False, None
        return True, self._value

    def wait(self) -> Any:
        if not self._done:
            self._value = self._fetch()
            self._done = True
        return self._value


class Communicator:
    """A COMM_WORLD-like communicator for one rank.

    Parameters
    ----------
    rank, size:
        This process's rank and the world size.
    inboxes:
        rank -> multiprocessing queue; every rank can put into every inbox
        but only ever gets from its own.
    """

    def __init__(self, rank: int, size: int, inboxes: dict[int, Any]) -> None:
        if not 0 <= rank < size:
            raise MappingError(f"rank {rank} out of range for size {size}")
        self._rank = rank
        self._size = size
        self._inboxes = inboxes
        self._buffer: list[tuple[int, int, Any]] = []
        #: per-collective sequence number; all ranks execute collectives in
        #: the same program order, so these tags agree across the world.
        self._collective_seq = 0

    # -- mpi4py-style accessors ----------------------------------------
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    # -- point to point --------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-buffered send (returns once the message is enqueued)."""
        if not 0 <= dest < self._size:
            raise MappingError(f"send to invalid rank {dest}")
        if tag < 0 and tag > _COLLECTIVE_TAG_BASE:
            raise MappingError(f"negative tags are reserved, got {tag}")
        self._inboxes[dest].put((self._rank, tag, obj))

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(lambda: None)

    def _match(self, source: int, tag: int) -> Any | None:
        for i, (src, t, obj) in enumerate(self._buffer):
            if source in (ANY_SOURCE, src) and tag in (ANY_TAG, t):
                del self._buffer[i]
                return (src, t, obj)
        return None

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        """Blocking receive; returns the received object."""
        _src, _tag, obj = self._recv_full(source, tag, timeout)
        return obj

    def _recv_full(
        self, source: int, tag: int, timeout: float | None
    ) -> tuple[int, int, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            hit = self._match(source, tag)
            if hit is not None:
                return hit
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MappingError(
                        f"recv(source={source}, tag={tag}) timed out on "
                        f"rank {self._rank}",
                        params={"timeout": timeout},
                    )
            try:
                self._buffer.append(
                    self._inboxes[self._rank].get(timeout=remaining)
                )
            except queue_mod.Empty:
                continue

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(lambda: self.recv(source, tag))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking: is a matching message already available?"""
        while True:
            try:
                self._buffer.append(self._inboxes[self._rank].get_nowait())
            except queue_mod.Empty:
                break
        hit = self._match(source, tag)
        if hit is None:
            return False
        self._buffer.insert(0, hit)
        return True

    # -- collectives -----------------------------------------------------
    def _next_collective_tag(self) -> int:
        self._collective_seq += 1
        return _COLLECTIVE_TAG_BASE - self._collective_seq

    def _csend(self, obj: Any, dest: int, ctag: int) -> None:
        self._inboxes[dest].put((self._rank, ctag, obj))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        ctag = self._next_collective_tag()
        if self._rank == root:
            for dest in range(self._size):
                if dest != root:
                    self._csend(obj, dest, ctag)
            return obj
        return self.recv(source=root, tag=ctag)

    def scatter(self, seq: Any, root: int = 0) -> Any:
        ctag = self._next_collective_tag()
        if self._rank == root:
            if seq is None or len(seq) != self._size:
                raise MappingError(
                    "scatter expects a sequence of comm.size elements at root",
                    params={"size": self._size},
                )
            for dest in range(self._size):
                if dest != root:
                    self._csend(seq[dest], dest, ctag)
            return seq[root]
        return self.recv(source=root, tag=ctag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        ctag = self._next_collective_tag()
        if self._rank == root:
            out: list[Any] = [None] * self._size
            out[root] = obj
            for src in range(self._size):
                if src != root:
                    out[src] = self.recv(source=src, tag=ctag)
            return out
        self._csend(obj, root, ctag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any | None:
        gathered = self.gather(obj, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)

    def barrier(self) -> None:
        """All ranks block until every rank has arrived."""
        self.gather(None, root=0)
        self.bcast(None, root=0)

    def __repr__(self) -> str:
        return f"<Communicator rank={self._rank}/{self._size}>"
