"""Simulated MPI substrate.

The paper's dispel4py supports an MPI mapping executed with ``mpiexec`` on
an HPC cluster.  That hardware/middleware is not available offline, so
this subpackage provides the closest synthetic equivalent: an mpi4py-like
:class:`Communicator` (lowercase, pickle-based ``send``/``recv``/``bcast``/
``scatter``/``gather``/``barrier`` — the exact API subset dispel4py's MPI
mapping uses) implemented over ``multiprocessing`` queues, plus a
:func:`mpi_run` launcher standing in for ``mpiexec -n``.

Each rank is a real OS process, so the parallel execution structure —
independent Python interpreters communicating only by message passing —
matches a genuine MPI enactment; only the wire transport differs.
"""

from repro.mpisim.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpisim.launcher import MPIRunError, mpi_run

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG", "mpi_run", "MPIRunError"]
