"""Launcher for simulated MPI programs (the ``mpiexec -n`` analogue).

:func:`mpi_run` spawns one OS process per rank, hands each a
:class:`~repro.mpisim.communicator.Communicator`, runs a user function and
returns the per-rank results ordered by rank.  The function is shipped as
a cloudpickle blob so lambdas and closures work like with ``mpi4py``'s
pickle-based messaging.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import Any, Callable

import cloudpickle

from repro.errors import MappingError
from repro.mpisim.communicator import Communicator


class MPIRunError(MappingError):
    """A rank raised an exception during a simulated MPI run."""

    kind = "MPIRunError"


def _rank_entry(
    func_blob: bytes,
    rank: int,
    size: int,
    inboxes: dict[int, Any],
    result_queue: Any,
    args_blob: bytes,
) -> None:
    """Per-rank process entry point (module level for spawn-safety)."""
    try:
        func = cloudpickle.loads(func_blob)
        args = cloudpickle.loads(args_blob)
        comm = Communicator(rank, size, inboxes)
        value = func(comm, *args)
        result_queue.put(("ok", rank, cloudpickle.dumps(value)))
    except Exception:
        result_queue.put(("error", rank, traceback.format_exc()))


def mpi_run(
    nprocs: int,
    func: Callable[..., Any],
    *args: Any,
    timeout: float = 300.0,
) -> list[Any]:
    """Run ``func(comm, *args)`` on ``nprocs`` ranks; return results by rank.

    Raises :class:`MPIRunError` if any rank fails or the run times out.
    """
    if nprocs < 1:
        raise MappingError(f"nprocs must be >= 1, got {nprocs}")
    ctx = mp.get_context()
    inboxes: dict[int, Any] = {r: ctx.Queue() for r in range(nprocs)}
    result_queue = ctx.Queue()
    func_blob = cloudpickle.dumps(func)
    args_blob = cloudpickle.dumps(args)

    processes = [
        ctx.Process(
            target=_rank_entry,
            args=(func_blob, rank, nprocs, inboxes, result_queue, args_blob),
            daemon=True,
        )
        for rank in range(nprocs)
    ]
    for proc in processes:
        proc.start()

    results: dict[int, Any] = {}
    errors: list[tuple[int, str]] = []
    deadline = time.monotonic() + timeout
    while len(results) + len(errors) < nprocs:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            _terminate(processes)
            raise MPIRunError(
                f"simulated MPI run timed out after {timeout}s "
                f"({len(results)}/{nprocs} ranks finished)",
                params={"timeout": timeout, "nprocs": nprocs},
            )
        try:
            status, rank, payload = result_queue.get(timeout=min(remaining, 0.5))
        except queue_mod.Empty:
            continue
        if status == "ok":
            results[rank] = cloudpickle.loads(payload)
        else:
            errors.append((rank, payload))
            break

    for proc in processes:
        proc.join(timeout=2.0)
    _terminate(processes)

    if errors:
        details = "\n---\n".join(f"rank {r}:\n{tb}" for r, tb in errors)
        raise MPIRunError(
            f"{len(errors)} rank(s) failed during simulated MPI run",
            details=details,
        )
    return [results[r] for r in range(nprocs)]


def _terminate(processes: list[mp.Process]) -> None:
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=1.0)
