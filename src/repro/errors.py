"""Shared exception hierarchy for the Laminar reproduction.

The paper (Section 3.2.5) describes tailored server-side error handling:
exceptions carry a type identifier, an error code, the failed parameters and
supplementary details, and are rendered to a standardized JSON envelope for
the client.  Every error raised anywhere in this package derives from
:class:`ReproError` so the server layer can translate uniformly.
"""

from __future__ import annotations

from typing import Any, Mapping


class ReproError(Exception):
    """Base class for all errors raised by this package.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    params:
        The offending parameters (name -> value), included in the JSON
        envelope so clients can see which input failed.
    details:
        Optional free-form supplementary details.
    """

    #: Machine-readable error code; subclasses override.
    code: int = 500
    #: Short type identifier used in the JSON envelope.
    kind: str = "InternalError"

    def __init__(
        self,
        message: str,
        *,
        params: Mapping[str, Any] | None = None,
        details: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.params = dict(params or {})
        self.details = details

    def to_json(self) -> dict[str, Any]:
        """Render the standardized JSON error envelope (paper §3.2.5)."""
        body: dict[str, Any] = {
            "error": self.kind,
            "code": self.code,
            "message": self.message,
        }
        if self.params:
            body["params"] = {k: repr(v) for k, v in self.params.items()}
        if self.details:
            body["details"] = self.details
        return body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(code={self.code}, message={self.message!r})"


class ValidationError(ReproError):
    """A request or workflow definition failed validation."""

    code = 400
    kind = "ValidationError"


class GraphError(ValidationError):
    """A workflow graph is malformed (bad ports, cycles, disconnections)."""

    kind = "GraphError"


class MappingError(ReproError):
    """An enactment mapping failed or was misconfigured."""

    code = 500
    kind = "MappingError"


class SerializationError(ReproError):
    """Code or data could not be (de)serialized for transport."""

    code = 422
    kind = "SerializationError"


class RegistryError(ReproError):
    """Generic registry-layer failure."""

    code = 500
    kind = "RegistryError"


class NotFoundError(RegistryError):
    """The requested entity does not exist in the registry."""

    code = 404
    kind = "NotFoundError"


class DuplicateError(RegistryError):
    """An entity with the same identity already exists."""

    code = 409
    kind = "DuplicateError"


class IdempotencyError(RegistryError):
    """An idempotency key was replayed with a *different* request.

    Replaying the same key with the same request returns the stored
    response; the same key fronting different content is a client bug
    the server must surface, never silently resolve either way.
    """

    code = 409
    kind = "IdempotencyConflict"


class PreconditionFailedError(RegistryError):
    """A conditional write's ``ifVersion`` did not match the live state."""

    code = 412
    kind = "PreconditionFailed"


class MethodNotAllowedError(ReproError):
    """The path matches a route pattern, but not with this method.

    Carries the ``allowed`` method list so the transport layer can emit
    the HTTP ``Allow`` header alongside the 405 envelope.
    """

    code = 405
    kind = "MethodNotAllowed"

    def __init__(self, message: str, *, allowed: list[str] | None = None, **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.allowed = sorted(allowed or [])


class AuthenticationError(ReproError):
    """Login failed or the caller is not authorized."""

    code = 401
    kind = "AuthenticationError"


class ExecutionError(ReproError):
    """The execution engine failed while running a workflow."""

    code = 500
    kind = "ExecutionError"


class TransportError(ReproError):
    """The client/server transport failed."""

    code = 502
    kind = "TransportError"


class EnvironmentError_(ReproError):
    """The simulated execution environment could not satisfy a dependency."""

    code = 500
    kind = "EnvironmentError"


#: Map from ``kind`` string back to exception class, used when the client
#: rehydrates a JSON error envelope received from the server.
_KIND_TO_CLASS: dict[str, type[ReproError]] = {
    cls.kind: cls
    for cls in (
        ReproError,
        ValidationError,
        GraphError,
        MappingError,
        SerializationError,
        RegistryError,
        NotFoundError,
        DuplicateError,
        IdempotencyError,
        PreconditionFailedError,
        MethodNotAllowedError,
        AuthenticationError,
        ExecutionError,
        TransportError,
        EnvironmentError_,
    )
}


def error_envelope(
    kind: str,
    code: int | None,
    message: str,
    *,
    params: Mapping[str, Any] | None = None,
    details: str | None = None,
) -> dict[str, Any]:
    """Construct the standardized §3.2.5 error envelope as a dict.

    The canonical path is raising a :class:`ReproError` and letting the
    dispatch layer render ``to_json()``; this constructor exists for
    the transport layers that must answer *before* a dispatch context
    exists (malformed request lines, unsupported methods, worker-crash
    envelopes) so they never hand-roll the dict shape.  Key order is
    part of the wire contract (``error``, ``code``, ``message``,
    ``params``, ``details``) — parity tests pin response bytes.
    ``code=None`` omits the field (job errors are not HTTP responses).
    """
    body: dict[str, Any] = {"error": kind}
    if code is not None:
        body["code"] = int(code)
    body["message"] = message
    if params:
        body["params"] = {k: repr(v) for k, v in params.items()}
    if details:
        body["details"] = details
    return body


def error_from_json(body: Mapping[str, Any]) -> ReproError:
    """Rebuild an exception from a JSON error envelope.

    Unknown kinds degrade gracefully to :class:`ReproError`.
    """
    kind = str(body.get("error", "InternalError"))
    cls = _KIND_TO_CLASS.get(kind, ReproError)
    err = cls(
        str(body.get("message", "unknown error")),
        details=body.get("details"),
    )
    err.params = dict(body.get("params", {}))
    return err
