"""Abstract workflow graphs (paper §2.1, "Abstract Workflow").

A :class:`WorkflowGraph` captures the logical connections between PEs —
the computational sequence and data transformations the user describes.
At enactment time the graph is expanded into a *concrete* workflow (a DAG
of PE instances) by :mod:`repro.dataflow.partition`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.dataflow.core import ProcessingElement
from repro.errors import GraphError


@dataclass(frozen=True)
class Connection:
    """A directed edge: ``(source PE, output port) -> (dest PE, input port)``."""

    source: ProcessingElement
    source_port: str
    dest: ProcessingElement
    dest_port: str

    def __repr__(self) -> str:
        return (
            f"{self.source.name}.{self.source_port} -> "
            f"{self.dest.name}.{self.dest_port}"
        )


class WorkflowGraph:
    """The abstract workflow: PEs plus their port-to-port connections.

    Example (the IsPrime workflow of Listing 3)::

        graph = WorkflowGraph()
        graph.connect(pe1, 'output', pe2, 'input')
        graph.connect(pe2, 'output', pe3, 'input')
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or "workflow"
        self._pes: list[ProcessingElement] = []
        self._connections: list[Connection] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, pe: ProcessingElement) -> ProcessingElement:
        """Add an unconnected PE to the graph (rarely needed directly)."""
        if not isinstance(pe, ProcessingElement):
            raise GraphError(
                f"expected a ProcessingElement, got {type(pe).__name__}",
                params={"pe": pe},
            )
        if pe not in self._pes:
            self._pes.append(pe)
        return pe

    def connect(
        self,
        source: ProcessingElement,
        source_port: str,
        dest: ProcessingElement,
        dest_port: str,
    ) -> None:
        """Connect ``source.source_port`` to ``dest.dest_port``.

        Both PEs are added to the graph if not yet present.  Port names are
        validated eagerly so mistakes surface at build time rather than at
        enactment.
        """
        self.add(source)
        self.add(dest)
        if source_port not in source.outputconnections:
            raise GraphError(
                f"PE {source.name!r} has no output port {source_port!r}",
                params={"pe": source.name, "port": source_port},
                details=f"available: {sorted(source.outputconnections)}",
            )
        if dest_port not in dest.inputconnections:
            raise GraphError(
                f"PE {dest.name!r} has no input port {dest_port!r}",
                params={"pe": dest.name, "port": dest_port},
                details=f"available: {sorted(dest.inputconnections)}",
            )
        if source is dest:
            raise GraphError(
                "self-loops are not allowed in a dataflow graph",
                params={"pe": source.name},
            )
        conn = Connection(source, source_port, dest, dest_port)
        self._connections.append(conn)
        self._check_acyclic()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get_pes(self) -> list[ProcessingElement]:
        """All PEs in insertion order."""
        return list(self._pes)

    def get_connections(self) -> list[Connection]:
        return list(self._connections)

    def outgoing(self, pe: ProcessingElement) -> list[Connection]:
        return [c for c in self._connections if c.source is pe]

    def incoming(self, pe: ProcessingElement) -> list[Connection]:
        return [c for c in self._connections if c.dest is pe]

    def roots(self) -> list[ProcessingElement]:
        """PEs with no incoming connections — the stream origins.

        The Execution Engine uses this for *automatic root detection*
        (paper §3.3: "the Execution Engine autonomously analyzes the
        workflow's structure to identify the suitable starting point").
        """
        dests = {c.dest for c in self._connections}
        return [pe for pe in self._pes if pe not in dests]

    def leaves(self) -> list[ProcessingElement]:
        """PEs with no outgoing connections — the stream sinks."""
        sources = {c.source for c in self._connections}
        return [pe for pe in self._pes if pe not in sources]

    def topological_order(self) -> list[ProcessingElement]:
        """Kahn topological sort; raises :class:`GraphError` on cycles."""
        indeg: dict[int, int] = {id(pe): 0 for pe in self._pes}
        for conn in self._connections:
            indeg[id(conn.dest)] += 1
        by_id = {id(pe): pe for pe in self._pes}
        queue = deque(pe for pe in self._pes if indeg[id(pe)] == 0)
        order: list[ProcessingElement] = []
        while queue:
            pe = queue.popleft()
            order.append(pe)
            for conn in self.outgoing(pe):
                indeg[id(conn.dest)] -= 1
                if indeg[id(conn.dest)] == 0:
                    queue.append(by_id[id(conn.dest)])
        if len(order) != len(self._pes):
            raise GraphError(
                "workflow graph contains a cycle",
                params={"workflow": self.name},
            )
        return order

    def _check_acyclic(self) -> None:
        self.topological_order()

    def validate(self) -> None:
        """Full validation: acyclic, all non-source PEs reachable.

        Raises :class:`GraphError` describing the first violation.
        """
        self.topological_order()
        if not self._pes:
            raise GraphError("workflow graph is empty", params={"workflow": self.name})
        roots = self.roots()
        if not roots:
            raise GraphError(
                "workflow graph has no root PE",
                params={"workflow": self.name},
            )
        # Note: a root PE *with* input ports is legal — the Execution
        # Engine feeds it externally (e.g. ReadRaDec receiving the input
        # file name, Listing 7).  Input starvation is therefore a runtime
        # concern handled by normalize_input, not a graph-shape error.

    # ------------------------------------------------------------------
    # Naming helpers — instances of the same class must be distinguishable
    # ------------------------------------------------------------------
    def unique_names(self) -> dict[int, str]:
        """Assign a unique display name per PE (``IsPrime``, ``IsPrime#2``)."""
        seen: dict[str, int] = {}
        names: dict[int, str] = {}
        for pe in self._pes:
            count = seen.get(pe.name, 0)
            names[id(pe)] = pe.name if count == 0 else f"{pe.name}#{count + 1}"
            seen[pe.name] = count + 1
        return names

    def __iter__(self) -> Iterator[ProcessingElement]:
        return iter(self._pes)

    def __len__(self) -> int:
        return len(self._pes)

    def __contains__(self, pe: Any) -> bool:
        return pe in self._pes

    def __repr__(self) -> str:
        return (
            f"<WorkflowGraph {self.name!r} pes={len(self._pes)} "
            f"connections={len(self._connections)}>"
        )
