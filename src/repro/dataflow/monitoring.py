"""Lightweight per-instance monitoring counters.

The HPC guides' first rule is "no optimization without measuring": every
enactment records how many data units each instance consumed/produced and
how long it spent inside user ``_process`` code, so benchmark results can
be attributed to workload rather than framework overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class InstanceCounters:
    """Counters for a single PE instance."""

    pe_name: str = ""
    instance: int = 0
    consumed: int = 0
    produced: int = 0
    process_seconds: float = 0.0

    def merge_key(self) -> str:
        return self.pe_name

    def as_dict(self) -> dict[str, float]:
        return {
            "consumed": self.consumed,
            "produced": self.produced,
            "process_seconds": self.process_seconds,
        }


@dataclass
class Stopwatch:
    """Context-manager accumulating elapsed wall time into a counter."""

    counters: InstanceCounters

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.counters.process_seconds += time.perf_counter() - self._t0


def merge_counters(items: list[InstanceCounters]) -> dict[str, dict[str, float]]:
    """Aggregate per-instance counters by PE name."""
    merged: dict[str, dict[str, float]] = {}
    for item in items:
        slot = merged.setdefault(
            item.merge_key(),
            {"consumed": 0, "produced": 0, "process_seconds": 0.0, "instances": 0},
        )
        slot["consumed"] += item.consumed
        slot["produced"] += item.produced
        slot["process_seconds"] += item.process_seconds
        slot["instances"] += 1
    return merged
