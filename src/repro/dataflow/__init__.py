"""Stream-based dataflow substrate (dispel4py reproduction).

This subpackage reimplements, from scratch, the parts of the dispel4py
library that Laminar builds on (paper §2.1):

* Processing Elements (:class:`GenericPE`, :class:`ProducerPE`,
  :class:`IterativePE`, :class:`ConsumerPE`) connected through named input
  and output ports.
* :class:`WorkflowGraph` — the *abstract* workflow the user describes.
* Groupings controlling how data is routed between PE instances
  (shuffle/round-robin, group-by, all-to-one, one-to-all).
* Partitioning of the abstract workflow into a *concrete* workflow of PE
  instances distributed over processes.
* Enactment mappings: ``simple`` (sequential), ``multi``
  (multiprocessing), ``mpi`` (simulated MPI communicator) and ``redis``
  (simulated broker), mirroring dispel4py's mapping set.
"""

from repro.dataflow.core import (
    ConsumerPE,
    GenericPE,
    IterativePE,
    PEOutput,
    ProducerPE,
    ProcessingElement,
)
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.grouping import (
    AllToOneGrouping,
    GroupByGrouping,
    Grouping,
    OneToAllGrouping,
    ShuffleGrouping,
    make_grouping,
)
from repro.dataflow.partition import ConcreteWorkflow, build_concrete_workflow
from repro.dataflow.mappings import (
    MAPPINGS,
    Mapping,
    MappingResult,
    get_mapping,
    run_workflow,
)

__all__ = [
    "ProcessingElement",
    "GenericPE",
    "ProducerPE",
    "IterativePE",
    "ConsumerPE",
    "PEOutput",
    "WorkflowGraph",
    "Grouping",
    "ShuffleGrouping",
    "GroupByGrouping",
    "AllToOneGrouping",
    "OneToAllGrouping",
    "make_grouping",
    "ConcreteWorkflow",
    "build_concrete_workflow",
    "Mapping",
    "MappingResult",
    "MAPPINGS",
    "get_mapping",
    "run_workflow",
]
