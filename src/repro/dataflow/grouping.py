"""Groupings — how data is routed between PE instances (paper §2.1).

When a destination PE has several parallel instances, the grouping on its
input port decides which instance(s) receive each data unit:

* **shuffle** (default): round-robin across instances, balancing load.
* **group-by** (a list of tuple indices): data units with the same value in
  the specified element(s) always go to the same instance — the
  'MapReduce'-style routing used by the CountWords PE of Listing 2.
* **global** (all-to-one): every data unit goes to instance 0.
* **all** (one-to-all): every data unit is broadcast to all instances.

Routing functions are pure and deterministic so that every sender process
makes identical decisions without coordination — the property the parallel
mappings (multi/MPI/redis) rely on.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Sequence

from repro.errors import GraphError


def _stable_hash(value: Any) -> int:
    """Deterministic cross-process hash of an arbitrary picklable value.

    Python's builtin ``hash`` is randomized per process for str/bytes
    (PYTHONHASHSEED), which would break group-by consistency across worker
    processes; we hash the pickle of the value with blake2b instead.
    """
    try:
        payload = pickle.dumps(value, protocol=4)
    except Exception:
        payload = repr(value).encode("utf-8", "replace")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Grouping:
    """Base class: maps a data unit to destination instance indices."""

    #: short name used in visualisations
    label = "grouping"

    def route(self, value: Any, n_instances: int) -> list[int]:
        """Return the destination instance indices for ``value``.

        ``n_instances`` is the number of parallel instances of the
        destination PE; indices are local (0-based) within that PE.
        """
        raise NotImplementedError

    def new_state(self) -> "Grouping":
        """Return a per-sender copy (stateful groupings keep counters)."""
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ShuffleGrouping(Grouping):
    """Round-robin distribution; each *sender* keeps its own counter."""

    label = "shuffle"

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def route(self, value: Any, n_instances: int) -> list[int]:
        if n_instances <= 0:
            raise GraphError("cannot route to zero instances")
        idx = self._next % n_instances
        self._next += 1
        return [idx]

    def new_state(self) -> "ShuffleGrouping":
        return ShuffleGrouping()


class GroupByGrouping(Grouping):
    """Hash-partition on selected tuple elements (MapReduce-style).

    ``indices`` selects which elements of the data unit form the key, e.g.
    ``[0]`` for the word in ``(word, count)`` tuples.  Non-indexable data
    units are keyed on the whole value.
    """

    label = "group-by"

    def __init__(self, indices: Sequence[int]) -> None:
        if not indices:
            raise GraphError("group-by requires at least one key index")
        self.indices = tuple(int(i) for i in indices)

    def key_of(self, value: Any) -> Any:
        try:
            return tuple(value[i] for i in self.indices)
        except (TypeError, IndexError, KeyError):
            return (value,)

    def route(self, value: Any, n_instances: int) -> list[int]:
        if n_instances <= 0:
            raise GraphError("cannot route to zero instances")
        return [_stable_hash(self.key_of(value)) % n_instances]

    def __repr__(self) -> str:
        return f"<GroupByGrouping indices={list(self.indices)}>"


class AllToOneGrouping(Grouping):
    """'global' grouping: every data unit goes to instance 0."""

    label = "global"

    def route(self, value: Any, n_instances: int) -> list[int]:
        if n_instances <= 0:
            raise GraphError("cannot route to zero instances")
        return [0]


class OneToAllGrouping(Grouping):
    """'all' grouping: broadcast every data unit to all instances."""

    label = "all"

    def route(self, value: Any, n_instances: int) -> list[int]:
        if n_instances <= 0:
            raise GraphError("cannot route to zero instances")
        return list(range(n_instances))


def make_grouping(declaration: Any) -> Grouping:
    """Resolve a user port-level grouping declaration into a Grouping.

    Accepted declarations (matching dispel4py's syntax):

    * ``None`` -> shuffle (round-robin)
    * list/tuple of ints -> group-by on those tuple indices
    * ``"global"`` -> all-to-one
    * ``"all"`` -> one-to-all broadcast
    * an existing :class:`Grouping` instance -> used as-is
    """
    if declaration is None:
        return ShuffleGrouping()
    if isinstance(declaration, Grouping):
        return declaration
    if isinstance(declaration, str):
        name = declaration.lower()
        if name == "global":
            return AllToOneGrouping()
        if name == "all":
            return OneToAllGrouping()
        raise GraphError(
            f"unknown grouping declaration {declaration!r}",
            params={"grouping": declaration},
            details="expected None, a list of indices, 'global' or 'all'",
        )
    if isinstance(declaration, (list, tuple)):
        return GroupByGrouping(declaration)
    raise GraphError(
        f"unsupported grouping declaration {declaration!r}",
        params={"grouping": declaration},
    )
