"""Abstract -> concrete workflow expansion (paper §2.1, Figure 1).

During enactment — after the user specifies the mapping and the number of
processes — dispel4py automatically builds the *concrete* workflow: a DAG
of PE **instances** distributed over processes.  This module reproduces
that step:

* :func:`distribute_processes` implements the allocation rule of Figure 1
  (sources get one instance; the remaining process budget is split as
  evenly as possible over the other PEs).
* :class:`ConcreteWorkflow` holds the instance table and the routing
  tables shared by every mapping.
* :class:`Router` performs per-sender routing decisions (groupings with
  per-sender state such as shuffle counters live here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dataflow.core import PEOutput, ProcessingElement
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.grouping import Grouping, make_grouping
from repro.errors import GraphError, MappingError


@dataclass(frozen=True)
class InstanceInfo:
    """One PE instance in the concrete workflow."""

    gid: int
    pe_index: int
    local_index: int
    pe_name: str

    def __repr__(self) -> str:
        return f"<instance {self.gid}: {self.pe_name}[{self.local_index}]>"


@dataclass(frozen=True)
class RouteTarget:
    """One connection target of an output port, instance-resolved."""

    dest_pe_index: int
    dest_port: str
    dest_gids: tuple[int, ...]
    grouping_decl: Any


def distribute_processes(graph: WorkflowGraph, nprocs: int | None) -> list[int]:
    """Compute instances-per-PE for a total process budget.

    Returns a list aligned with ``graph.topological_order()``.

    Rule (matching dispel4py's multi/MPI partitioning, cf. Figure 1 where
    five processes over three PEs become 1/2/2): source PEs always get one
    instance; the remaining budget is divided over the non-source PEs
    proportionally to their ``numprocesses`` hints (all-equal hints give
    an even split, earlier/heavier PEs receiving the remainder first).
    When ``nprocs`` is ``None`` each PE's ``numprocesses`` attribute is
    used verbatim.
    """
    order = graph.topological_order()
    if nprocs is None:
        return [max(1, int(pe.numprocesses)) for pe in order]
    if nprocs < 1:
        raise MappingError(
            f"process count must be >= 1, got {nprocs}",
            params={"nprocs": nprocs},
        )
    sources = [pe for pe in order if graph.incoming(pe) == []]
    others = [pe for pe in order if pe not in sources]
    counts: dict[int, int] = {id(pe): 1 for pe in order}
    if others:
        budget = max(len(others), nprocs - len(sources))
        weights = [max(1, int(pe.numprocesses)) for pe in others]
        total_weight = sum(weights)
        shares = [budget * w / total_weight for w in weights]
        floors = [max(1, int(share)) for share in shares]
        # hand out any remaining budget by largest fractional part,
        # breaking ties toward upstream PEs
        remainder = budget - sum(floors)
        if remainder > 0:
            by_fraction = sorted(
                range(len(others)),
                key=lambda i: (-(shares[i] - int(shares[i])), i),
            )
            for i in by_fraction[:remainder]:
                floors[i] += 1
        for pe, count in zip(others, floors):
            counts[id(pe)] = count
    return [counts[id(pe)] for pe in order]


class ConcreteWorkflow:
    """The executable DAG of PE instances plus routing metadata.

    The same concrete workflow object drives every mapping: the simple
    mapping iterates it in-process, while multi/MPI/redis serialize it to
    worker processes.
    """

    def __init__(self, graph: WorkflowGraph, counts: list[int]) -> None:
        order = graph.topological_order()
        if len(counts) != len(order):
            raise MappingError(
                "instance count list does not match PE count",
                params={"counts": counts, "pes": len(order)},
            )
        self.graph = graph
        self.pes: list[ProcessingElement] = order
        names = graph.unique_names()
        self.pe_names: list[str] = [names[id(pe)] for pe in order]
        self.counts = list(counts)
        self._pe_index = {id(pe): i for i, pe in enumerate(order)}

        # instance table -------------------------------------------------
        self.instances: list[InstanceInfo] = []
        self.instances_of: list[list[int]] = [[] for _ in order]
        gid = 0
        for pe_index, pe in enumerate(order):
            for local in range(self.counts[pe_index]):
                self.instances.append(
                    InstanceInfo(gid, pe_index, local, self.pe_names[pe_index])
                )
                self.instances_of[pe_index].append(gid)
                gid += 1

        # routing tables ---------------------------------------------------
        # (pe_index, out_port) -> [RouteTarget, ...]
        self.routes: dict[tuple[int, str], list[RouteTarget]] = {}
        for conn in graph.get_connections():
            src_i = self._pe_index[id(conn.source)]
            dst_i = self._pe_index[id(conn.dest)]
            decl = conn.dest.inputconnections[conn.dest_port].grouping
            target = RouteTarget(
                dest_pe_index=dst_i,
                dest_port=conn.dest_port,
                dest_gids=tuple(self.instances_of[dst_i]),
                grouping_decl=decl,
            )
            self.routes.setdefault((src_i, conn.source_port), []).append(target)

        # expected EOS per destination instance ----------------------------
        # every source instance of every incoming connection sends exactly
        # one EOS to every destination instance of that connection.
        self.expected_eos: dict[int, int] = {
            info.gid: 0 for info in self.instances
        }
        for conn in graph.get_connections():
            src_i = self._pe_index[id(conn.source)]
            dst_i = self._pe_index[id(conn.dest)]
            n_src = self.counts[src_i]
            for dest_gid in self.instances_of[dst_i]:
                self.expected_eos[dest_gid] += n_src

        # output ports with no outgoing connection: their writes are the
        # workflow *results* returned to the client (cf. Figure 9).
        self.result_ports: set[tuple[int, str]] = set()
        connected = set(self.routes.keys())
        for pe_index, pe in enumerate(order):
            for port in pe.outputconnections:
                if (pe_index, port) not in connected:
                    self.result_ports.add((pe_index, port))

    # ------------------------------------------------------------------
    @property
    def total_instances(self) -> int:
        return len(self.instances)

    def pe_of(self, gid: int) -> ProcessingElement:
        return self.pes[self.instances[gid].pe_index]

    def make_instance(self, gid: int) -> ProcessingElement:
        """Create an independent PE object for instance ``gid``."""
        info = self.instances[gid]
        pe = self.pes[info.pe_index].clone()
        pe.instance_id = info.local_index
        return pe

    def root_pe_indices(self) -> list[int]:
        """Indices of root PEs (automatic starting-point detection, §3.3)."""
        return [i for i, pe in enumerate(self.pes) if not self.graph.incoming(pe)]

    def describe(self) -> str:
        lines = [f"concrete workflow ({self.total_instances} instances):"]
        for pe_index, name in enumerate(self.pe_names):
            gids = self.instances_of[pe_index]
            lines.append(f"  {name}: instances {gids}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ConcreteWorkflow pes={len(self.pes)} "
            f"instances={self.total_instances}>"
        )


def build_concrete_workflow(
    graph: WorkflowGraph, nprocs: int | None = None
) -> ConcreteWorkflow:
    """Validate ``graph`` and expand it for a total process budget."""
    graph.validate()
    counts = distribute_processes(graph, nprocs)
    return ConcreteWorkflow(graph, counts)


@dataclass
class _TargetState:
    target: RouteTarget
    grouping: Grouping


class Router:
    """Per-sender routing: resolves writes to destination instance ids.

    Each sending instance owns a Router so that stateful groupings
    (shuffle counters) are independent per sender — the standard dataflow
    property that lets every worker route without coordination.
    """

    def __init__(self, workflow: ConcreteWorkflow, sender_pe_index: int) -> None:
        self._states: dict[str, list[_TargetState]] = {}
        self._result_ports: set[str] = set()
        pe = workflow.pes[sender_pe_index]
        for port in pe.outputconnections:
            key = (sender_pe_index, port)
            if key in workflow.result_ports:
                self._result_ports.add(port)
                continue
            states = []
            for target in workflow.routes.get(key, []):
                states.append(
                    _TargetState(target, make_grouping(target.grouping_decl).new_state())
                )
            self._states[port] = states

    def is_result_port(self, port: str) -> bool:
        return port in self._result_ports

    def route(self, output: PEOutput) -> list[tuple[int, str, Any]]:
        """Resolve one write to ``[(dest_gid, dest_port, value), ...]``."""
        states = self._states.get(output.port)
        if states is None:
            if output.port in self._result_ports:
                return []
            raise GraphError(
                f"write to unknown output port {output.port!r}",
                params={"port": output.port},
            )
        messages: list[tuple[int, str, Any]] = []
        for state in states:
            n = len(state.target.dest_gids)
            for local_idx in state.grouping.route(output.value, n):
                gid = state.target.dest_gids[local_idx]
                messages.append((gid, state.target.dest_port, output.value))
        return messages

    def eos_targets(self) -> list[tuple[int, str]]:
        """All (dest_gid, dest_port) pairs that must receive one EOS each.

        EOS is *broadcast* to every destination instance of every outgoing
        connection, regardless of grouping, because any instance may have
        been receiving data from this sender.
        """
        targets: list[tuple[int, str]] = []
        for states in self._states.values():
            for state in states:
                for gid in state.target.dest_gids:
                    targets.append((gid, state.target.dest_port))
        return targets
