"""Redis mapping — PE instances communicate through broker lists.

Mirrors dispel4py's redis mapping: every instance owns a list
(``q:<gid>``) on the broker; producers/relays ``RPUSH`` data units to
their destinations' lists and each instance ``BLPOP``s its own list.
Results, stdout and completion signals flow through a shared
``collector`` list that the parent drains.

Substitution note (DESIGN.md): the broker is the simulated Redis of
:mod:`repro.brokersim` — a separate OS process with Redis list
semantics — because no Redis server is available offline.  Workers are
real OS processes, one per instance, each holding its own broker client
("connection").
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Any

import cloudpickle

from repro.brokersim import BrokerClient, BrokerServer
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings.base import (
    MSG_DATA,
    MSG_EOS,
    ExternalDriver,
    InstanceRunner,
    InstanceTransport,
    Mapping,
    MappingResult,
    effective_expected_eos,
    normalize_input,
)
from repro.dataflow.monitoring import InstanceCounters
from repro.errors import MappingError

_COLLECTOR_KEY = "collector"
_BLPOP_TIMEOUT = 290.0


def _queue_key(gid: int) -> str:
    return f"q:{gid}"


class _RedisTransport(InstanceTransport):
    """Broker-list plumbing for one worker process."""

    def __init__(self, gid: int, client: BrokerClient) -> None:
        self.gid = gid
        self.client = client

    def send_data(self, dest_gid: int, port: str, value: Any) -> None:
        self.client.rpush(_queue_key(dest_gid), (MSG_DATA, port, value))

    def send_eos(self, dest_gid: int) -> None:
        self.client.rpush(_queue_key(dest_gid), (MSG_EOS, None, None))

    def recv(self) -> tuple[str, Any, Any]:
        popped = self.client.blpop(_queue_key(self.gid), timeout=_BLPOP_TIMEOUT)
        if popped is None:
            raise MappingError(
                f"instance {self.gid} starved: no message within "
                f"{_BLPOP_TIMEOUT}s",
                params={"gid": self.gid},
            )
        _key, message = popped
        return message

    def emit_result(self, pe_name: str, port: str, value: Any) -> None:
        self.client.rpush(_COLLECTOR_KEY, ("result", pe_name, port, value))

    def emit_stdout(self, text: str) -> None:
        self.client.rpush(_COLLECTOR_KEY, ("stdout", text))

    def emit_done(self, counters: InstanceCounters) -> None:
        self.client.rpush(_COLLECTOR_KEY, ("done", counters))


def _redis_worker(
    blob: bytes,
    gid: int,
    produce_n: int | None,
    expected_eos: int,
    client: BrokerClient,
    capture_stdout: bool,
) -> None:
    """Worker entry point (module-level for spawn-safety)."""
    try:
        workflow = cloudpickle.loads(blob)
        transport = _RedisTransport(gid, client)
        InstanceRunner(
            workflow,
            gid,
            transport,
            produce_n=produce_n,
            expected_eos=expected_eos,
            capture_stdout=capture_stdout,
        ).run()
    except Exception:
        client.rpush(_COLLECTOR_KEY, ("error", gid, traceback.format_exc()))


class RedisMapping(Mapping):
    """Parallel enactment through the simulated Redis broker."""

    name = "redis"
    parallel = True

    def execute(
        self,
        graph: WorkflowGraph,
        input: Any = None,
        nprocs: int | None = None,
        *,
        capture_stdout: bool = True,
        timeout: float = 300.0,
    ) -> MappingResult:
        t0 = time.perf_counter()
        workflow = self._build(graph, nprocs)
        produce_counts, external_items = normalize_input(workflow, input)
        expected = effective_expected_eos(workflow)
        total = workflow.total_instances

        # client 0..total-1 for the workers, client `total` for the driver
        server = BrokerServer(n_clients=total + 1)
        server.start()
        driver_client = server.client(total)
        blob = cloudpickle.dumps(workflow)

        processes: list[mp.Process] = []
        try:
            driver_client.ping()
            ctx = mp.get_context()
            for info in workflow.instances:
                proc = ctx.Process(
                    target=_redis_worker,
                    args=(
                        blob,
                        info.gid,
                        produce_counts.get(info.gid),
                        expected[info.gid],
                        server.client(info.gid),
                        capture_stdout,
                    ),
                    daemon=True,
                )
                processes.append(proc)
                proc.start()

            # inject external items and close the external stream
            driver = ExternalDriver(workflow)
            for pe_index, item in external_items:
                for gid, port, value in driver.route_item(pe_index, item):
                    driver_client.rpush(_queue_key(gid), (MSG_DATA, port, value))
            for gid in driver.eos_messages():
                driver_client.rpush(_queue_key(gid), (MSG_EOS, None, None))

            result = MappingResult(mapping=self.name, nprocs=total)
            counters: list[InstanceCounters] = []
            stdout_parts: list[str] = []
            errors: list[str] = []
            deadline = time.monotonic() + timeout
            done = 0
            while done < total and not errors:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MappingError(
                        f"redis mapping timed out after {timeout}s "
                        f"({done}/{total} instances finished)",
                        params={"timeout": timeout},
                    )
                popped = driver_client.blpop(
                    _COLLECTOR_KEY, timeout=min(remaining, 0.5)
                )
                if popped is None:
                    continue
                _key, msg = popped
                kind = msg[0]
                if kind == "result":
                    _, pe_name, port, value = msg
                    result.add_result(pe_name, port, value)
                elif kind == "stdout":
                    stdout_parts.append(msg[1])
                elif kind == "done":
                    counters.append(msg[1])
                    done += 1
                elif kind == "error":
                    errors.append(msg[2])

            # drain any trailing messages (error can follow its done)
            while True:
                popped = driver_client.blpop(_COLLECTOR_KEY, timeout=0.05)
                if popped is None:
                    break
                msg = popped[1]
                if msg[0] == "error":
                    errors.append(msg[2])
                elif msg[0] == "stdout":
                    stdout_parts.append(msg[1])
                elif msg[0] == "result":
                    result.add_result(msg[1], msg[2], msg[3])

            if errors:
                raise MappingError(
                    "worker process(es) failed during redis enactment",
                    details="\n---\n".join(errors),
                )

            for proc in processes:
                proc.join(timeout=5.0)
            result.stdout = "".join(stdout_parts)
            return self._finalize(result, counters, t0)
        finally:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for proc in processes:
                proc.join(timeout=1.0)
            server.shutdown()
