"""Mapping base classes and the shared instance execution loop.

A *mapping* enacts a concrete workflow on an execution substrate (paper
§2.1: Simple, Multi, MPI, Redis).  All parallel mappings share the same
per-instance behaviour — consume until end-of-stream, route writes, then
flush ``_postprocess`` — which lives in :class:`InstanceRunner` and talks
to the substrate through the narrow :class:`InstanceTransport` interface.
This keeps the four mappings semantically identical by construction: only
the message transport differs.
"""

from __future__ import annotations

import io
import sys
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.dataflow.core import PEOutput
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.monitoring import InstanceCounters, merge_counters
from repro.dataflow.partition import ConcreteWorkflow, Router, build_concrete_workflow
from repro.errors import MappingError, ValidationError

#: wire-format message kinds exchanged between instances
MSG_DATA = "data"
MSG_EOS = "eos"


@dataclass
class MappingResult:
    """What an enactment returns to the caller (and ultimately the client).

    ``results`` collects every write to an output port with no outgoing
    connection, keyed ``"PEname.port"`` — the stream's terminal products.
    ``stdout`` is the interleaved transcript of everything instances
    printed, which Laminar forwards from the Execution Engine back to the
    Client (Figure 9).
    """

    mapping: str
    nprocs: int
    results: dict[str, list[Any]] = field(default_factory=dict)
    stdout: str = ""
    counters: dict[str, dict[str, float]] = field(default_factory=dict)
    elapsed: float = 0.0

    def add_result(self, pe_name: str, port: str, value: Any) -> None:
        self.results.setdefault(f"{pe_name}.{port}", []).append(value)

    def total_consumed(self) -> int:
        return int(sum(c["consumed"] for c in self.counters.values()))

    def __repr__(self) -> str:
        return (
            f"<MappingResult {self.mapping} nprocs={self.nprocs} "
            f"results={ {k: len(v) for k, v in self.results.items()} } "
            f"elapsed={self.elapsed:.3f}s>"
        )


class InstanceTransport(ABC):
    """Substrate-specific message plumbing for a single instance."""

    @abstractmethod
    def send_data(self, dest_gid: int, port: str, value: Any) -> None:
        """Deliver one data unit to instance ``dest_gid``."""

    @abstractmethod
    def send_eos(self, dest_gid: int) -> None:
        """Deliver one end-of-stream token to instance ``dest_gid``."""

    @abstractmethod
    def recv(self) -> tuple[str, Any, Any]:
        """Blocking receive of the next message for *this* instance.

        Returns ``(MSG_DATA, port, value)`` or ``(MSG_EOS, None, None)``.
        """

    @abstractmethod
    def emit_result(self, pe_name: str, port: str, value: Any) -> None:
        """Report a terminal (result-port) write to the collector."""

    @abstractmethod
    def emit_stdout(self, text: str) -> None:
        """Forward captured stdout to the collector."""

    @abstractmethod
    def emit_done(self, counters: InstanceCounters) -> None:
        """Signal that this instance has finished."""


class _StdoutForwarder(io.TextIOBase):
    """A file-like object forwarding writes to the transport collector.

    Writes are buffered until a newline so that each forwarded message is
    a whole line — otherwise ``print``'s separate text and ``"\\n"`` writes
    from different worker processes interleave into garbage.
    """

    def __init__(self, transport: InstanceTransport) -> None:
        self._transport = transport
        self._pending = ""

    def write(self, text: str) -> int:  # type: ignore[override]
        self._pending += text
        while "\n" in self._pending:
            line, self._pending = self._pending.split("\n", 1)
            self._transport.emit_stdout(line + "\n")
        return len(text)

    def flush_remainder(self) -> None:
        """Forward any trailing partial line (called at instance end)."""
        if self._pending:
            self._transport.emit_stdout(self._pending)
            self._pending = ""

    def flush(self) -> None:  # pragma: no cover - line buffering only
        pass


class InstanceRunner:
    """Executes one PE instance to completion over a transport.

    Parameters
    ----------
    workflow:
        The concrete workflow (shared, read-only).
    gid:
        Which instance this runner embodies.
    transport:
        Substrate plumbing.
    produce_n:
        For producer instances: how many ``_process`` iterations to drive.
        ``None`` for consuming instances.
    expected_eos:
        Number of EOS tokens to await before finishing (already adjusted
        for external drivers by the mapping).
    capture_stdout:
        Redirect ``print`` output through the transport so the engine can
        return it to the client.
    """

    def __init__(
        self,
        workflow: ConcreteWorkflow,
        gid: int,
        transport: InstanceTransport,
        *,
        produce_n: int | None,
        expected_eos: int,
        capture_stdout: bool = True,
    ) -> None:
        self.workflow = workflow
        self.gid = gid
        self.transport = transport
        self.produce_n = produce_n
        self.expected_eos = expected_eos
        self.capture_stdout = capture_stdout
        info = workflow.instances[gid]
        self.pe = workflow.make_instance(gid)
        self.router = Router(workflow, info.pe_index)
        self.counters = InstanceCounters(pe_name=info.pe_name, instance=info.local_index)

    # ------------------------------------------------------------------
    def _dispatch(self, outputs: list[PEOutput]) -> None:
        for out in outputs:
            self.counters.produced += 1
            if self.router.is_result_port(out.port):
                self.transport.emit_result(
                    self.counters.pe_name, out.port, out.value
                )
                continue
            for dest_gid, dest_port, value in self.router.route(out):
                self.transport.send_data(dest_gid, dest_port, value)

    def _run_producer(self) -> None:
        for _ in range(self.produce_n or 0):
            t0 = time.perf_counter()
            outputs = self.pe.process({})
            self.counters.process_seconds += time.perf_counter() - t0
            self.counters.consumed += 1
            self._dispatch(outputs)

    def _run_consumer(self) -> None:
        eos_seen = 0
        while eos_seen < self.expected_eos:
            kind, port, value = self.transport.recv()
            if kind == MSG_EOS:
                eos_seen += 1
                continue
            if kind != MSG_DATA:  # pragma: no cover - defensive
                raise MappingError(f"unknown message kind {kind!r}")
            t0 = time.perf_counter()
            outputs = self.pe.process({port: value})
            self.counters.process_seconds += time.perf_counter() - t0
            self.counters.consumed += 1
            self._dispatch(outputs)

    def run(self) -> None:
        """Full instance lifecycle: preprocess, stream, postprocess, EOS."""
        original_stdout = sys.stdout
        forwarder: _StdoutForwarder | None = None
        if self.capture_stdout:
            forwarder = _StdoutForwarder(self.transport)
            sys.stdout = forwarder
        try:
            self.pe._log = lambda msg: self.transport.emit_stdout(msg + "\n")
            self.pe.preprocess()
            if self.produce_n is not None and not self.pe.inputconnections:
                self._run_producer()
            else:
                self._run_consumer()
            self._dispatch(self.pe.postprocess())
            for dest_gid, _port in self.router.eos_targets():
                self.transport.send_eos(dest_gid)
        finally:
            if forwarder is not None:
                forwarder.flush_remainder()
                sys.stdout = original_stdout
            self.transport.emit_done(self.counters)


# ----------------------------------------------------------------------
# Input normalisation shared by every mapping
# ----------------------------------------------------------------------
def normalize_input(
    workflow: ConcreteWorkflow, input: Any
) -> tuple[dict[int, int], list[tuple[int, dict[str, Any]]]]:
    """Split the user-level ``input`` argument into driver instructions.

    Returns ``(produce_counts, external_items)`` where

    * ``produce_counts`` maps producer-instance gid -> number of
      iterations that instance must drive (an ``input=N`` integer is split
      across the instances of each producer PE);
    * ``external_items`` is a list of ``(root_pe_index, {port: value})``
      deliveries for root PEs *with* input ports (the astrophysics-style
      ``input=[{"input": "resources/coordinates.txt"}]`` case).
    """
    roots = workflow.root_pe_indices()
    producer_roots = [i for i in roots if not workflow.pes[i].inputconnections]
    fed_roots = [i for i in roots if workflow.pes[i].inputconnections]

    produce_counts: dict[int, int] = {}
    external_items: list[tuple[int, dict[str, Any]]] = []

    if input is None or isinstance(input, int):
        iterations = 1 if input is None else int(input)
        if iterations < 0:
            raise ValidationError(
                f"input iteration count must be >= 0, got {iterations}",
                params={"input": input},
            )
        if fed_roots and not producer_roots:
            raise ValidationError(
                "this workflow's root PE expects data items; pass "
                "input=[{port: value}, ...] instead of an iteration count",
                params={"input": input},
            )
        for pe_index in producer_roots:
            gids = workflow.instances_of[pe_index]
            base, extra = divmod(iterations, len(gids))
            for j, gid in enumerate(gids):
                produce_counts[gid] = base + (1 if j < extra else 0)
    elif isinstance(input, (list, tuple)):
        if not fed_roots:
            raise ValidationError(
                "this workflow has no root PE with input ports; pass an "
                "integer iteration count instead of a list of items",
                params={"input": input},
            )
        for pe_index in producer_roots:
            for gid in workflow.instances_of[pe_index]:
                produce_counts[gid] = 1
        for item in input:
            if not isinstance(item, dict):
                raise ValidationError(
                    "list input items must be {port: value} dicts",
                    params={"item": item},
                )
            matched = False
            for pe_index in fed_roots:
                ports = workflow.pes[pe_index].inputconnections
                sub = {p: v for p, v in item.items() if p in ports}
                if sub:
                    external_items.append((pe_index, sub))
                    matched = True
            if not matched:
                raise ValidationError(
                    f"input item ports {sorted(item)} match no root PE",
                    params={"item": item},
                )
    else:
        raise ValidationError(
            f"unsupported input type {type(input).__name__}",
            params={"input": input},
        )
    return produce_counts, external_items


def effective_expected_eos(workflow: ConcreteWorkflow) -> dict[int, int]:
    """Expected EOS per instance, counting the external driver as one
    upstream source for every root PE that has input ports."""
    expected = dict(workflow.expected_eos)
    for pe_index in workflow.root_pe_indices():
        if workflow.pes[pe_index].inputconnections:
            for gid in workflow.instances_of[pe_index]:
                expected[gid] += 1
    return expected


class ExternalDriver:
    """Routes externally supplied items into root instances.

    Applies the root PE's own port groupings so that e.g. a group-by on
    the entry PE behaves identically whether data arrives from upstream
    PEs or from the client.
    """

    def __init__(self, workflow: ConcreteWorkflow) -> None:
        from repro.dataflow.grouping import make_grouping

        self.workflow = workflow
        self._groupings: dict[tuple[int, str], Any] = {}
        for pe_index in workflow.root_pe_indices():
            pe = workflow.pes[pe_index]
            for port, spec in pe.inputconnections.items():
                self._groupings[(pe_index, port)] = make_grouping(
                    spec.grouping
                ).new_state()

    def route_item(
        self, pe_index: int, item: dict[str, Any]
    ) -> list[tuple[int, str, Any]]:
        messages: list[tuple[int, str, Any]] = []
        gids = self.workflow.instances_of[pe_index]
        for port, value in item.items():
            grouping = self._groupings[(pe_index, port)]
            for local_idx in grouping.route(value, len(gids)):
                messages.append((gids[local_idx], port, value))
        return messages

    def eos_messages(self) -> list[int]:
        """One EOS per instance of every externally fed root PE."""
        gids: list[int] = []
        for pe_index in self.workflow.root_pe_indices():
            if self.workflow.pes[pe_index].inputconnections:
                gids.extend(self.workflow.instances_of[pe_index])
        return gids


class Mapping(ABC):
    """A workflow enactment strategy."""

    #: registry name, e.g. ``"simple"``
    name: str = "abstract"
    #: whether the mapping runs instances on separate OS processes
    parallel: bool = False

    @abstractmethod
    def execute(
        self,
        graph: WorkflowGraph,
        input: Any = None,
        nprocs: int | None = None,
        *,
        capture_stdout: bool = True,
        timeout: float = 300.0,
    ) -> MappingResult:
        """Enact ``graph`` and return the collected results."""

    def _build(
        self, graph: WorkflowGraph, nprocs: int | None
    ) -> ConcreteWorkflow:
        return build_concrete_workflow(graph, nprocs)

    @staticmethod
    def _finalize(
        result: MappingResult,
        counters: list[InstanceCounters],
        t0: float,
    ) -> MappingResult:
        result.counters = merge_counters(counters)
        result.elapsed = time.perf_counter() - t0
        return result
