"""Enactment mappings (paper §2.1 "Mappings").

dispel4py maps workflows onto execution systems: a Simple mapping for
sequential runs and parallel options (MPI, Redis, Multiprocessing) that
need no manual workflow modification.  :func:`run_workflow` is the single
entry point used by the Execution Engine.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings.base import (
    InstanceRunner,
    InstanceTransport,
    Mapping,
    MappingResult,
)
from repro.dataflow.mappings.mpi import MPIMapping
from repro.dataflow.mappings.multi import MultiMapping
from repro.dataflow.mappings.redisq import RedisMapping
from repro.dataflow.mappings.simple import SimpleMapping
from repro.errors import ValidationError

#: canonical mapping names (the client accepts these, upper or lower case)
MAPPINGS: dict[str, type[Mapping]] = {
    "simple": SimpleMapping,
    "multi": MultiMapping,
    "mpi": MPIMapping,
    "redis": RedisMapping,
}


def get_mapping(name: str) -> Mapping:
    """Resolve a mapping by name (``SIMPLE``/``MULTI``/``MPI``/``REDIS``)."""
    key = str(name).lower()
    if key not in MAPPINGS:
        raise ValidationError(
            f"unknown mapping {name!r}",
            params={"mapping": name},
            details=f"available: {sorted(MAPPINGS)}",
        )
    return MAPPINGS[key]()


def run_workflow(
    graph: WorkflowGraph,
    input: Any = None,
    mapping: str = "simple",
    nprocs: int | None = None,
    *,
    capture_stdout: bool = True,
    timeout: float = 300.0,
) -> MappingResult:
    """Enact ``graph`` with the named mapping.

    This is the function the serverless Execution Engine ultimately calls
    (the ``run()`` client function of §3.4.1 funnels here).
    """
    return get_mapping(mapping).execute(
        graph,
        input=input,
        nprocs=nprocs,
        capture_stdout=capture_stdout,
        timeout=timeout,
    )


__all__ = [
    "Mapping",
    "MappingResult",
    "InstanceRunner",
    "InstanceTransport",
    "SimpleMapping",
    "MultiMapping",
    "MPIMapping",
    "RedisMapping",
    "MAPPINGS",
    "get_mapping",
    "run_workflow",
]
