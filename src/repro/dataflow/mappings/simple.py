"""Sequential (``simple``) mapping — one process, one instance per PE.

This is dispel4py's default enactment: the concrete workflow degenerates
to the abstract workflow (every PE gets exactly one instance) and data
units are processed in FIFO order inside the calling process.  It is the
reference implementation the parallel mappings are tested against: for
deterministic workloads all mappings must produce the same multiset of
results.
"""

from __future__ import annotations

import contextlib
import io
import time
from collections import deque
from typing import Any

from repro.dataflow.core import PEOutput, ProcessingElement
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings.base import (
    ExternalDriver,
    Mapping,
    MappingResult,
    normalize_input,
)
from repro.dataflow.monitoring import InstanceCounters
from repro.dataflow.partition import ConcreteWorkflow, Router


class SimpleMapping(Mapping):
    """Run the workflow sequentially in the current process."""

    name = "simple"
    parallel = False

    def execute(
        self,
        graph: WorkflowGraph,
        input: Any = None,
        nprocs: int | None = None,
        *,
        capture_stdout: bool = True,
        timeout: float = 300.0,
    ) -> MappingResult:
        t0 = time.perf_counter()
        graph.validate()
        # the simple mapping always uses one instance per PE, whatever the
        # requested process count — matching dispel4py's behaviour.
        workflow = ConcreteWorkflow(graph, [1] * len(graph))
        produce_counts, external_items = normalize_input(workflow, input)

        result = MappingResult(mapping=self.name, nprocs=1)
        pending: deque[tuple[int, str, Any]] = deque()

        instances: dict[int, ProcessingElement] = {}
        routers: dict[int, Router] = {}
        counters: dict[int, InstanceCounters] = {}
        for info in workflow.instances:
            instances[info.gid] = workflow.make_instance(info.gid)
            routers[info.gid] = Router(workflow, info.pe_index)
            counters[info.gid] = InstanceCounters(
                pe_name=info.pe_name, instance=info.local_index
            )

        def dispatch(gid: int, outputs: list[PEOutput]) -> None:
            router = routers[gid]
            for out in outputs:
                counters[gid].produced += 1
                if router.is_result_port(out.port):
                    result.add_result(counters[gid].pe_name, out.port, out.value)
                    continue
                pending.extend(router.route(out))

        def step(gid: int, port: str, value: Any) -> None:
            pe = instances[gid]
            s0 = time.perf_counter()
            outputs = pe.process({port: value})
            counters[gid].process_seconds += time.perf_counter() - s0
            counters[gid].consumed += 1
            dispatch(gid, outputs)

        def drain() -> None:
            while pending:
                gid, port, value = pending.popleft()
                step(gid, port, value)

        buffer = io.StringIO()
        stack = contextlib.ExitStack()
        if capture_stdout:
            stack.enter_context(contextlib.redirect_stdout(buffer))
        with stack:
            for gid, pe in instances.items():
                pe._log = lambda msg: print(msg)
                pe.preprocess()

            # drive producers for their iteration share
            for gid, n in produce_counts.items():
                pe = instances[gid]
                for _ in range(n):
                    s0 = time.perf_counter()
                    outputs = pe.process({})
                    counters[gid].process_seconds += time.perf_counter() - s0
                    counters[gid].consumed += 1
                    dispatch(gid, outputs)
                drain()

            # deliver externally supplied items (astrophysics-style input)
            driver = ExternalDriver(workflow)
            for pe_index, item in external_items:
                for gid, port, value in driver.route_item(pe_index, item):
                    pending.append((gid, port, value))
            drain()

            # flush stateful PEs in topological order so downstream
            # postprocess sees everything its upstream emitted.
            topo_gids = [
                gid
                for pe_index in range(len(workflow.pes))
                for gid in workflow.instances_of[pe_index]
            ]
            for gid in topo_gids:
                dispatch(gid, instances[gid].postprocess())
                drain()

        result.stdout = buffer.getvalue()
        return self._finalize(result, list(counters.values()), t0)
