"""Multiprocessing (``multi``) mapping — one OS process per PE instance.

The concrete workflow of Figure 1 is realized literally: each PE instance
runs in a dedicated process; data units travel over per-instance
``multiprocessing`` queues.  Workers receive the concrete workflow as a
cloudpickle blob — the same serialization path the serverless Execution
Engine uses — so the mapping works regardless of the start method and
faithfully emulates shipping code to ephemeral workers.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import Any

import cloudpickle

from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings.base import (
    MSG_DATA,
    MSG_EOS,
    ExternalDriver,
    InstanceRunner,
    InstanceTransport,
    Mapping,
    MappingResult,
    effective_expected_eos,
    normalize_input,
)
from repro.dataflow.monitoring import InstanceCounters
from repro.errors import MappingError


class _MultiTransport(InstanceTransport):
    """Queue plumbing for one worker process."""

    def __init__(
        self,
        gid: int,
        inboxes: dict[int, "mp.queues.Queue"],
        collector: "mp.queues.Queue",
    ) -> None:
        self.gid = gid
        self.inboxes = inboxes
        self.collector = collector

    def send_data(self, dest_gid: int, port: str, value: Any) -> None:
        self.inboxes[dest_gid].put((MSG_DATA, port, value))

    def send_eos(self, dest_gid: int) -> None:
        self.inboxes[dest_gid].put((MSG_EOS, None, None))

    def recv(self) -> tuple[str, Any, Any]:
        return self.inboxes[self.gid].get()

    def emit_result(self, pe_name: str, port: str, value: Any) -> None:
        self.collector.put(("result", pe_name, port, value))

    def emit_stdout(self, text: str) -> None:
        self.collector.put(("stdout", text))

    def emit_done(self, counters: InstanceCounters) -> None:
        self.collector.put(("done", counters))


def _worker(
    blob: bytes,
    gid: int,
    produce_n: int | None,
    expected_eos: int,
    inboxes: dict[int, "mp.queues.Queue"],
    collector: "mp.queues.Queue",
    capture_stdout: bool,
) -> None:
    """Worker entry point (module-level for spawn-safety)."""
    transport = _MultiTransport(gid, inboxes, collector)
    try:
        workflow = cloudpickle.loads(blob)
        InstanceRunner(
            workflow,
            gid,
            transport,
            produce_n=produce_n,
            expected_eos=expected_eos,
            capture_stdout=capture_stdout,
        ).run()
    except Exception:
        collector.put(("error", gid, traceback.format_exc()))


class MultiMapping(Mapping):
    """Parallel enactment over ``multiprocessing`` queues."""

    name = "multi"
    parallel = True

    def execute(
        self,
        graph: WorkflowGraph,
        input: Any = None,
        nprocs: int | None = None,
        *,
        capture_stdout: bool = True,
        timeout: float = 300.0,
    ) -> MappingResult:
        t0 = time.perf_counter()
        workflow = self._build(graph, nprocs)
        produce_counts, external_items = normalize_input(workflow, input)
        expected = effective_expected_eos(workflow)
        total = workflow.total_instances

        ctx = mp.get_context()
        inboxes: dict[int, Any] = {info.gid: ctx.Queue() for info in workflow.instances}
        collector = ctx.Queue()
        blob = cloudpickle.dumps(workflow)

        processes: list[mp.Process] = []
        for info in workflow.instances:
            proc = ctx.Process(
                target=_worker,
                args=(
                    blob,
                    info.gid,
                    produce_counts.get(info.gid),
                    expected[info.gid],
                    inboxes,
                    collector,
                    capture_stdout,
                ),
                daemon=True,
            )
            processes.append(proc)
            proc.start()

        # drive externally supplied items, then close the external stream
        driver = ExternalDriver(workflow)
        for pe_index, item in external_items:
            for gid, port, value in driver.route_item(pe_index, item):
                inboxes[gid].put((MSG_DATA, port, value))
        for gid in driver.eos_messages():
            inboxes[gid].put((MSG_EOS, None, None))

        result = MappingResult(mapping=self.name, nprocs=total)
        counters: list[InstanceCounters] = []
        stdout_parts: list[str] = []
        errors: list[str] = []

        def consume(msg: tuple) -> int:
            """Process one collector message; returns 1 for 'done'."""
            kind = msg[0]
            if kind == "result":
                _, pe_name, port, value = msg
                result.add_result(pe_name, port, value)
            elif kind == "stdout":
                stdout_parts.append(msg[1])
            elif kind == "done":
                counters.append(msg[1])
                return 1
            elif kind == "error":
                errors.append(msg[2])
            return 0

        deadline = time.monotonic() + timeout
        done = 0
        while done < total and not errors:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._cleanup(processes)
                raise MappingError(
                    f"multi mapping timed out after {timeout}s "
                    f"({done}/{total} instances finished)",
                    params={"timeout": timeout},
                )
            try:
                msg = collector.get(timeout=min(remaining, 0.5))
            except queue_mod.Empty:
                continue
            done += consume(msg)

        if not errors:
            for proc in processes:
                proc.join(timeout=5.0)
        # drain trailing messages (a worker's "error" can legitimately
        # arrive after its "done" because the runner emits done in finally)
        while True:
            try:
                consume(collector.get_nowait())
            except queue_mod.Empty:
                break
        self._cleanup(processes)

        if errors:
            raise MappingError(
                "worker process(es) failed during enactment",
                details="\n---\n".join(errors),
            )

        result.stdout = "".join(stdout_parts)
        return self._finalize(result, counters, t0)

    @staticmethod
    def _cleanup(processes: list[mp.Process]) -> None:
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=1.0)
