"""MPI mapping — one rank per PE instance over the simulated communicator.

Mirrors dispel4py's MPI enactment: rank *i* hosts instance *i* of the
concrete workflow; stream data travels as tagged point-to-point messages;
rank 0 additionally plays the driver (injecting externally supplied input
items) and gathers results/stdout/counters from all ranks at the end via
a collective ``gather`` — the same communication pattern a real
``mpiexec`` run of dispel4py uses.

Hardware substitution (see DESIGN.md): the communicator is
:mod:`repro.mpisim`, message-passing over multiprocessing queues, because
no MPI middleware is available offline.  Ranks are real OS processes.
"""

from __future__ import annotations

import time
from typing import Any

import cloudpickle

from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings.base import (
    MSG_DATA,
    MSG_EOS,
    ExternalDriver,
    InstanceRunner,
    InstanceTransport,
    Mapping,
    MappingResult,
    effective_expected_eos,
    normalize_input,
)
from repro.dataflow.monitoring import InstanceCounters
from repro.errors import MappingError
from repro.mpisim import Communicator, mpi_run

#: tag carrying stream data/EOS between instances
TAG_STREAM = 7


class _MPITransport(InstanceTransport):
    """Stream transport over the simulated communicator.

    Results, stdout and counters are accumulated locally and shipped to
    rank 0 in one final ``gather`` — minimizing message volume, as the
    mpi4py guide recommends for small-object communication.
    """

    def __init__(self, comm: Communicator, gid: int) -> None:
        self.comm = comm
        self.gid = gid
        self.results: list[tuple[str, str, Any]] = []
        self.stdout_parts: list[str] = []
        self.counters: InstanceCounters | None = None

    def send_data(self, dest_gid: int, port: str, value: Any) -> None:
        self.comm.send((MSG_DATA, port, value), dest=dest_gid, tag=TAG_STREAM)

    def send_eos(self, dest_gid: int) -> None:
        self.comm.send((MSG_EOS, None, None), dest=dest_gid, tag=TAG_STREAM)

    def recv(self) -> tuple[str, Any, Any]:
        return self.comm.recv(tag=TAG_STREAM)

    def emit_result(self, pe_name: str, port: str, value: Any) -> None:
        self.results.append((pe_name, port, value))

    def emit_stdout(self, text: str) -> None:
        self.stdout_parts.append(text)

    def emit_done(self, counters: InstanceCounters) -> None:
        self.counters = counters


def _mpi_workflow_main(
    comm: Communicator,
    blob: bytes,
    produce_counts: dict[int, int],
    expected: dict[int, int],
    external_messages: list[tuple[int, str, Any]],
    external_eos: list[int],
    capture_stdout: bool,
) -> Any:
    """Per-rank body of the MPI enactment."""
    workflow = cloudpickle.loads(blob)
    comm.bcast("start", root=0)  # synchronize before streaming begins
    gid = comm.rank
    transport = _MPITransport(comm, gid)
    if comm.rank == 0:
        for dest, port, value in external_messages:
            comm.send((MSG_DATA, port, value), dest=dest, tag=TAG_STREAM)
        for dest in external_eos:
            comm.send((MSG_EOS, None, None), dest=dest, tag=TAG_STREAM)
    InstanceRunner(
        workflow,
        gid,
        transport,
        produce_n=produce_counts.get(gid),
        expected_eos=expected[gid],
        capture_stdout=capture_stdout,
    ).run()
    payload = (transport.results, "".join(transport.stdout_parts), transport.counters)
    gathered = comm.gather(payload, root=0)
    comm.barrier()
    return gathered


class MPIMapping(Mapping):
    """Parallel enactment over the simulated MPI communicator."""

    name = "mpi"
    parallel = True

    def execute(
        self,
        graph: WorkflowGraph,
        input: Any = None,
        nprocs: int | None = None,
        *,
        capture_stdout: bool = True,
        timeout: float = 300.0,
    ) -> MappingResult:
        t0 = time.perf_counter()
        workflow = self._build(graph, nprocs)
        produce_counts, external_items = normalize_input(workflow, input)
        expected = effective_expected_eos(workflow)

        driver = ExternalDriver(workflow)
        external_messages: list[tuple[int, str, Any]] = []
        for pe_index, item in external_items:
            external_messages.extend(driver.route_item(pe_index, item))
        external_eos = driver.eos_messages()

        ranks = workflow.total_instances
        per_rank = mpi_run(
            ranks,
            _mpi_workflow_main,
            cloudpickle.dumps(workflow),
            produce_counts,
            expected,
            external_messages,
            external_eos,
            capture_stdout,
            timeout=timeout,
        )
        gathered = per_rank[0]
        if gathered is None:  # pragma: no cover - defensive
            raise MappingError("MPI rank 0 returned no gathered payload")

        result = MappingResult(mapping=self.name, nprocs=ranks)
        counters: list[InstanceCounters] = []
        stdout_parts: list[str] = []
        for results, stdout_text, rank_counters in gathered:
            for pe_name, port, value in results:
                result.add_result(pe_name, port, value)
            stdout_parts.append(stdout_text)
            if rank_counters is not None:
                counters.append(rank_counters)
        result.stdout = "".join(stdout_parts)
        return self._finalize(result, counters, t0)
