"""Processing Elements — the fundamental dataflow units (paper §2.1).

A Processing Element (PE) is a computational task within a workflow graph.
PEs connect through named input and output ports for stream-based data
flow.  They can be *stateful* (retaining previous inputs in instance
attributes, like the ``CountWords`` PE of Listing 2) or *stateless*
(focusing on the current data, like ``NumberProducer`` of Listing 1).

Four PE flavours mirror dispel4py's taxonomy:

=============  =======================  ==========================
Class          Ports                    ``_process`` signature
=============  =======================  ==========================
GenericPE      user-defined             ``_process(self, inputs)``
ProducerPE     one output               ``_process(self)``
IterativePE    one input, one output    ``_process(self, data)``
ConsumerPE     one input                ``_process(self, data)``
=============  =======================  ==========================

``_process`` may *return* a value — routed to the default output port — or
call :meth:`ProcessingElement.write` any number of times to emit to named
ports.  Both styles may be mixed, exactly as in dispel4py.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import GraphError

#: Conventional default port names used by the convenience PE types.
DEFAULT_INPUT = "input"
DEFAULT_OUTPUT = "output"


def _silent_log(message: str) -> None:
    """Default log sink; module-level so PEs stay stdlib-picklable."""


@dataclass(frozen=True)
class PortSpec:
    """Declaration of a single input or output port on a PE.

    ``grouping`` only applies to input ports; it is the raw grouping
    declaration (``None``, a list of tuple indices, ``"all"`` or
    ``"global"``) as written by the user — resolution into a routing object
    happens at partition time (see :mod:`repro.dataflow.grouping`).
    """

    name: str
    is_input: bool
    grouping: Any = None


@dataclass
class PEOutput:
    """A single (port, value) emission produced by one ``process`` call."""

    port: str
    value: Any


class ProcessingElement:
    """Base class of every PE.

    Subclasses declare ports in ``__init__`` via :meth:`_add_input` /
    :meth:`_add_output` and implement ``_process``.  The enactment layer
    never calls ``_process`` directly; it calls :meth:`process`, which
    collects explicit :meth:`write` calls *and* the return value into a
    list of :class:`PEOutput` records.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self.inputconnections: dict[str, PortSpec] = {}
        self.outputconnections: dict[str, PortSpec] = {}
        #: number of parallel instances requested for this PE (hint used by
        #: the partitioner; the total process budget still dominates).
        self.numprocesses: int = 1
        #: assigned during enactment: which instance of the PE this object is
        self.instance_id: int | None = None
        #: buffer of writes performed during the current ``process`` call
        self._written: list[PEOutput] = []
        #: logger callback injected by the enactment layer
        self._log: Callable[[str], None] = _silent_log

    # ------------------------------------------------------------------
    # Port declaration API (matches dispel4py naming)
    # ------------------------------------------------------------------
    def _add_input(self, name: str, grouping: Any = None) -> None:
        """Declare an input port.

        ``grouping`` may be ``None`` (shuffle), a list of indices (group-by
        on those tuple elements, MapReduce-style), ``"global"`` (all data to
        a single instance) or ``"all"`` (broadcast to every instance).
        """
        if name in self.inputconnections:
            raise GraphError(
                f"duplicate input port {name!r} on PE {self.name!r}",
                params={"port": name, "pe": self.name},
            )
        self.inputconnections[name] = PortSpec(name, True, grouping)

    def _add_output(self, name: str) -> None:
        """Declare an output port."""
        if name in self.outputconnections:
            raise GraphError(
                f"duplicate output port {name!r} on PE {self.name!r}",
                params={"port": name, "pe": self.name},
            )
        self.outputconnections[name] = PortSpec(name, False)

    # ------------------------------------------------------------------
    # Emission API
    # ------------------------------------------------------------------
    def write(self, port: str, value: Any) -> None:
        """Emit ``value`` on ``port`` from inside ``_process``."""
        if port not in self.outputconnections:
            raise GraphError(
                f"PE {self.name!r} has no output port {port!r}",
                params={"port": port, "pe": self.name},
            )
        self._written.append(PEOutput(port, value))

    def log(self, message: str) -> None:
        """Log a message through the enactment layer (visible to clients)."""
        self._log(f"{self.name}{'' if self.instance_id is None else self.instance_id}: {message}")

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def _preprocess(self) -> None:
        """Called once per instance before any data arrives."""

    def _postprocess(self) -> None:
        """Called once per instance after all input streams finished.

        Stateful PEs may :meth:`write` their accumulated results here.
        """

    def _process(self, *args: Any, **kwargs: Any) -> Any:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Enactment entry points
    # ------------------------------------------------------------------
    def _collect(self, returned: Any) -> list[PEOutput]:
        outputs = list(self._written)
        self._written = []
        if returned is not None:
            port = self._default_output()
            if port is None:
                raise GraphError(
                    f"PE {self.name!r} returned a value from _process but "
                    "declares no output port",
                    params={"pe": self.name},
                )
            outputs.append(PEOutput(port, returned))
        return outputs

    def _default_output(self) -> str | None:
        if DEFAULT_OUTPUT in self.outputconnections:
            return DEFAULT_OUTPUT
        if len(self.outputconnections) == 1:
            return next(iter(self.outputconnections))
        return None

    def process(self, inputs: dict[str, Any]) -> list[PEOutput]:
        """Run one unit of computation on ``inputs``.

        Subclass flavours adapt the call signature of ``_process``; the
        default (GenericPE-style) passes the inputs dict straight through.
        """
        self._written = []
        returned = self._process(inputs)
        return self._collect(returned)

    def postprocess(self) -> list[PEOutput]:
        """Run the ``_postprocess`` hook, collecting any final writes."""
        self._written = []
        self._postprocess()
        return self._collect(None)

    def preprocess(self) -> None:
        self._preprocess()

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------
    def clone(self) -> "ProcessingElement":
        """Deep copy used to create independent instances of a PE."""
        return copy.deepcopy(self)

    @property
    def is_source(self) -> bool:
        """True when the PE declares no input ports (it drives the stream)."""
        return not self.inputconnections

    def port_names(self, inputs: bool) -> Iterable[str]:
        return (self.inputconnections if inputs else self.outputconnections).keys()

    def __repr__(self) -> str:
        ins = ",".join(self.inputconnections)
        outs = ",".join(self.outputconnections)
        return f"<{type(self).__name__} {self.name} in=[{ins}] out=[{outs}]>"


class GenericPE(ProcessingElement):
    """Custom-defined PE with any number of ports.

    ``_process(self, inputs)`` receives a dict mapping input port name to
    the arriving data unit.
    """


class ProducerPE(ProcessingElement):
    """PE with a single output port; it originates the stream.

    ``_process(self)`` takes no data argument; the enactment layer invokes
    it once per requested iteration.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_output(DEFAULT_OUTPUT)

    def process(self, inputs: dict[str, Any]) -> list[PEOutput]:
        self._written = []
        returned = self._process()
        return self._collect(returned)


class IterativePE(ProcessingElement):
    """PE with one input and one output port.

    ``_process(self, data)`` receives the single arriving data unit.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_input(DEFAULT_INPUT)
        self._add_output(DEFAULT_OUTPUT)

    def process(self, inputs: dict[str, Any]) -> list[PEOutput]:
        self._written = []
        returned = self._process(inputs[DEFAULT_INPUT])
        return self._collect(returned)


class ConsumerPE(ProcessingElement):
    """PE with one input port and no outputs; it terminates the stream.

    ``_process(self, data)`` receives the single arriving data unit.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_input(DEFAULT_INPUT)

    def process(self, inputs: dict[str, Any]) -> list[PEOutput]:
        self._written = []
        returned = self._process(inputs[DEFAULT_INPUT])
        if returned is not None:
            raise GraphError(
                f"ConsumerPE {self.name!r} returned a value but has no "
                "output port",
                params={"pe": self.name},
            )
        return self._collect(None)


@dataclass
class FunctionPE:
    """Helper describing a plain function lifted into an IterativePE.

    Used by :func:`make_iterative_pe` and by the registry examples; keeping
    it a separate dataclass makes the lifted PE picklable.
    """

    func: Callable[[Any], Any]
    name: str = field(default="FunctionPE")


def make_iterative_pe(func: Callable[[Any], Any], name: str | None = None) -> IterativePE:
    """Lift a plain ``f(data) -> result`` function into an IterativePE.

    This mirrors the FaaS-style single-function deployment the paper
    mentions (§3.4.1: users may run workflows consisting of a single PE,
    "similar to traditional FaaS frameworks").
    """

    class _Lifted(IterativePE):
        def __init__(self) -> None:
            super().__init__(name or getattr(func, "__name__", "FunctionPE"))
            self._func = func

        def _process(self, data: Any) -> Any:
            return self._func(data)

    return _Lifted()
