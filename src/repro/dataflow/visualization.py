"""Workflow rendering — the green/blue graphs of Figure 1.

Renders abstract workflows (what the user describes) and concrete
workflows (what enactment builds) either as Graphviz DOT text or as a
compact ASCII diagram for terminals.  Purely textual; no plotting
dependencies.
"""

from __future__ import annotations

from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.grouping import make_grouping
from repro.dataflow.partition import ConcreteWorkflow


def abstract_to_dot(graph: WorkflowGraph) -> str:
    """DOT rendering of the abstract workflow (Figure 1's green graph)."""
    names = graph.unique_names()
    lines = [
        "digraph abstract {",
        "  rankdir=LR;",
        '  node [shape=box, style=filled, fillcolor="palegreen"];',
    ]
    for pe in graph:
        lines.append(f'  "{names[id(pe)]}";')
    for conn in graph.get_connections():
        label = f"{conn.source_port}->{conn.dest_port}"
        decl = conn.dest.inputconnections[conn.dest_port].grouping
        if decl is not None:
            label += f" [{make_grouping(decl).label}]"
        lines.append(
            f'  "{names[id(conn.source)]}" -> "{names[id(conn.dest)]}" '
            f'[label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def concrete_to_dot(workflow: ConcreteWorkflow) -> str:
    """DOT rendering of the concrete workflow (Figure 1's blue graph).

    Each node is one PE *instance*; edges connect instances according to
    the routing tables (group-by edges fan out to every possible
    destination, matching how the figure draws instance-level links).
    """
    lines = [
        "digraph concrete {",
        "  rankdir=LR;",
        '  node [shape=box, style=filled, fillcolor="lightblue"];',
    ]
    for info in workflow.instances:
        lines.append(f'  "{info.pe_name}[{info.local_index}]" /* gid={info.gid} */;')
    label_of = {info.gid: f"{info.pe_name}[{info.local_index}]" for info in workflow.instances}
    for (src_pe, src_port), targets in sorted(workflow.routes.items()):
        for src_gid in workflow.instances_of[src_pe]:
            for target in targets:
                for dest_gid in target.dest_gids:
                    lines.append(
                        f'  "{label_of[src_gid]}" -> "{label_of[dest_gid]}" '
                        f'[label="{src_port}->{target.dest_port}"];'
                    )
    lines.append("}")
    return "\n".join(lines)


def abstract_to_ascii(graph: WorkflowGraph) -> str:
    """One-line-per-edge ASCII rendering of the abstract workflow."""
    names = graph.unique_names()
    lines = [f"abstract workflow '{graph.name}':"]
    order = graph.topological_order()
    for pe in order:
        out = graph.outgoing(pe)
        if not out:
            lines.append(f"  {names[id(pe)]} (sink)")
            continue
        for conn in out:
            decl = conn.dest.inputconnections[conn.dest_port].grouping
            grouping = "" if decl is None else f" ~{make_grouping(decl).label}~"
            lines.append(
                f"  {names[id(pe)]}.{conn.source_port} --> "
                f"{names[id(conn.dest)]}.{conn.dest_port}{grouping}"
            )
    return "\n".join(lines)


def concrete_to_ascii(workflow: ConcreteWorkflow) -> str:
    """Instance-count summary like the Figure 1 caption.

    Example output::

        concrete workflow (5 processes):
          NumberProducer  x1  [gid 0]
          IsPrime         x2  [gid 1-2]
          PrintPrime      x2  [gid 3-4]
    """
    lines = [f"concrete workflow ({workflow.total_instances} processes):"]
    width = max(len(name) for name in workflow.pe_names) if workflow.pe_names else 0
    for pe_index, name in enumerate(workflow.pe_names):
        gids = workflow.instances_of[pe_index]
        span = f"gid {gids[0]}" if len(gids) == 1 else f"gid {gids[0]}-{gids[-1]}"
        lines.append(f"  {name:<{width}}  x{len(gids)}  [{span}]")
    return "\n".join(lines)
