"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``serve``   — start a Laminar server over real HTTP (optionally SQLite
  backed), the deployment entry point.
* ``demo``    — run the IsPrime showcase end to end in one process.
* ``eval``    — regenerate a paper table (5, 6 or 7) on the terminal.
* ``search``  — query a registry from the terminal (text/semantic/code),
  served from the per-user vector index.
* ``register`` — register a PE or workflow through the typed v1 write
  endpoint (idempotency keys, conditional writes, ``--bulk`` batches).
* ``delete``  — remove a PE or workflow through the v1 delete endpoint.
* ``ingest``  — ingest a whole source tree as a background job
  (``POST /v1/registry/{user}/ingest``): walk, AST-chunk, embed and
  bulk-register every function/class, streaming progress; with
  ``--server`` the tree is packed into a tarball and uploaded to a
  running deployment.
* ``jobs``    — list, inspect or cancel background jobs over the
  ``/v1/jobs`` routes.
* ``stats``   — per-user registry counts via the DAO's owned-id
  projections (no record materialization, no model loading); add
  ``--shards`` for index shard occupancy.
* ``lint``    — run the repo-specific invariant linter
  (:mod:`repro.analysis`) over files/directories; ``--json`` for
  machine-readable findings, ``--list-rules`` for the rule table.
* ``endpoints`` — print the server's API table (paper Table 3 + extensions).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Laminar reproduction — serverless stream framework "
        "with semantic code search (WORKS/SC 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve Laminar over HTTP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8075)
    serve.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    serve.add_argument(
        "--no-fit", action="store_true",
        help="skip model IDF fitting (faster startup, weaker search)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="enable the scatter/gather 'scatter' search backend over N "
        "in-process shard workers (each with its own index and lock); "
        "0 disables it",
    )

    demo = sub.add_parser("demo", help="run the IsPrime showcase")
    demo.add_argument("--input", type=int, default=10, help="iterations")
    demo.add_argument(
        "--mapping", default="MULTI",
        choices=["SIMPLE", "MULTI", "MPI", "REDIS"],
    )
    demo.add_argument("--num", type=int, default=5, help="process count")

    evaluate = sub.add_parser("eval", help="regenerate a paper table")
    evaluate.add_argument("table", type=int, choices=[5, 6, 7])

    search = sub.add_parser(
        "search",
        help="search a registry from the terminal (index-served)",
    )
    search.add_argument("query", help="the search string (no '/' characters)")
    search.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    search.add_argument("--user", default="cli", help="registry user name")
    search.add_argument("--password", default="cli", help="registry password")
    search.add_argument(
        "--type", dest="search_type", default="both",
        choices=["pe", "workflow", "both"],
    )
    search.add_argument(
        "--query-type", dest="query_type", default="semantic",
        choices=["text", "semantic", "code", "hybrid"],
    )
    search.add_argument(
        "-k", "--k", dest="k", type=int, default=None, help="max results"
    )
    search.add_argument(
        "--backend", default="exact",
        help="index backend name (see `repro endpoints` /v1/backends; "
        "'exact' is the reference, 'ivf' the approximate IVF-flat "
        "engine, 'hnsw' the graph-navigation engine)",
    )
    search.add_argument(
        "--limit", type=int, default=None,
        help="page size over the ranked hits (v1 cursor pagination)",
    )
    search.add_argument(
        "--cursor", default=None,
        help="opaque resume token from a previous page's nextCursor",
    )
    search.add_argument(
        "--json", action="store_true",
        help="emit the v1 SearchResponse envelope verbatim (one JSON "
        "object on stdout)",
    )
    search.add_argument(
        "--no-fit", action="store_true",
        help="skip model IDF fitting (faster startup, weaker search)",
    )

    register = sub.add_parser(
        "register",
        help="register a PE or workflow via the v1 write endpoint",
    )
    register.add_argument(
        "name", nargs="?", default=None,
        help="PE name / workflow entry point (omit with --bulk)",
    )
    register.add_argument(
        "--kind", default="pe", choices=["pe", "workflow"],
        help="what to register (--bulk is PE-only)",
    )
    register.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    register.add_argument("--user", default="cli", help="registry user name")
    register.add_argument("--password", default="cli", help="registry password")
    register.add_argument(
        "--code", default=None, help="the code payload (peCode/workflowCode)"
    )
    register.add_argument(
        "--code-file", default=None,
        help="read the code payload from a file (also used as the "
        "source text for search/summarization unless --code is given)",
    )
    register.add_argument("--description", default="", help="description text")
    register.add_argument(
        "--if-version", dest="if_version", type=int, default=None,
        help="conditional write: current record revision (0 = create-only); "
        "with --bulk it pins the registry mutation counter instead; "
        "mismatch is a 412",
    )
    register.add_argument(
        "--idempotency-key", dest="idempotency_key", default=None,
        help="retry-safe write: replaying the same key returns the stored "
        "response verbatim",
    )
    register.add_argument(
        "--bulk", default=None, metavar="FILE.json",
        help="bulk-register PEs: a JSON array of item objects "
        "(peName/peCode/description/...) sent to /v1/registry/{user}/pes:bulk",
    )
    register.add_argument(
        "--json", action="store_true",
        help="emit the v1 WriteResponse envelope verbatim",
    )
    register.add_argument(
        "--no-fit", action="store_true",
        help="skip model IDF fitting (faster startup, weaker search)",
    )

    delete = sub.add_parser(
        "delete", help="remove a PE or workflow via the v1 delete endpoint"
    )
    delete.add_argument("name", help="PE name / workflow entry point")
    delete.add_argument(
        "--kind", default="pe", choices=["pe", "workflow"],
    )
    delete.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    delete.add_argument("--user", default="cli", help="registry user name")
    delete.add_argument("--password", default="cli", help="registry password")
    delete.add_argument(
        "--if-version", dest="if_version", type=int, default=None,
        help="conditional delete: the record's current revision",
    )
    delete.add_argument(
        "--idempotency-key", dest="idempotency_key", default=None,
        help="retry-safe delete (replay returns the stored response)",
    )
    delete.add_argument(
        "--json", action="store_true",
        help="emit the v1 WriteResponse envelope verbatim",
    )
    delete.add_argument(
        "--no-fit", action="store_true",
        help="skip model IDF fitting (faster startup, weaker search)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="ingest a source tree into the registry as a background job",
    )
    ingest.add_argument("path", help="directory to walk, chunk and register")
    ingest.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    ingest.add_argument(
        "--server", default=None, metavar="URL",
        help="ingest into a running deployment instead: the tree is "
        "packed into a .tar.gz and uploaded as the request's archive",
    )
    ingest.add_argument("--user", default="cli", help="registry user name")
    ingest.add_argument("--password", default="cli", help="registry password")
    ingest.add_argument(
        "--batch-size", dest="batch_size", type=int, default=None,
        help="chunks per bulk-registration batch (searches stay live "
        "between batches)",
    )
    ingest.add_argument(
        "--max-file-bytes", dest="max_file_bytes", type=int, default=None,
        help="skip files larger than this many bytes",
    )
    ingest.add_argument(
        "--max-chunk-lines", dest="max_chunk_lines", type=int, default=None,
        help="re-split chunks longer than this many lines into windows",
    )
    ingest.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit instead of streaming progress "
        "(only meaningful with --server: an in-process job dies with "
        "the command)",
    )
    ingest.add_argument(
        "--json", action="store_true",
        help="emit the final job snapshot as one JSON object",
    )
    ingest.add_argument(
        "--no-fit", action="store_true",
        help="skip model IDF fitting (faster startup, weaker search)",
    )

    jobs = sub.add_parser(
        "jobs",
        help="list, inspect or cancel background jobs (/v1/jobs); most "
        "useful with --server against a running deployment",
    )
    jobs.add_argument(
        "job_id", nargs="?", default=None,
        help="show one job (omit to list)",
    )
    jobs.add_argument(
        "--cancel", action="store_true",
        help="request cancellation of the given job id",
    )
    jobs.add_argument(
        "--state", default=None,
        choices=["queued", "running", "succeeded", "failed", "cancelled"],
        help="filter the listing by state",
    )
    jobs.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    jobs.add_argument(
        "--server", default=None, metavar="URL",
        help="talk to a running deployment instead of an in-process server",
    )
    jobs.add_argument("--user", default="cli", help="registry user name")
    jobs.add_argument("--password", default="cli", help="registry password")
    jobs.add_argument(
        "--json", action="store_true",
        help="emit the response envelope verbatim",
    )

    stats = sub.add_parser(
        "stats",
        help="registry ownership counts (cheap) and, with --shards, "
        "index shard occupancy",
    )
    stats.add_argument(
        "--db", default=None, help="SQLite registry path (default: in-memory)"
    )
    stats.add_argument(
        "--shards", action="store_true",
        help="also build the vector index and report shard occupancy and "
        "persistence freshness (loads persisted slabs when fresh, else "
        "reads the whole registry, like server startup)",
    )
    stats.add_argument(
        "--persist", action="store_true",
        help="with --shards: save the (re)built slabs back to the "
        "registry so the next cold start skips the rebuild",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific invariant linter (repro.analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable output: {findings: [...], errors: [...]}",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )

    sub.add_parser("endpoints", help="print the API endpoint table")
    return parser


def _build_server(db: str | None, fit: bool, shards: int = 0):
    from repro.ml.bundle import ModelBundle
    from repro.registry.dao import SqliteDAO
    from repro.server import LaminarServer

    dao = SqliteDAO(db) if db else None
    return LaminarServer(
        dao=dao,
        models=ModelBundle.default(fit=fit),
        scatter_shards=shards,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.http import serve_http

    server = _build_server(
        args.db, fit=not args.no_fit, shards=getattr(args, "shards", 0)
    )
    handle = serve_http(server, host=args.host, port=args.port)
    scatter = (
        f"; scatter over {args.shards} shard workers" if args.shards else ""
    )
    print(f"Laminar serving on {handle.url}  (registry: "
          f"{args.db or 'in-memory'}{scatter}; Ctrl-C to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
        handle.shutdown()
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.client import LaminarClient, local_stack
    from repro.workflows.isprime import build_isprime_graph

    client = LaminarClient(local_stack())
    client.register("demo", "demo")
    client.login("demo", "demo")
    client.register_Workflow(
        build_isprime_graph(), "isPrime",
        "Workflow that prints random prime numbers",
    )
    print(f"running isPrime: input={args.input} mapping={args.mapping} "
          f"num={args.num}\n")
    outcome = client.run(
        "isPrime", input=args.input, process=args.mapping,
        args={"num": args.num},
    )
    print("\n" + outcome.summary())
    return 0 if outcome.status == "ok" else 1


def cmd_eval(args: argparse.Namespace) -> int:
    if args.table == 5:
        from repro.evalharness.experiments import run_table5

        result = run_table5()
    elif args.table == 6:
        from repro.evalharness.experiments import run_table6

        result = run_table6()
    else:
        from repro.evalharness.experiments import run_table7

        result = run_table7()
    print(result["table"])
    print()
    ok = True
    for label, passed in result["checks"].items():
        print(f"  [{'OK' if passed else 'MISS'}] {label}")
        ok = ok and passed
    return 0 if ok else 1


def cmd_search(args: argparse.Namespace) -> int:
    """One-shot registry search over the v1 typed search endpoint.

    Most useful against a SQLite registry (``--db``): the server bulk-
    loads the vector index from the stored embeddings at startup and the
    query is served from the per-user shards, exactly like ``serve``.
    The request travels through ``POST /v1/registry/{user}/search`` —
    backend selection (``--backend``), top-k (``--k``) and cursor
    pagination (``--limit``/``--cursor``) are v1 envelope fields, and
    ``--json`` prints the :class:`~repro.server.schema.SearchResponse`
    envelope verbatim for scripting.
    """
    import json as _json

    from repro.client.display import render_search_hits
    from repro.errors import NotFoundError
    from repro.net.transport import Request

    server = _build_server(args.db, fit=not args.no_fit)
    try:
        server.registry.get_user(args.user)
    except NotFoundError:
        if args.db is not None:
            # never mutate a persistent registry from a read-only command
            print(f"unknown user {args.user!r} in registry {args.db}")
            return 1
        # ephemeral in-memory registry: create the throwaway user
        server.registry.register_user(args.user, args.password)
    login = server.dispatch(
        Request(
            "POST",
            "/auth/login",
            {"userName": args.user, "password": args.password},
        )
    )
    if login.status != 200:
        print(f"login failed: {login.body.get('message', login.body)}")
        return 1
    body: dict = {
        "query": args.query,
        "kind": args.search_type,
        "queryType": args.query_type,
        "backend": args.backend,
    }
    if args.k is not None:
        body["k"] = args.k
    if args.limit is not None:
        body["limit"] = args.limit
    if args.cursor is not None:
        body["cursor"] = args.cursor
    response = server.dispatch(
        Request(
            "POST",
            f"/v1/registry/{args.user}/search",
            body,
            token=login.body["token"],
        )
    )
    if response.status != 200:
        print(f"search failed: {response.body.get('message', response.body)}")
        return 1
    if args.json:
        print(_json.dumps(response.body))
        return 0
    print(
        render_search_hits(
            response.body.get("searchKind", "text"), response.body.get("hits", [])
        )
    )
    next_cursor = response.body.get("nextCursor")
    if next_cursor:
        print(f"next page: --cursor {next_cursor}")
    return 0


def _login_for_write(server, user: str, password: str):
    """Token for a write command, introducing the user when missing.

    Unlike the read-only ``search`` command (which refuses to touch a
    persistent registry), registration *is* a write — a missing user is
    created on the spot, also against ``--db``.
    """
    from repro.errors import NotFoundError
    from repro.net.transport import Request

    try:
        server.registry.get_user(user)
    except NotFoundError:
        server.registry.register_user(user, password)
    login = server.dispatch(
        Request(
            "POST", "/auth/login", {"userName": user, "password": password}
        )
    )
    if login.status != 200:
        return None, f"login failed: {login.body.get('message', login.body)}"
    return login.body["token"], None


def _print_write_response(body: dict, as_json: bool) -> None:
    import json as _json

    if as_json:
        print(_json.dumps(body))
        return
    op, kind = body.get("op"), body.get("kind")
    if op == "delete":
        print(f"removed {kind} (registry version {body.get('registryVersion')})")
        return
    for item in body.get("items", []):
        name = item.get("peName") or item.get("entryPoint")
        rid = item.get("peId") or item.get("workflowId")
        state = "created" if item.get("created") else "existing"
        print(
            f"registered {kind} {name!r} (id {rid}, revision "
            f"{item.get('revision')}, {state})"
        )
    print(f"registry version {body.get('registryVersion')}")


def cmd_register(args: argparse.Namespace) -> int:
    """Register through ``PUT /v1/registry/{user}/pes|workflows/{name}``
    (or ``POST .../pes:bulk`` with ``--bulk``), the typed write surface:
    ``--idempotency-key`` makes retries exact replays, ``--if-version``
    turns the write into a compare-and-set on the record revision."""
    import json as _json

    from repro.net.transport import Request
    from repro.server.api import quote_segment

    # every argument error is knowable up front — fail before paying
    # server construction (model loading) and login
    if args.bulk is None and not args.name:
        print("a name is required unless --bulk is given")
        return 1
    if args.bulk is not None and args.kind != "pe":
        print("--bulk registers PEs only")
        return 1
    code = args.code
    source = ""
    if args.code_file is not None:
        try:
            with open(args.code_file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"cannot read --code-file: {exc}")
            return 1
        if code is None:
            code = source
    items = None
    if args.bulk is not None:
        try:
            with open(args.bulk, "r", encoding="utf-8") as handle:
                items = _json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read --bulk file: {exc}")
            return 1
        if not isinstance(items, list):
            print("--bulk file must hold a JSON array of item objects")
            return 1
    elif not code:
        print("either --code or --code-file is required")
        return 1
    server = _build_server(args.db, fit=not args.no_fit)
    token, error = _login_for_write(server, args.user, args.password)
    if error:
        print(error)
        return 1
    if items is not None:
        body: dict = {"items": items}
        method, path = "POST", f"/v1/registry/{args.user}/pes:bulk"
    else:
        key = "peCode" if args.kind == "pe" else "workflowCode"
        body = {key: code}
        if args.description:
            body["description"] = args.description
        if source:
            body["peSource" if args.kind == "pe" else "workflowSource"] = source
        collection = "pes" if args.kind == "pe" else "workflows"
        method = "PUT"
        path = (
            f"/v1/registry/{args.user}/{collection}/"
            f"{quote_segment(args.name)}"
        )
    if args.if_version is not None:
        body["ifVersion"] = args.if_version
    if args.idempotency_key is not None:
        body["idempotencyKey"] = args.idempotency_key
    response = server.dispatch(Request(method, path, body, token=token))
    if not response.ok:
        print(f"register failed: {response.body.get('message', response.body)}")
        return 1
    _print_write_response(response.body, args.json)
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    """Remove through ``DELETE /v1/registry/{user}/pes|workflows/{name}``."""
    from repro.net.transport import Request
    from repro.server.api import quote_segment

    server = _build_server(args.db, fit=not args.no_fit)
    token, error = _login_for_write(server, args.user, args.password)
    if error:
        print(error)
        return 1
    body: dict = {}
    if args.if_version is not None:
        body["ifVersion"] = args.if_version
    if args.idempotency_key is not None:
        body["idempotencyKey"] = args.idempotency_key
    collection = "pes" if args.kind == "pe" else "workflows"
    response = server.dispatch(
        Request(
            "DELETE",
            f"/v1/registry/{args.user}/{collection}/"
            f"{quote_segment(args.name)}",
            body,
            token=token,
        )
    )
    if not response.ok:
        print(f"delete failed: {response.body.get('message', response.body)}")
        return 1
    _print_write_response(response.body, args.json)
    return 0


def _connect_for_write(args: argparse.Namespace, *, fit: bool = False):
    """``(dispatch, token, error)`` for a write command.

    In-process by default (``--db`` or in-memory), or a real deployment
    when ``--server URL`` is given — the remote path introduces the user
    over the wire first (``/auth/register`` may 4xx when the user
    already exists; only the login outcome matters).
    """
    from repro.net.transport import Request

    if getattr(args, "server", None):
        from repro.server.http import HttpTransport

        dispatch = HttpTransport(args.server).request
        creds = {"userName": args.user, "password": args.password}
        dispatch(Request("POST", "/auth/register", creds))
        login = dispatch(Request("POST", "/auth/login", creds))
        if login.status != 200:
            return None, None, (
                f"login failed: {login.body.get('message', login.body)}"
            )
        return dispatch, login.body["token"], None
    server = _build_server(args.db, fit=fit)
    token, error = _login_for_write(server, args.user, args.password)
    if error:
        return None, None, error
    return server.dispatch, token, None


def _pack_tree(path: str) -> tuple[str, int]:
    """Base64 ``.tar.gz`` of the ingestable files under ``path``.

    Reuses the server-side walker so the client ships exactly the file
    set the server would have selected locally — skip dirs, binary and
    oversized files never leave the machine.
    """
    import base64
    import io
    import tarfile

    from repro.ingest.walker import iter_repo_files

    buffer = io.BytesIO()
    count = 0
    with tarfile.open(fileobj=buffer, mode="w:gz") as tar:
        for rel, text in iter_repo_files(path):
            if text is None:
                continue
            data = text.encode("utf-8")
            info = tarfile.TarInfo(rel)
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
            count += 1
    return base64.b64encode(buffer.getvalue()).decode("ascii"), count


def _format_progress(progress: dict) -> str:
    files = progress.get("filesDiscovered", 0)
    skipped = progress.get("filesSkipped", 0)
    return (
        f"files {files} (+{skipped} skipped)  "
        f"chunks {progress.get('chunksDiscovered', 0)} discovered / "
        f"{progress.get('chunksEmbedded', 0)} embedded / "
        f"{progress.get('chunksInserted', 0)} inserted / "
        f"{progress.get('chunksDeduped', 0)} deduped"
    )


def cmd_ingest(args: argparse.Namespace) -> int:
    """Ingest a source tree through ``POST /v1/registry/{user}/ingest``.

    The endpoint answers 202 with a job id immediately; this command
    then follows the job over ``GET /v1/jobs/{id}``, echoing progress
    counters as they move.  Against ``--server`` the tree is packed
    into a tarball client-side (the path means nothing to a remote
    machine) and uploaded as the request's ``archive``.
    """
    import json as _json
    import os
    import time

    from repro.net.transport import Request
    from repro.server.api import quote_segment

    if not os.path.isdir(args.path):
        print(f"not a directory: {args.path}")
        return 1
    dispatch, token, error = _connect_for_write(args, fit=not args.no_fit)
    if error:
        print(error)
        return 1
    body: dict = {}
    if args.server:
        body["archive"], packed = _pack_tree(args.path)
        print(f"packed {packed} file(s) for upload")
    else:
        body["path"] = os.path.abspath(args.path)
    if args.batch_size is not None:
        body["batchSize"] = args.batch_size
    if args.max_file_bytes is not None:
        body["maxFileBytes"] = args.max_file_bytes
    if args.max_chunk_lines is not None:
        body["maxChunkLines"] = args.max_chunk_lines
    response = dispatch(
        Request(
            "POST",
            f"/v1/registry/{quote_segment(args.user)}/ingest",
            body,
            token=token,
        )
    )
    if response.status != 202:
        print(f"ingest failed: {response.body.get('message', response.body)}")
        return 1
    job_id = response.body["jobId"]
    print(f"job {job_id} queued")
    if args.no_wait:
        return 0
    last_line = None
    while True:
        poll = dispatch(
            Request("GET", f"/v1/jobs/{quote_segment(job_id)}", token=token)
        )
        if not poll.ok:
            print(f"job lookup failed: {poll.body.get('message', poll.body)}")
            return 1
        job = poll.body["job"]
        line = _format_progress(job.get("progress", {}))
        if line != last_line:
            print(f"  {line}")
            last_line = line
        if job["state"] in ("succeeded", "failed", "cancelled"):
            break
        time.sleep(0.15)
    if args.json:
        print(_json.dumps(job))
        return 0 if job["state"] == "succeeded" else 1
    if job["state"] == "succeeded":
        result = job.get("result") or {}
        print(
            f"succeeded: {result.get('inserted', 0)} inserted, "
            f"{result.get('deduped', 0)} deduped "
            f"(registry version {result.get('registryVersion')})"
        )
        return 0
    error_body = job.get("error") or {}
    print(
        f"{job['state']}: "
        f"{error_body.get('message', 'no error detail recorded')}"
    )
    return 1


def cmd_jobs(args: argparse.Namespace) -> int:
    """List, inspect or cancel background jobs over ``/v1/jobs``.

    Jobs are owner-scoped: only the authenticated user's jobs are
    visible.  Without ``--server`` this talks to a fresh in-process
    server, whose job store starts empty — the command is mostly
    useful against a running deployment.
    """
    import json as _json

    from repro.net.transport import Request
    from repro.server.api import quote_segment

    if args.cancel and not args.job_id:
        print("--cancel requires a job id")
        return 1
    dispatch, token, error = _connect_for_write(args)
    if error:
        print(error)
        return 1
    if args.job_id:
        if args.cancel:
            request = Request(
                "POST",
                f"/v1/jobs/{quote_segment(args.job_id)}:cancel",
                token=token,
            )
        else:
            request = Request(
                "GET", f"/v1/jobs/{quote_segment(args.job_id)}", token=token
            )
        response = dispatch(request)
        if not response.ok:
            print(f"jobs failed: {response.body.get('message', response.body)}")
            return 1
        if args.json:
            print(_json.dumps(response.body))
            return 0
        job = response.body["job"]
        print(f"{job['jobId']}  {job['kind']:<10} {job['state']}")
        print(f"  {_format_progress(job.get('progress', {}))}")
        if job.get("result"):
            print(f"  result: {_json.dumps(job['result'])}")
        if job.get("error"):
            print(f"  error: {_json.dumps(job['error'])}")
        return 0
    body = {}
    if args.state:
        body["state"] = args.state
    response = dispatch(Request("GET", "/v1/jobs", body, token=token))
    if not response.ok:
        print(f"jobs failed: {response.body.get('message', response.body)}")
        return 1
    if args.json:
        print(_json.dumps(response.body))
        return 0
    jobs = response.body.get("jobs", [])
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(
            f"{job['jobId']}  {job['kind']:<10} {job['state']:<10} "
            f"{_format_progress(job.get('progress', {}))}"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Registry occupancy without materializing a single record.

    Per-user PE/workflow counts come straight from the DAO's owned-id
    projections (``pe_ids_owned_by`` / ``workflow_ids_owned_by``), which
    read only the ownership index — no row fetches, no embedding
    unblobbing, no model or server construction — so the default mode
    stays cheap even against a huge registry.  ``--shards`` additionally
    builds the vector index — from the persisted slab snapshot when it
    is still fresh, else the O(corpus) rebuild server startup does — and
    reports per-shard occupancy plus per-shard persistence freshness
    (each slab's journaled chain tip vs its expected mutation stamp),
    delta-chain lengths, and bytes written per journaled mutation.
    ``--persist`` opts
    in to writing the built slabs back so the next cold start loads
    them directly.
    """
    from repro.registry.dao import InMemoryDAO, SqliteDAO

    dao = SqliteDAO(args.db) if args.db else InMemoryDAO()
    users = dao.all_users()
    print(f"registry: {args.db or 'in-memory'}  ({len(users)} user(s))")
    for user in users:
        pe_ids = dao.pe_ids_owned_by(user.user_id)
        wf_ids = dao.workflow_ids_owned_by(user.user_id)
        print(
            f"  {user.user_name:<20} {len(pe_ids):>6} PE(s) "
            f"{len(wf_ids):>6} workflow(s)"
        )
    if args.shards:
        from repro.registry.service import RegistryService
        from repro.search.backend import create_backend

        service = RegistryService(dao)
        # reporting must not write to the registry unless asked to;
        # backends are selected by name, never constructed directly
        mode = service.attach_index(create_backend("exact"), persist=False)
        shards = service.index.stats()
        print(f"index: {len(shards)} shard(s)  (attach: {mode})")
        for key, info in sorted(shards.items()):
            print(
                f"  {key:<20} {info['live']:>6} live rows  "
                f"(capacity {info['capacity']}, d={info['dim']})"
            )
        freshness = service.shard_persistence()
        if not freshness["perShard"]:
            print("persistence: none (next cold start rebuilds)")
        else:
            state = "fresh" if freshness["fresh"] else "stale"
            print(
                f"persistence: {state}  "
                f"({freshness['freshShards']} fresh / "
                f"{freshness['staleShards']} stale shard(s), "
                f"{freshness['rows']} base row(s), "
                f"{freshness['deltas']} journaled delta(s), "
                f"current counter {freshness['currentCounter']})"
            )
            for name, shard in sorted(freshness["perShard"].items()):
                shard_state = "fresh" if shard["fresh"] else "stale"
                print(
                    f"  {name:<20} {shard_state:<6} "
                    f"stamp {str(shard['stamp']):>5}  "
                    f"tip {str(shard['tip']):>5}  "
                    f"chain {shard['chainLen']} delta(s) / "
                    f"{shard['chainBytes']} B"
                )
            journal = freshness["journal"]
            if journal["rows"]:
                print(
                    f"journal: {journal['rows']} append(s), "
                    f"{journal['bytes']} B "
                    f"({journal['bytesPerMutation']:.0f} B/mutation), "
                    f"{journal['compactions']} compaction(s)"
                )
        if args.persist:
            saved = service.persist_shards()
            print(f"persisted: {'yes' if saved else 'no (registry mutated)'}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Exit 0 clean, 1 with findings, 2 on unparseable files."""
    from repro.analysis import (
        all_rules,
        lint_paths,
        render_findings,
        render_json,
    )

    if args.list_rules:
        for name, rule in all_rules().items():
            print(f"{name}  {rule.summary}")
        return 0
    rules = None
    if args.rules:
        rules = [name.strip() for name in args.rules.split(",") if name.strip()]
    findings, errors = lint_paths(args.paths, rules=rules)
    if args.as_json:
        print(render_json(findings, errors))
    elif findings or errors:
        print(render_findings(findings, errors))
    if errors:
        return 2
    return 1 if findings else 0


def cmd_endpoints(args: argparse.Namespace) -> int:
    server = _build_server(None, fit=False)
    for method, pattern in server.endpoints():
        print(f"{method:7s} {pattern}")
    return 0


_COMMANDS = {
    "serve": cmd_serve,
    "demo": cmd_demo,
    "eval": cmd_eval,
    "search": cmd_search,
    "register": cmd_register,
    "delete": cmd_delete,
    "ingest": cmd_ingest,
    "jobs": cmd_jobs,
    "stats": cmd_stats,
    "lint": cmd_lint,
    "endpoints": cmd_endpoints,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
