"""The Execution Engine core (paper §3.3).

One entry point — :meth:`ExecutionEngine.execute` — behind the single
``/execution/{user}/run`` API endpoint.  Responsibilities, in order:

1. deserialize the shipped workflow (cloudpickle/base64);
2. auto-install the transmitted requirement list in the (simulated)
   conda environment;
3. stage the ``resources/`` payload into an ephemeral working directory;
4. autonomously identify the workflow's root PE(s) — users never specify
   the starting point;
5. enact with the requested dispel4py mapping and ship results, stdout
   and timings back.

The working directory is created per execution and discarded afterwards,
modelling the ephemerality of serverless back-ends.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.dataflow.core import ProcessingElement
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings import run_workflow
from repro.engine.environment import SimulatedCondaEnvironment
from repro.engine.results import ExecutionOutcome
from repro.errors import ExecutionError, ValidationError
from repro.serialization import deserialize_object, unpack_resources


@dataclass
class ExecutionRequest:
    """The payload of POST /execution/{user}/run."""

    workflow_code: str
    workflow_name: str = "workflow"
    imports: list[str] = field(default_factory=list)
    input: Any = None
    mapping: str = "simple"
    nprocs: int | None = None
    resources_payload: str | None = None
    capture_stdout: bool = True
    timeout: float = 300.0

    def to_json(self) -> dict[str, Any]:
        return {
            "workflowCode": self.workflow_code,
            "workflowName": self.workflow_name,
            "imports": list(self.imports),
            "input": self.input,
            "mapping": self.mapping,
            "nprocs": self.nprocs,
            "resources": self.resources_payload,
            "captureStdout": self.capture_stdout,
            "timeout": self.timeout,
        }

    @classmethod
    def from_json(cls, body: dict[str, Any]) -> "ExecutionRequest":
        if "workflowCode" not in body:
            raise ValidationError(
                "execution request missing 'workflowCode'",
                params={"keys": sorted(body)},
            )
        return cls(
            workflow_code=str(body["workflowCode"]),
            workflow_name=str(body.get("workflowName", "workflow")),
            imports=list(body.get("imports", [])),
            input=body.get("input"),
            mapping=str(body.get("mapping", "simple")),
            nprocs=body.get("nprocs"),
            resources_payload=body.get("resources"),
            capture_stdout=bool(body.get("captureStdout", True)),
            timeout=float(body.get("timeout", 300.0)),
        )


def _coerce_graph(obj: Any, name: str) -> WorkflowGraph:
    """Accept the shapes users ship: a graph, a PE, a PE class, or a
    zero-argument builder callable returning any of those."""
    if isinstance(obj, WorkflowGraph):
        return obj
    if isinstance(obj, ProcessingElement):
        graph = WorkflowGraph(name)
        graph.add(obj)
        return graph
    if isinstance(obj, type) and issubclass(obj, ProcessingElement):
        graph = WorkflowGraph(name)
        graph.add(obj())
        return graph
    if callable(obj):
        return _coerce_graph(obj(), name)
    raise ExecutionError(
        f"deserialized workflow has unsupported type {type(obj).__name__}",
        params={"type": type(obj).__name__},
    )


def _normalize_input(value: Any) -> Any:
    """JSON turns tuples into lists; restore dict-item list shape."""
    if isinstance(value, list):
        return [dict(item) if isinstance(item, dict) else item for item in value]
    return value


class ExecutionEngine:
    """A serverless execution engine instance.

    Parameters
    ----------
    environment:
        The simulated conda environment (shared across executions, as a
        warmed engine would be; call ``environment.reset()`` to model a
        cold start).
    name:
        Engine identifier reported in outcomes (``local``, ``remote``).
    workdir_root:
        Where ephemeral execution directories are created.
    """

    def __init__(
        self,
        environment: SimulatedCondaEnvironment | None = None,
        *,
        name: str = "local",
        workdir_root: str | None = None,
    ) -> None:
        self.environment = environment or SimulatedCondaEnvironment()
        self.name = name
        self.workdir_root = workdir_root
        #: executions served (serverless bookkeeping)
        self.invocations = 0

    def execute(self, request: ExecutionRequest) -> ExecutionOutcome:
        """Run one execution request to completion."""
        self.invocations += 1
        timings: dict[str, float] = {}
        t_total = time.perf_counter()

        # 1. deserialize ------------------------------------------------
        t0 = time.perf_counter()
        try:
            payload = deserialize_object(request.workflow_code)
        except Exception as exc:
            raise ExecutionError(
                f"cannot deserialize workflow {request.workflow_name!r}",
                params={"workflow": request.workflow_name},
                details=str(exc),
            ) from exc
        graph = _coerce_graph(payload, request.workflow_name)
        timings["deserialize_s"] = time.perf_counter() - t0

        # 2. dependency management ---------------------------------------
        t0 = time.perf_counter()
        report = self.environment.ensure(list(request.imports))
        timings["install_s"] = time.perf_counter() - t0

        workdir = tempfile.mkdtemp(
            prefix="laminar-exec-", dir=self.workdir_root
        )
        try:
            # 3. resource staging -------------------------------------
            t0 = time.perf_counter()
            if request.resources_payload:
                unpack_resources(
                    request.resources_payload, os.path.join(workdir, "resources")
                )
            timings["resources_s"] = time.perf_counter() - t0

            # 4. automatic root detection -------------------------------
            graph.validate()
            roots = [pe.name for pe in graph.roots()]

            # 5. enactment ------------------------------------------------
            t0 = time.perf_counter()
            with contextlib.chdir(workdir):
                mapping_result = run_workflow(
                    graph,
                    input=_normalize_input(request.input),
                    mapping=request.mapping,
                    nprocs=request.nprocs,
                    capture_stdout=request.capture_stdout,
                    timeout=request.timeout,
                )
            timings["execute_s"] = time.perf_counter() - t0
            timings["total_s"] = time.perf_counter() - t_total

            return ExecutionOutcome(
                status="ok",
                workflow_name=request.workflow_name,
                mapping=mapping_result.mapping,
                nprocs=mapping_result.nprocs,
                root_pes=roots,
                results=mapping_result.results,
                stdout=mapping_result.stdout,
                counters=mapping_result.counters,
                timings=timings,
                installed_packages=report.installed_now,
                engine_name=self.name,
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
