"""Simulated conda environment with auto-install (paper §3.3).

"Within a conda Python environment, the execution engine is furnished
with the dispel4py library and its essential packages ... It autonomously
imports necessary prerequisites, eliminating the need for user
installations."

Real installs are impossible offline, so the environment keeps a catalog
of known packages with realistic install durations; ``ensure`` installs
the missing ones, sleeping ``install_latency_scale x duration`` seconds.
With the default scale of 0 installs are instantaneous (unit tests); the
Table 5 benchmark raises the scale to charge realistic install overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import EnvironmentError_

#: package -> nominal install seconds (rough pip/conda wall times)
PACKAGE_CATALOG: dict[str, float] = {
    "numpy": 8.0,
    "scipy": 12.0,
    "pandas": 15.0,
    "astropy": 14.0,
    "networkx": 4.0,
    "requests": 2.0,
    "matplotlib": 16.0,
    "redis": 2.0,
    "mpi4py": 20.0,
    "cloudpickle": 1.0,
    "dispel4py": 3.0,
    "findimports": 1.0,
    "sklearn": 18.0,
    "scikit-learn": 18.0,
    "sympy": 9.0,
    "pillow": 6.0,
    "h5py": 10.0,
    "numba": 22.0,
}

#: default install time for packages not in the catalog
_DEFAULT_INSTALL_SECONDS = 5.0

#: what the engine environment ships with out of the box ("furnished with
#: the dispel4py library and its essential packages", §3.3); ``repro`` is
#: this package itself — PEs importing the bundled substrates need no
#: installation, like dispel4py built-ins on the paper's engine.
DEFAULT_PREINSTALLED = frozenset({"dispel4py", "cloudpickle", "numpy", "repro"})


@dataclass
class InstallReport:
    """What one ``ensure`` call did."""

    requested: list[str] = field(default_factory=list)
    installed_now: list[str] = field(default_factory=list)
    already_present: list[str] = field(default_factory=list)
    seconds: float = 0.0

    def to_json(self) -> dict:
        return {
            "requested": self.requested,
            "installedNow": self.installed_now,
            "alreadyPresent": self.already_present,
            "seconds": round(self.seconds, 6),
        }


class SimulatedCondaEnvironment:
    """A self-contained environment with package management latency."""

    def __init__(
        self,
        preinstalled: frozenset[str] | set[str] = DEFAULT_PREINSTALLED,
        *,
        install_latency_scale: float = 0.0,
        catalog: dict[str, float] | None = None,
        strict: bool = False,
    ) -> None:
        """``strict=True`` makes unknown packages an error instead of
        charging the default install time."""
        self.installed: set[str] = set(preinstalled)
        self.install_latency_scale = install_latency_scale
        self.catalog = dict(PACKAGE_CATALOG if catalog is None else catalog)
        self.strict = strict
        #: cumulative modelled install seconds (accounting even at scale 0)
        self.accounted_install_s = 0.0

    def is_installed(self, package: str) -> bool:
        return package in self.installed

    def install_cost(self, package: str) -> float:
        """Nominal (unscaled) install seconds for ``package``."""
        if package in self.catalog:
            return self.catalog[package]
        if self.strict:
            raise EnvironmentError_(
                f"package {package!r} is not available in the engine "
                "environment catalog",
                params={"package": package},
            )
        return _DEFAULT_INSTALL_SECONDS

    def ensure(self, packages: list[str]) -> InstallReport:
        """Install every missing package; idempotent per package."""
        report = InstallReport(requested=sorted(set(packages)))
        t0 = time.perf_counter()
        for package in report.requested:
            if package in self.installed:
                report.already_present.append(package)
                continue
            cost = self.install_cost(package)
            self.accounted_install_s += cost
            if self.install_latency_scale > 0:
                time.sleep(cost * self.install_latency_scale)
            self.installed.add(package)
            report.installed_now.append(package)
        report.seconds = time.perf_counter() - t0
        return report

    def reset(self, preinstalled: frozenset[str] | None = None) -> None:
        """Tear the environment down and re-provision (ephemerality, §3)."""
        self.installed = set(
            DEFAULT_PREINSTALLED if preinstalled is None else preinstalled
        )
        self.accounted_install_s = 0.0

    def __repr__(self) -> str:
        return (
            f"<SimulatedCondaEnvironment installed={len(self.installed)} "
            f"scale={self.install_latency_scale}>"
        )
