"""The serverless Execution Engine (paper §3.3).

The engine is the serverless core of Laminar: it receives execution
requests through a single endpoint (``/execution/{user}/run``),
deserializes the shipped workflow, auto-installs the declared import
requirements inside its (simulated) conda environment, stages any
resources, autonomously detects the workflow's root PE, and enacts the
workflow with the requested dispel4py mapping.

Substitution note (DESIGN.md): real package installation and the Azure
container runtime are replaced by :class:`SimulatedCondaEnvironment` — a
package catalog with per-package install latencies — so the engine's
control flow (and its contribution to Table 5's overhead) is preserved
without network access.
"""

from repro.engine.environment import InstallReport, SimulatedCondaEnvironment
from repro.engine.engine import ExecutionEngine, ExecutionRequest
from repro.engine.pool import EngineEntry, EnginePool
from repro.engine.results import ExecutionOutcome

__all__ = [
    "ExecutionEngine",
    "ExecutionRequest",
    "ExecutionOutcome",
    "SimulatedCondaEnvironment",
    "InstallReport",
    "EnginePool",
    "EngineEntry",
]
