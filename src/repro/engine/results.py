"""Execution outcomes returned from the engine to the client (Figure 9)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExecutionOutcome:
    """Everything the Execution Engine sends back after an enactment.

    ``timings`` breaks the engine-side work into the stages the paper
    blames for Laminar's overhead (§6.1): deserialization, dependency
    installation, resource staging, and the enactment itself.
    """

    status: str  # "ok" | "error"
    workflow_name: str = ""
    mapping: str = "simple"
    nprocs: int = 1
    root_pes: list[str] = field(default_factory=list)
    results: dict[str, list[Any]] = field(default_factory=dict)
    stdout: str = ""
    counters: dict[str, dict[str, float]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    installed_packages: list[str] = field(default_factory=list)
    engine_name: str = "local"
    error: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "workflowName": self.workflow_name,
            "mapping": self.mapping,
            "nprocs": self.nprocs,
            "rootPes": list(self.root_pes),
            "results": self.results,
            "stdout": self.stdout,
            "counters": self.counters,
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
            "installedPackages": list(self.installed_packages),
            "engineName": self.engine_name,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, body: dict[str, Any]) -> "ExecutionOutcome":
        return cls(
            status=str(body.get("status", "error")),
            workflow_name=str(body.get("workflowName", "")),
            mapping=str(body.get("mapping", "simple")),
            nprocs=int(body.get("nprocs", 1)),
            root_pes=list(body.get("rootPes", [])),
            results=dict(body.get("results", {})),
            stdout=str(body.get("stdout", "")),
            counters=dict(body.get("counters", {})),
            timings=dict(body.get("timings", {})),
            installed_packages=list(body.get("installedPackages", [])),
            engine_name=str(body.get("engineName", "local")),
            error=body.get("error"),
        )

    def summary(self) -> str:
        """Human-readable digest like the Figure 9 client printout."""
        lines = [
            f"[{self.engine_name}] workflow {self.workflow_name!r} "
            f"({self.mapping} mapping, {self.nprocs} process(es)): {self.status}"
        ]
        if self.installed_packages:
            lines.append(f"  auto-installed: {', '.join(self.installed_packages)}")
        for key, values in sorted(self.results.items()):
            lines.append(f"  {key}: {len(values)} value(s)")
        if self.stdout:
            lines.append("  --- output ---")
            lines.extend("  " + line for line in self.stdout.rstrip().splitlines())
        if self.error:
            lines.append(f"  error: {self.error}")
        return "\n".join(lines)
