"""Multiple Execution Engine registration (paper §3.3 / §8 future work).

"In the future we plan to expand Laminar's capabilities by enabling the
registration of multiple Execution Engines, a process that currently
involves manual intervention."  This module implements that extension:
an :class:`EnginePool` holding named engines, each with its own
simulated environment and (optional) transport latency model for the
engine-side hop, plus a dispatch policy for unpinned runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.engine.engine import ExecutionEngine, ExecutionRequest
from repro.engine.environment import SimulatedCondaEnvironment
from repro.engine.results import ExecutionOutcome
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.net.latency import LatencyModel, make_latency


@dataclass
class EngineEntry:
    """One registered engine with its dispatch metadata."""

    name: str
    engine: ExecutionEngine
    #: latency charged per execution round trip to this engine (models
    #: where the engine runs: in-process, LAN, or WAN/cloud)
    latency: LatencyModel | None = None
    #: registration metadata shown to clients
    description: str = ""

    def stats(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "invocations": self.engine.invocations,
            "installedPackages": len(self.engine.environment.installed),
            "latency": self.latency.name if self.latency else "in-process",
        }


class EnginePool:
    """Named Execution Engines with least-load dispatch for unpinned runs."""

    def __init__(self, default: ExecutionEngine | None = None) -> None:
        self._entries: dict[str, EngineEntry] = {}
        self.register(
            "local",
            default or ExecutionEngine(name="local"),
            description="default in-process engine",
        )

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        engine: ExecutionEngine,
        *,
        latency: LatencyModel | None = None,
        description: str = "",
    ) -> EngineEntry:
        if not name or not name.strip():
            raise ValidationError("engine name must be non-empty")
        if name in self._entries:
            raise DuplicateError(
                f"engine {name!r} is already registered", params={"engine": name}
            )
        entry = EngineEntry(name, engine, latency, description)
        self._entries[name] = entry
        return entry

    def create(
        self,
        name: str,
        *,
        install_scale: float = 0.0,
        latency_preset: str | None = None,
        description: str = "",
    ) -> EngineEntry:
        """Provision a fresh engine from configuration (the API path)."""
        engine = ExecutionEngine(
            SimulatedCondaEnvironment(install_latency_scale=install_scale),
            name=name,
        )
        latency = make_latency(latency_preset) if latency_preset else None
        return self.register(
            name, engine, latency=latency, description=description
        )

    def remove(self, name: str) -> None:
        if name == "local":
            raise ValidationError("the default 'local' engine cannot be removed")
        if name not in self._entries:
            raise NotFoundError(
                f"engine {name!r} is not registered", params={"engine": name}
            )
        del self._entries[name]

    # ------------------------------------------------------------------
    def get(self, name: str) -> EngineEntry:
        if name not in self._entries:
            raise NotFoundError(
                f"engine {name!r} is not registered",
                params={"engine": name},
                details=f"registered engines: {sorted(self._entries)}",
            )
        return self._entries[name]

    def pick(self) -> EngineEntry:
        """Least-load dispatch: the engine with fewest invocations."""
        return min(
            self._entries.values(), key=lambda e: (e.engine.invocations, e.name)
        )

    def execute(
        self, request: ExecutionRequest, engine_name: str | None = None
    ) -> ExecutionOutcome:
        """Run on the named engine (or least-load pick), charging its hop."""
        entry = self.get(engine_name) if engine_name else self.pick()
        if entry.latency is not None:
            # engine-side hop: request out, results back (sizes approximated
            # by the serialized workflow and stdout payloads)
            entry.latency.apply(len(request.workflow_code))
        outcome = entry.engine.execute(request)
        if entry.latency is not None:
            entry.latency.apply(len(outcome.stdout) + 512)
        outcome.engine_name = entry.name
        return outcome

    # ------------------------------------------------------------------
    def stats(self) -> list[dict[str, Any]]:
        return [entry.stats() for _name, entry in sorted(self._entries.items())]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[EngineEntry]:
        return iter(self._entries.values())
