"""Bulk vs one-at-a-time registration throughput (the v1 write surface).

``POST /v1/registry/{user}/pes:bulk`` lands a batch with one DAO
``executemany`` transaction, one index ``add_many`` per shard kind and
ONE shard persist, where the one-at-a-time path pays a SQLite
transaction + incremental index add per record and would re-export the
slabs per call if it persisted as eagerly.  This benchmark measures
that amortization end to end through ``LaminarServer.dispatch`` against
a real SQLite file, with client-supplied embeddings so both paths
skip the model and the difference is pure DAO/index/persist work.

Gate: bulk registration >= 2x the one-at-a-time throughput at N >= 300,
with both paths leaving a fresh persisted slab snapshot.

Emits ``BENCH_bulk_register.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.ml.bundle import ModelBundle
from repro.net.transport import Request
from repro.registry.dao import SqliteDAO
from repro.server import LaminarServer

N = 500  # records per path (acceptance: N >= 300)
#: embedding width — small on purpose: envelope float validation is
#: symmetric between the two paths, and keeping it cheap makes the
#: measured difference the *asymmetric* work (per-request dispatch,
#: per-record transactions and index adds vs one batch of each)
DIM = 64


@pytest.fixture(scope="module")
def bundle():
    return ModelBundle.default(fit=False)


def make_items(rng) -> list[dict]:
    items = []
    for i in range(N):
        desc = rng.standard_normal(DIM).astype(np.float32)
        code = rng.standard_normal(DIM).astype(np.float32)
        items.append(
            {
                "peName": f"pe{i:04d}",
                "peCode": f"def pe{i:04d}(x): return x + {i}",
                "description": f"benchmark element number {i}",
                "descEmbedding": [float(v) for v in desc / np.linalg.norm(desc)],
                "codeEmbedding": [float(v) for v in code / np.linalg.norm(code)],
            }
        )
    return items


def fresh_server(tmp_path, bundle, name: str):
    server = LaminarServer(dao=SqliteDAO(tmp_path / name), models=bundle)
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "b", "password": "p"})
    )
    token = server.dispatch(
        Request("POST", "/auth/login", {"userName": "b", "password": "p"})
    ).body["token"]
    return server, token


def test_bulk_register_throughput(tmp_path, record, out_dir):
    items = make_items(np.random.default_rng(42))

    # one-at-a-time: N PUTs, then one explicit persist (the eager-persist
    # alternative would re-export the slabs N times; this is the *kind*
    # single-record baseline)
    single_server, token = fresh_server(tmp_path, ModelBundle.default(fit=False), "single.db")
    start = time.perf_counter()
    for item in items:
        body = {k: v for k, v in item.items() if k != "peName"}
        response = single_server.dispatch(
            Request(
                "PUT",
                f"/v1/registry/b/pes/{item['peName']}",
                body,
                token=token,
            )
        )
        assert response.status == 201, response.body
    assert single_server.registry.persist_shards() is True
    single_seconds = time.perf_counter() - start
    assert single_server.registry.shard_persistence()["fresh"] is True

    # bulk: one request, one executemany, one add_many per kind, one persist
    bulk_server, token = fresh_server(tmp_path, ModelBundle.default(fit=False), "bulk.db")
    start = time.perf_counter()
    response = bulk_server.dispatch(
        Request(
            "POST", "/v1/registry/b/pes:bulk", {"items": items}, token=token
        )
    )
    bulk_seconds = time.perf_counter() - start
    assert response.status == 201, response.body
    assert response.body["count"] == N
    assert all(item["created"] for item in response.body["items"])
    # the bulk endpoint persisted inside the same call
    assert bulk_server.registry.shard_persistence()["fresh"] is True

    # both paths must store identical registries (same names, same count)
    assert (
        bulk_server.registry.dao.pe_ids_owned_by(1)
        == single_server.registry.dao.pe_ids_owned_by(1)
    )

    speedup = single_seconds / bulk_seconds
    single_rps = N / single_seconds
    bulk_rps = N / bulk_seconds
    text = "\n".join(
        [
            "bulk registration throughput (v1 write surface, SQLite-backed)",
            f"  records             : {N} (d={DIM}, embeddings client-supplied)",
            f"  one-at-a-time       : {single_seconds:8.3f}s  ({single_rps:8.1f} rec/s)",
            f"  pes:bulk            : {bulk_seconds:8.3f}s  ({bulk_rps:8.1f} rec/s)",
            f"  speedup             : {speedup:8.2f}x",
        ]
    )
    record("BENCH_bulk_register", text)
    (out_dir / "BENCH_bulk_register.json").write_text(
        json.dumps(
            {
                "n": N,
                "dim": DIM,
                "singleSeconds": round(single_seconds, 4),
                "bulkSeconds": round(bulk_seconds, 4),
                "singleRecordsPerSecond": round(single_rps, 1),
                "bulkRecordsPerSecond": round(bulk_rps, 1),
                "speedup": round(speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )
    assert speedup >= 2.0, (
        f"bulk registration should amortize at least 2x over "
        f"one-at-a-time, got {speedup:.2f}x"
    )
