"""Table 5 — Internal Extinction execution times.

Reproduces the paper's latency study: {original dispel4py, Laminar with
a local Execution Engine, Laminar with a remote (WAN-shaped) Execution
Engine} x {Simple, Multi(5 processes)}.  Absolute seconds differ from
the paper (their workload downloaded ~1050 real VOTables; ours uses the
synthetic VO service at reduced catalog scale), but the orderings —
original < local < remote, Multi << Simple — are asserted.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from repro.evalharness.experiments import (
    Table5Config,
    _run_laminar,
    _run_original,
    run_table5,
)
from repro.evalharness.reporting import check, environment_header

CONFIG = Table5Config(
    n_galaxies=40,
    votable_latency_s=0.01,
    nprocs=5,
    fetch_hint=3,
    # high enough that Laminar's structural overhead (auto-install,
    # registry hops) dominates scheduler noise on small machines
    install_scale=0.005,
)


def _bench(benchmark, fn, mapping):
    def run():
        with tempfile.TemporaryDirectory(prefix="t5-bench-") as tmp:
            return fn(mapping, Path(tmp))

    return benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("mapping", ["simple", "multi"])
class TestRows:
    def test_original_dispel4py(self, benchmark, mapping):
        benchmark.group = f"table5-{mapping}"
        _bench(benchmark, lambda m, d: _run_original(CONFIG, m, d), mapping)

    def test_laminar_local(self, benchmark, mapping):
        benchmark.group = f"table5-{mapping}"
        _bench(benchmark, lambda m, d: _run_laminar(CONFIG, m, d, False), mapping)

    def test_laminar_remote(self, benchmark, mapping):
        benchmark.group = f"table5-{mapping}"
        _bench(benchmark, lambda m, d: _run_laminar(CONFIG, m, d, True), mapping)


def test_table5_report(benchmark, record):
    """One full sweep; asserts the paper's shape and records the table."""
    result = benchmark.pedantic(
        lambda: run_table5(CONFIG), rounds=1, iterations=1
    )
    lines = [environment_header(), "", result["table"], ""]
    lines += [check(label, ok) for label, ok in result["checks"].items()]
    record("table5", "\n".join(lines))
    assert all(result["checks"].values()), result["checks"]
