"""VectorIndex vs per-query matrix rebuild — the §4.2/4.3 serving path.

Before this subsystem, every ``/registry/{user}/search`` call looped
over all N records in Python, stacked their embeddings into a fresh
``(N, D)`` matrix, and full-sorted the similarities.  The index keeps
the matrix pre-stacked per (user, kind) and selects top-k with
``argpartition``.  This benchmark records both latencies at N=3000 and
asserts the ISSUE's acceptance criterion: index top-k at least 5x
faster than the rebuild-per-query scan, with identical results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ml.models import UnixCoderCodeSearch
from repro.registry.entities import PERecord
from repro.search import KIND_DESC, SemanticSearcher, VectorIndex

N = 3000
DIM = 2048  # matches the embedders' default dimensionality
K = 10
QUERIES = 15
ROUNDS = 3
USER = 1


def _unit_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    matrix = rng.standard_normal((n, DIM)).astype(np.float32)
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def _corpus(rng: np.random.Generator) -> list[PERecord]:
    vectors = _unit_rows(rng, N)
    records = []
    for i in range(N):
        record = PERecord(
            pe_id=i + 1,
            pe_name=f"PE{i}",
            description=f"synthetic processing element {i}",
            pe_code="eA==",
        )
        # .copy(): records hold individually allocated vectors in
        # production (DAO blobs / JSON lists), not views into one matrix
        record.desc_embedding = vectors[i].copy()
        records.append(record)
    return records


def _median_latency(fn, queries, rounds=ROUNDS) -> float:
    """Median seconds per call of ``fn(qvec)`` across queries x rounds."""
    samples = []
    for _ in range(rounds):
        for qvec in queries:
            start = time.perf_counter()
            fn(qvec)
            samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_index_vs_scan(record):
    rng = np.random.default_rng(2023)
    records = _corpus(rng)
    queries = _unit_rows(rng, QUERIES)
    searcher = SemanticSearcher(UnixCoderCodeSearch())

    index = VectorIndex()
    for pe in records:
        index.add(USER, KIND_DESC, pe.pe_id, pe.desc_embedding)

    # identical results on every query before timing anything
    for qvec in queries:
        brute = searcher.search("q", records, k=K, query_embedding=qvec)
        raw_ids, raw_scores = index.search(USER, KIND_DESC, qvec, k=K)
        served = searcher.search(
            "q", records, k=K, query_embedding=qvec, index=index, user=USER
        )
        assert raw_ids == [h.pe_id for h in brute] == [h.pe_id for h in served]
        np.testing.assert_allclose(
            raw_scores, [h.score for h in brute], atol=1e-6
        )

    scan_s = _median_latency(
        lambda q: searcher.search("q", records, k=K, query_embedding=q), queries
    )
    raw_index_s = _median_latency(
        lambda q: index.search(USER, KIND_DESC, q, k=K), queries
    )
    served_s = _median_latency(
        lambda q: searcher.search(
            "q", records, k=K, query_embedding=q, index=index, user=USER
        ),
        queries,
    )
    # batched multi-query scoring: one (Q, D) @ (D, N) product reads the
    # shard once for the whole batch instead of once per query
    batch_samples = []
    for _ in range(ROUNDS * 3):
        start = time.perf_counter()
        index.search_batch(USER, KIND_DESC, queries, k=K)
        batch_samples.append((time.perf_counter() - start) / len(queries))
    batched_s = float(np.median(batch_samples))

    raw_speedup = scan_s / raw_index_s
    served_speedup = scan_s / served_s
    batched_speedup = scan_s / batched_s
    lines = [
        f"Index vs scan — N={N} records, D={DIM}, k={K} "
        f"(median of {QUERIES * ROUNDS} queries)",
        "",
        f"{'path':<46}{'per-query':>12}{'speedup':>10}",
        f"{'brute-force scan (rebuild matrix + sort)':<46}"
        f"{scan_s * 1e3:>10.3f}ms{1.0:>10.1f}x",
        f"{'VectorIndex.search (single query)':<46}"
        f"{raw_index_s * 1e3:>10.3f}ms{raw_speedup:>10.1f}x",
        f"{'SemanticSearcher via index (end to end)':<46}"
        f"{served_s * 1e3:>10.3f}ms{served_speedup:>10.1f}x",
        f"{'VectorIndex.search_batch (batched queries)':<46}"
        f"{batched_s * 1e3:>10.3f}ms{batched_speedup:>10.1f}x",
        "",
        f"[{'OK' if batched_speedup >= 5.0 else 'MISS'}] index top-k "
        f">= 5x faster than the per-query matrix rebuild "
        f"(batched: {batched_speedup:.1f}x, single: {raw_speedup:.1f}x)",
    ]
    record("index_vs_scan", "\n".join(lines))
    # single-query scan and index are both bound by the same (N, D)
    # matrix read, so the single-query ratio saturates near the rebuild
    # overhead (~5x here); batched scoring amortizes the read and is the
    # headline acceptance number
    assert batched_speedup >= 5.0, (
        f"batched index speedup {batched_speedup:.1f}x below the 5x bar "
        f"(scan {scan_s * 1e3:.3f}ms vs batched {batched_s * 1e3:.3f}ms)"
    )
    assert raw_speedup >= 3.0, (
        f"single-query index speedup {raw_speedup:.1f}x unexpectedly low "
        f"(scan {scan_s * 1e3:.3f}ms vs index {raw_index_s * 1e3:.3f}ms)"
    )


def test_query_embedding_cache_hit_rate(record):
    """Repeated query strings skip the embedder via the LRU cache."""
    searcher = SemanticSearcher(UnixCoderCodeSearch())
    rng = np.random.default_rng(7)
    records = _corpus(rng)[:200]
    index = VectorIndex()

    embeds = 0
    original = searcher.model.embed_one

    def counting_embed(text, kind="auto"):
        nonlocal embeds
        embeds += 1
        return original(text, kind)

    searcher.model.embed_one = counting_embed
    try:
        for _ in range(20):
            searcher.search("find the prime checker", records, k=5,
                            index=index, user=USER)
    finally:
        searcher.model.embed_one = original

    record(
        "index_query_cache",
        f"20 repeated queries -> {embeds} embedder call(s); "
        f"cache hits={index.query_cache.hits} misses={index.query_cache.misses}",
    )
    assert embeds == 1
