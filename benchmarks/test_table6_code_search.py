"""Table 6 — zero-shot text-to-code search (MRR on CoSQA-like/CSN-like).

Benchmarks the retrieval pipeline of each model on each dataset and
asserts the paper's shape: the fine-tuned ``unixcoder-code-search``
beats ``unixcoder-base`` on both corpora, with its strongest result on
the CSN-like corpus (paper: 58.8/72.2 vs 43.1/44.7).
"""

from __future__ import annotations

import pytest

from repro.datasets import build_cosqa, build_csn
from repro.datasets.advtest import fitting_corpus
from repro.evalharness.experiments import run_table6
from repro.evalharness.metrics import evaluate_retrieval
from repro.evalharness.reporting import check
from repro.ml.models import get_model


@pytest.fixture(scope="module")
def datasets():
    return {"cosqa": build_cosqa(), "csn": build_csn()}


@pytest.fixture(scope="module")
def models():
    return {
        "unixcoder-base": get_model("unixcoder-base"),
        "unixcoder-code-search": get_model("unixcoder-code-search").fit(
            fitting_corpus(), kind="code"
        ),
    }


@pytest.mark.parametrize("model_name", ["unixcoder-base", "unixcoder-code-search"])
@pytest.mark.parametrize("dataset_name", ["cosqa", "csn"])
def test_retrieval_pipeline(benchmark, datasets, models, model_name, dataset_name):
    """Time embed-corpus + embed-queries + rank for one (model, dataset)."""
    benchmark.group = f"table6-{dataset_name}"
    model, dataset = models[model_name], datasets[dataset_name]
    scores = benchmark.pedantic(
        lambda: evaluate_retrieval(model, dataset), rounds=3, iterations=1
    )
    assert 0.0 <= scores.mrr <= 1.0


def test_query_latency_against_prebuilt_index(benchmark, datasets, models):
    """The §3.1.1 serving path: corpus embeddings precomputed, one query."""
    benchmark.group = "table6-query"
    model = models["unixcoder-code-search"]
    dataset = datasets["cosqa"]
    corpus_matrix = model.embed(dataset.corpus, kind="code")

    from repro.ml.similarity import cosine_topk

    def one_query():
        qvec = model.embed_one(dataset.queries[0], kind="text")
        return cosine_topk(qvec, corpus_matrix, k=10)

    indices, _scores = benchmark(one_query)
    assert len(indices) == 10


def test_table6_report(benchmark, record):
    result = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    lines = [result["table"], ""]
    lines += [check(label, ok) for label, ok in result["checks"].items()]
    record("table6", "\n".join(lines))
    assert all(result["checks"].values()), result["checks"]
