"""Repository ingestion throughput vs the one-at-a-time PUT path.

The comparison a client actually faces, end to end over real HTTP:
landing a repository either as ONE ``POST /v1/registry/{user}/ingest``
(the background job walks, chunks, embeds and bulk-registers in
bounded batches — one executemany + one index ``add_many`` per batch)
or as one ``PUT /v1/registry/{user}/pes/{name}`` round trip per chunk,
each paying a full HTTP request, dispatch, a per-record transaction
and an incremental index add.  Both paths run the same summarize/embed
model work per record, so the measured gap is the asymmetric
per-request overhead the pipeline amortizes.

Also measured, because it is the design's headline property: search
latency **while the ingest job is running** — batches take the write
lock only for their single bulk insert, so the search hot path stays
live mid-ingest.

Gates:
* submitting the ingest returns a job id in < 1s (the work is async);
* ingest throughput >= 3x the one-at-a-time PUT path at >= 1000 chunks.

Emits ``BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import statistics
import time

import pytest

from repro.ml.bundle import ModelBundle
from repro.net.transport import Request
from repro.registry.dao import SqliteDAO
from repro.server import LaminarServer
from repro.server.api import quote_segment
from repro.server.http import HttpTransport, serve_http

FILES = 60
FUNCS_PER_FILE = 20  # -> 1200 function chunks (acceptance: >= 1000)
BATCH_SIZE = 256

WORDS = (
    "parse", "merge", "filter", "route", "encode", "decode", "batch",
    "stream", "index", "rank", "split", "join", "hash", "scan", "fold",
)


@pytest.fixture(scope="module")
def bundle():
    return ModelBundle.default(fit=False)


def build_corpus(root):
    """FILES modules of FUNCS_PER_FILE small unique functions."""
    for f in range(FILES):
        lines = [f'"""Benchmark module {f}."""', "", "import os", ""]
        for g in range(FUNCS_PER_FILE):
            word = WORDS[(f + g) % len(WORDS)]
            lines += [
                f"def {word}_{f:02d}_{g:02d}(value):",
                f'    """{word.capitalize()} helper {f}-{g}."""',
                f"    return value + {f * FUNCS_PER_FILE + g}",
                "",
            ]
        target = root / f"pkg{f % 6}" / f"mod{f:02d}.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(lines))


def corpus_chunks(root):
    from repro.ingest.chunker import chunk_file
    from repro.ingest.walker import iter_repo_files

    chunks = []
    for relative, text in iter_repo_files(str(root)):
        if text is None:
            continue
        parsed = chunk_file(relative, text)
        if parsed:
            chunks.extend(parsed)
    return chunks


def fresh_server(tmp_path, bundle, name):
    return LaminarServer(dao=SqliteDAO(tmp_path / name), models=bundle)


def login(transport):
    creds = {"userName": "b", "password": "p"}
    transport.request(Request("POST", "/auth/register", creds))
    return transport.request(
        Request("POST", "/auth/login", creds)
    ).body["token"]


def test_ingest_throughput_and_live_search(tmp_path, bundle, record, out_dir):
    corpus = tmp_path / "corpus"
    build_corpus(corpus)
    chunks = corpus_chunks(corpus)
    assert len(chunks) >= 1000, "benchmark corpus must be repository-scale"

    # --- ingest path: ONE HTTP POST, then the background job does the work
    ingest_server = fresh_server(tmp_path, bundle, "ingest.db")
    with serve_http(ingest_server) as handle:
        transport = HttpTransport(handle.url)
        token = login(transport)
        submit_start = time.perf_counter()
        response = transport.request(
            Request(
                "POST",
                "/v1/registry/b/ingest",
                {"path": str(corpus), "batchSize": BATCH_SIZE},
                token=token,
            )
        )
        submit_seconds = time.perf_counter() - submit_start
        assert response.status == 202, response.body
        job_id = response.body["jobId"]

        # search the live index while the job runs — over HTTP, at a
        # realistic client cadence, not a busy-loop (a spinning poller
        # would only measure its own contention with the job)
        search_latencies = []
        query = {
            "query": "merge and filter a stream",
            "queryType": "semantic",
            "k": 10,
        }
        while True:
            state = transport.request(
                Request("GET", f"/v1/jobs/{job_id}", token=token)
            ).body["job"]["state"]
            search_start = time.perf_counter()
            search = transport.request(
                Request(
                    "POST", "/v1/registry/b/search", dict(query), token=token
                )
            )
            search_latencies.append(time.perf_counter() - search_start)
            assert search.status == 200
            if state in ("succeeded", "failed", "cancelled"):
                break
            time.sleep(0.02)
        assert ingest_server.jobs.join(timeout=600.0)
        job = ingest_server.jobs.get(job_id)
    assert job["state"] == "succeeded", job
    inserted = job["progress"]["chunksInserted"]
    assert inserted == len(chunks)
    ingest_seconds = job["finishedAt"] - job["startedAt"]
    ingest_rps = inserted / ingest_seconds

    # --- baseline: the same chunks, one HTTP PUT round trip each
    put_server = fresh_server(tmp_path, bundle, "single.db")
    with serve_http(put_server) as handle:
        transport = HttpTransport(handle.url)
        token = login(transport)
        start = time.perf_counter()
        for chunk in chunks:
            put = transport.request(
                Request(
                    "PUT",
                    f"/v1/registry/b/pes/{quote_segment(chunk.name)}",
                    {
                        "peCode": chunk.code,
                        "description": chunk.docstring,
                        "peSource": chunk.source_text(),
                        "peImports": list(chunk.imports),
                    },
                    token=token,
                )
            )
            assert put.status == 201, put.body
        assert put_server.registry.persist_shards() is True
        single_seconds = time.perf_counter() - start
    single_rps = len(chunks) / single_seconds

    # both paths must land the same corpus
    assert len(put_server.registry.dao.pe_ids_owned_by(1)) == inserted

    speedup = ingest_rps / single_rps
    lat_sorted = sorted(search_latencies)
    p50 = statistics.median(lat_sorted) * 1000
    p95 = lat_sorted[min(len(lat_sorted) - 1, int(len(lat_sorted) * 0.95))] * 1000
    text = "\n".join(
        [
            "repository ingestion throughput (background job, SQLite-backed)",
            f"  chunks              : {len(chunks)} from {FILES} files "
            f"(batchSize {BATCH_SIZE})",
            f"  job id returned in  : {submit_seconds * 1000:8.1f}ms",
            f"  ingest job          : {ingest_seconds:8.3f}s  "
            f"({ingest_rps:8.1f} rec/s)",
            f"  one-at-a-time PUTs  : {single_seconds:8.3f}s  "
            f"({single_rps:8.1f} rec/s)",
            f"  speedup             : {speedup:8.2f}x",
            f"  concurrent search   : {len(search_latencies)} queries, "
            f"p50 {p50:6.1f}ms  p95 {p95:6.1f}ms",
        ]
    )
    record("BENCH_ingest", text)
    (out_dir / "BENCH_ingest.json").write_text(
        json.dumps(
            {
                "chunks": len(chunks),
                "files": FILES,
                "batchSize": BATCH_SIZE,
                "submitSeconds": round(submit_seconds, 4),
                "ingestSeconds": round(ingest_seconds, 4),
                "ingestRecordsPerSecond": round(ingest_rps, 1),
                "singleSeconds": round(single_seconds, 4),
                "singleRecordsPerSecond": round(single_rps, 1),
                "speedup": round(speedup, 2),
                "concurrentSearch": {
                    "queries": len(search_latencies),
                    "p50Ms": round(p50, 2),
                    "p95Ms": round(p95, 2),
                },
            },
            indent=2,
        )
        + "\n"
    )
    assert submit_seconds < 1.0, (
        f"ingest must hand back a job id immediately, took {submit_seconds:.2f}s"
    )
    assert speedup >= 3.0, (
        f"batched ingest should amortize at least 3x over one-at-a-time "
        f"PUTs, got {speedup:.2f}x"
    )
