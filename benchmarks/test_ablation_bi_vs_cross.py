"""Ablation A4 — bi-encoder vs cross-encoder (§2.4 trade-off).

The paper adopts the bi-encoder paradigm because "bi-encoders calculate
embeddings for both inputs, enabling efficient storage of embeddings for
subsequent queries" while "cross-encoders perform full-attention over
the input pairs, resulting in better accuracy but reduced efficiency".
This ablation measures both sides of that trade-off on the CoSQA-like
corpus: query latency (bi-encoder orders of magnitude faster against a
prebuilt index) and retrieval accuracy (cross-encoder at least as good).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_cosqa
from repro.datasets.advtest import fitting_corpus
from repro.evalharness.metrics import mean_reciprocal_rank, rank_corpus
from repro.ml.embedding import BiEncoder, CrossEncoder
from repro.ml.models import UnixCoderCodeSearch


@pytest.fixture(scope="module")
def setup():
    model = UnixCoderCodeSearch().fit(fitting_corpus(), kind="code")
    dataset = build_cosqa()
    bi = BiEncoder(model).index(dataset.corpus)
    cross = CrossEncoder(model)
    return model, dataset, bi, cross


def test_bi_encoder_query_latency(benchmark, setup):
    benchmark.group = "bi-vs-cross-latency"
    _model, dataset, bi, _cross = setup
    results = benchmark(lambda: bi.search(dataset.queries[0], k=10))
    assert len(results) == 10


def test_cross_encoder_query_latency(benchmark, setup):
    benchmark.group = "bi-vs-cross-latency"
    _model, dataset, _bi, cross = setup
    results = benchmark(
        lambda: cross.rank(dataset.queries[0], dataset.corpus)[:10]
    )
    assert len(results) == 10


def test_accuracy_and_latency_report(benchmark, record, setup):
    import time

    model, dataset, bi, cross = setup

    def evaluate():
        # bi-encoder MRR (vectorized, all queries)
        queries = model.embed(dataset.queries, kind="text")
        rankings = rank_corpus(queries, bi.corpus_matrix)
        bi_mrr = mean_reciprocal_rank(rankings, dataset.relevant)
        # cross-encoder MRR on a query subsample (it is slow by design)
        sample = range(0, dataset.n_queries, 4)
        cross_rankings = []
        relevant = []
        t0 = time.perf_counter()
        for qi in sample:
            ranked = cross.rank(dataset.queries[qi], dataset.corpus)
            cross_rankings.append(np.array([i for i, _s in ranked]))
            relevant.append(dataset.relevant[qi])
        cross_seconds = time.perf_counter() - t0
        cross_mrr = mean_reciprocal_rank(np.array(cross_rankings), relevant)
        # matching bi-encoder timing on the same subsample
        t0 = time.perf_counter()
        for qi in sample:
            bi.search(dataset.queries[qi], k=10)
        bi_seconds = time.perf_counter() - t0
        return bi_mrr, cross_mrr, bi_seconds, cross_seconds, len(list(sample))

    bi_mrr, cross_mrr, bi_s, cross_s, n = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    record(
        "ablation_bi_vs_cross",
        "Bi-encoder vs cross-encoder on the CoSQA-like corpus "
        f"({n} sampled queries):\n"
        f"  bi-encoder:    MRR={bi_mrr:.3f}  latency={bi_s:.4f}s\n"
        f"  cross-encoder: MRR={cross_mrr:.3f}  latency={cross_s:.4f}s\n"
        f"  cross/bi latency ratio: {cross_s / max(bi_s, 1e-9):.1f}x",
    )
    # the §2.4 trade-off: comparable accuracy at orders-of-magnitude
    # higher query cost (nothing precomputable for a cross-encoder)
    assert cross_mrr >= bi_mrr - 0.05
    assert cross_s > bi_s * 10
