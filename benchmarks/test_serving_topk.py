"""O(k) serving path vs the seed's O(N) registry materialization.

Before this change every ``/registry/{user}/search`` request called
``RegistryService.user_pes``, which ran ``dao.all_pes()`` — the *whole*
registry (every user's rows, embedding BLOBs included) deserialized per
request, with ownership filtered in Python — even though the PR 1 index
already served the scoring from a pre-stacked shard.  The serving path
now ranks on the shard, checks membership against the id-only
``pe_ids_owned_by`` projection and materializes exactly the k winners
through the batched ``get_pes``.

This benchmark builds a multi-user SQLite registry with N≈5000 records
for the searching user, measures both end-to-end serving paths, counts
records materialized per request (N -> k), verifies bitwise-identical
results against the brute-force scan, and emits the
``BENCH_serving.json`` trajectory point.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.ml.models import UnixCoderCodeSearch
from repro.registry.dao import SqliteDAO
from repro.registry.entities import PERecord, UserRecord
from repro.registry.service import RegistryService
from repro.search import SemanticSearcher, VectorIndex

N_USER = 5000  # records owned by the searching user
N_OTHER = 1000  # records owned by the other tenant
DIM = 2048  # matches the embedders' default dimensionality
K = 10
QUERIES = 5
ROUNDS = 3


def _unit_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    matrix = rng.standard_normal((n, DIM)).astype(np.float32)
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def _build_registry(
    tmp_path,
) -> tuple[RegistryService, UserRecord, UserRecord]:
    rng = np.random.default_rng(2026)
    dao = SqliteDAO(tmp_path / "serving.db")
    service = RegistryService(dao)
    alice = service.register_user("alice", "pw")
    bob = service.register_user("bob", "pw")
    for user, count in ((alice, N_USER), (bob, N_OTHER)):
        vectors = _unit_rows(rng, count)
        records = [
            PERecord(
                pe_id=0,
                pe_name=f"{user.user_name}-PE{i}",
                description=f"synthetic element {i} of {user.user_name}",
                pe_code=f"{user.user_name}:{i}".encode("ascii").hex(),
                desc_embedding=vectors[i],
                owners={user.user_id},
            )
            for i in range(count)
        ]
        dao.insert_pes(records)
    service.attach_index(VectorIndex())
    return service, alice, bob


class _MaterializationCounter:
    """Counts full PE records the DAO hands out."""

    def __init__(self, dao: SqliteDAO) -> None:
        self.dao = dao
        self.count = 0
        self._wrap("all_pes")
        self._wrap("pes_owned_by")
        self._wrap("get_pes")

    def _wrap(self, name: str) -> None:
        original = getattr(self.dao, name)

        def counting(*args, **kwargs):
            result = original(*args, **kwargs)
            self.count += len(result)
            return result

        setattr(self.dao, name, counting)


def _median_latency(fn, queries, rounds=ROUNDS) -> float:
    samples = []
    for _ in range(rounds):
        for qvec in queries:
            start = time.perf_counter()
            fn(qvec)
            samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_serving_topk(record, out_dir, tmp_path):
    service, alice, bob = _build_registry(tmp_path)
    dao, index = service.dao, service.index
    searcher = SemanticSearcher(UnixCoderCodeSearch())
    rng = np.random.default_rng(7)
    queries = _unit_rows(rng, QUERIES)

    def old_serve(qvec):
        """The seed request path: user_pes = all_pes() filtered in
        Python (O(total registry) deserialization), index-scored."""
        records = [r for r in dao.all_pes() if alice.user_id in r.owners]
        return searcher.search(
            "q", records, k=K, query_embedding=qvec,
            index=index, user=alice.user_id,
        )

    def new_serve(qvec):
        """The O(k) path: id-only membership + top-k-only hydration."""
        return searcher.search_topk(
            "q",
            index=index,
            user=alice.user_id,
            owned_ids=service.owned_pe_ids(alice),
            resolve=lambda ids: service.resolve_pes(alice, ids),
            k=K,
            query_embedding=qvec,
        )

    # --- results identical (and bitwise-equal scores) before timing ----
    counter = _MaterializationCounter(dao)
    for qvec in queries:
        brute = searcher.search(
            "q",
            [r for r in dao.all_pes() if alice.user_id in r.owners],
            k=K,
            query_embedding=qvec,
        )
        counter.count = 0
        served = new_serve(qvec)
        materialized_new = counter.count
        assert [h.pe_id for h in served] == [h.pe_id for h in brute]
        assert [h.score for h in served] == [h.score for h in brute], (
            "top-k serving path must be bitwise identical to brute force"
        )
        assert materialized_new <= K, (
            f"O(k) path materialized {materialized_new} records for k={K}"
        )
    counter.count = 0
    old_serve(queries[0])
    materialized_old = counter.count

    # --- latency -------------------------------------------------------
    old_s = _median_latency(old_serve, queries)
    new_s = _median_latency(new_serve, queries)
    # the listing win is O(user's rows) vs O(registry): measure it for
    # the minority tenant (bob, 1000 of 6000 rows) — the representative
    # shape once a registry serves many users (for a user owning most of
    # the registry both paths are bound by the same row materialization)
    listing_old_s = _median_latency(
        lambda _q: [r for r in dao.all_pes() if bob.user_id in r.owners],
        queries, rounds=1,
    )
    listing_new_s = _median_latency(
        lambda _q: service.user_pes(bob), queries, rounds=1
    )
    speedup = old_s / new_s
    listing_speedup = listing_old_s / listing_new_s

    lines = [
        f"O(k) serving path — N={N_USER} own + {N_OTHER} other records, "
        f"D={DIM}, k={K} (median of {QUERIES * ROUNDS} queries)",
        "",
        f"{'request path':<52}{'per-request':>12}{'speedup':>10}",
        f"{'search, seed (all_pes filter + index scoring)':<52}"
        f"{old_s * 1e3:>10.2f}ms{1.0:>10.1f}x",
        f"{'search, O(k) (owned ids + top-k hydration)':<52}"
        f"{new_s * 1e3:>10.2f}ms{speedup:>10.1f}x",
        f"{'listing of 1000-row tenant, seed (all_pes filter)':<52}"
        f"{listing_old_s * 1e3:>10.2f}ms{1.0:>10.1f}x",
        f"{'listing of 1000-row tenant, owner-scoped SQL':<52}"
        f"{listing_new_s * 1e3:>10.2f}ms{listing_speedup:>10.1f}x",
        "",
        f"records materialized per search request: "
        f"{materialized_old} -> <= {K}",
        f"[{'OK' if speedup >= 5.0 else 'MISS'}] user_pes-free search "
        f"serving >= 5x faster at N={N_USER} (got {speedup:.1f}x)",
    ]
    record("serving_topk", "\n".join(lines))

    (out_dir / "BENCH_serving.json").write_text(
        json.dumps(
            {
                "benchmark": "serving_topk",
                "n_user_records": N_USER,
                "n_total_records": N_USER + N_OTHER,
                "dim": DIM,
                "k": K,
                "search_old_ms": round(old_s * 1e3, 3),
                "search_new_ms": round(new_s * 1e3, 3),
                "search_speedup": round(speedup, 2),
                "listing_old_ms": round(listing_old_s * 1e3, 3),
                "listing_new_ms": round(listing_new_s * 1e3, 3),
                "listing_speedup": round(listing_speedup, 2),
                "records_materialized_old": materialized_old,
                "records_materialized_new_max": K,
            },
            indent=2,
        )
        + "\n"
    )

    assert materialized_old >= N_USER
    assert speedup >= 5.0, (
        f"O(k) serving speedup {speedup:.1f}x below the 5x bar "
        f"(old {old_s * 1e3:.2f}ms vs new {new_s * 1e3:.2f}ms)"
    )
