"""ANN recall/QPS: the IVF-flat backend vs the exact reference scan.

The IVF-flat backend (``repro.search.backend.IVFFlatBackend``) probes
the ``nprobe`` nearest of ``nlist`` inverted lists and re-ranks only
their members with the exact dot product — trading a bounded recall
loss for scanning a fraction of the corpus.  This benchmark measures
that trade on an N≥5000 clustered corpus (embedding spaces are strongly
clustered in practice; uniform random vectors would make *any* ANN
structure useless by construction):

* **recall@10** — |ivf top-10 ∩ exact top-10| / 10, averaged over the
  query set, at the shipped default probe fraction;
* **QPS** — single-thread queries/second through each backend's
  ``search`` entry point (training amortized: the IVF state is built
  once, on the first query after a mutation epoch).

Gates (the v1 API's acceptance bar for ``backend="ivf"``):
recall@10 >= 0.95 and IVF QPS >= 2x exact at the benchmarked nprobe,
while nprobe=nlist stays *bitwise identical* to the exact backend.

The second test adds the HNSW graph backend's row: recall@10 at the
shipped (m, m0, ef) configuration plus batched serving-path QPS against
IVF (best-of interleaved rounds), gating recall >= 0.95 and HNSW QPS >=
IVF QPS.

Emits ``BENCH_ann_recall.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.search import HNSWBackend, IVFFlatBackend, KIND_DESC, VectorIndex

N = 6000  # corpus rows (acceptance: N >= 5000)
DIM = 512  # high-dimensional enough to be GEMV-bound, fast to build
CENTERS = 64  # latent cluster count of the synthetic embedding space
NOISE = 0.25  # intra-cluster spread
K = 10
N_QUERIES = 200
NLIST = 77  # ~sqrt(N), the standard IVF sizing
NPROBE = 4  # ~5% probe fraction
USER = 1


def _clustered_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    # anchors keep their ~sqrt(DIM) natural norm so NOISE is the
    # intra-cluster spread *relative* to the cluster signal
    anchors = rng.standard_normal((CENTERS, DIM)).astype(np.float32)
    assign = rng.integers(0, CENTERS, size=n)
    rows = anchors[assign] + NOISE * rng.standard_normal((n, DIM)).astype(
        np.float32
    )
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _queries(rng: np.random.Generator, corpus: np.ndarray) -> np.ndarray:
    """Perturbed corpus rows — the lookalike queries retrieval serves."""
    picks = rng.integers(0, corpus.shape[0], size=N_QUERIES)
    # corpus rows are unit-norm; 0.5*NOISE/sqrt(DIM) per component keeps
    # the perturbation at half the intra-cluster spread
    queries = corpus[picks] + (0.5 * NOISE / DIM**0.5) * rng.standard_normal(
        (N_QUERIES, DIM)
    ).astype(np.float32)
    return queries / np.linalg.norm(queries, axis=1, keepdims=True)


def _qps(search, queries: np.ndarray) -> float:
    start = time.perf_counter()
    for q in queries:
        search(USER, KIND_DESC, q, K)
    return queries.shape[0] / (time.perf_counter() - start)


def test_ivf_recall_and_qps_vs_exact(record, out_dir):
    rng = np.random.default_rng(2026)
    corpus = _clustered_rows(rng, N)
    ids = list(range(1, N + 1))
    exact = VectorIndex()
    exact.add_many(USER, KIND_DESC, ids, corpus)
    ivf = IVFFlatBackend(exact, nlist=NLIST, nprobe=NPROBE)
    queries = _queries(rng, corpus)

    # --- correctness gates ------------------------------------------------
    # full probe width must be bitwise identical to the exact backend
    full = IVFFlatBackend(exact, nlist=NLIST, nprobe=NLIST)
    probe_q = queries[0]
    exact_ids, exact_scores = exact.search(USER, KIND_DESC, probe_q, K)
    full_ids, full_scores = full.search(USER, KIND_DESC, probe_q, K)
    assert full_ids == exact_ids
    assert np.array_equal(full_scores, exact_scores)

    # --- recall@10 at the benchmarked nprobe ------------------------------
    overlap = 0
    for q in queries:
        want, _ = exact.search(USER, KIND_DESC, q, K)
        got, _ = ivf.search(USER, KIND_DESC, q, K)
        overlap += len(set(want) & set(got))
    recall = overlap / (K * N_QUERIES)

    # --- QPS (training already amortized by the recall pass) --------------
    exact_qps = _qps(exact.search, queries)
    ivf_qps = _qps(ivf.search, queries)
    speedup = ivf_qps / exact_qps

    text = "\n".join(
        [
            "ANN backend: IVF-flat vs exact reference "
            f"(N={N}, d={DIM}, {CENTERS} latent clusters)",
            f"  nlist={NLIST}  nprobe={NPROBE} "
            f"(~{NPROBE / NLIST:.0%} probe fraction)",
            f"  recall@{K}: {recall:.4f}   (gate: >= 0.95)",
            f"  exact QPS: {exact_qps:,.0f}",
            f"  ivf   QPS: {ivf_qps:,.0f}   ({speedup:.1f}x, gate: >= 2x)",
            f"  ivf trainings: {ivf.trainings}  "
            f"approx/exact queries: {ivf.approx_queries}/{ivf.exact_queries}",
            "  nprobe=nlist parity: bitwise identical to exact",
        ]
    )
    record("BENCH_ann_recall", text)
    (out_dir / "BENCH_ann_recall.json").write_text(
        json.dumps(
            {
                "benchmark": "ann_recall",
                "n": N,
                "dim": DIM,
                "centers": CENTERS,
                "k": K,
                "n_queries": N_QUERIES,
                "nlist": NLIST,
                "nprobe": NPROBE,
                "recall_at_10": round(recall, 4),
                "exact_qps": round(exact_qps, 1),
                "ivf_qps": round(ivf_qps, 1),
                "speedup": round(speedup, 2),
                "full_probe_bitwise_exact": True,
            },
            indent=2,
        )
        + "\n"
    )

    assert recall >= 0.95, f"recall@{K} {recall:.4f} below the 0.95 gate"
    assert speedup >= 2.0, f"IVF speedup {speedup:.2f}x below the 2x gate"


# --- HNSW row ------------------------------------------------------------

HNSW_M = 16  # entry-layer density ~1/16 of the corpus
HNSW_M0 = 96  # base-layer degree: candidates per routed entry
HNSW_EF = 4  # routed entries expanded per query
BATCH = 32  # serving-path batch width (the SearchBatcher shape)
ROUNDS = 5  # interleaved best-of rounds (single-core QPS is noisy)


def _batched_qps(backend, owned, queries: np.ndarray) -> float:
    ks = [K] * BATCH
    start = time.perf_counter()
    for lo in range(0, queries.shape[0], BATCH):
        chunk = list(queries[lo : lo + BATCH])
        got = backend.search_among_many(
            USER, KIND_DESC, owned, chunk, ks[: len(chunk)]
        )
        assert got is not None
    return queries.shape[0] / (time.perf_counter() - start)


def test_hnsw_recall_and_batched_qps_vs_ivf(record, out_dir):
    """The graph backend must beat IVF on the production serving path.

    Both backends are measured through ``search_among_many`` at the
    micro-batcher's batch width — the shape deployed traffic actually
    takes — with the rounds interleaved in one process and the best of
    ``ROUNDS`` kept per backend (single-core QPS jitters ±30%, and
    best-of-N compares the backends' attainable throughput rather than
    whichever round the scheduler disliked).  Gates (the v1 acceptance
    bar for ``backend="hnsw"``): recall@10 >= 0.95 and HNSW QPS >= IVF
    QPS at the benchmarked configurations.
    """
    rng = np.random.default_rng(2026)
    corpus = _clustered_rows(rng, N)
    ids = list(range(1, N + 1))
    exact = VectorIndex()
    exact.add_many(USER, KIND_DESC, ids, corpus)
    ivf = IVFFlatBackend(exact, nlist=NLIST, nprobe=NPROBE)
    hnsw = HNSWBackend(exact, m=HNSW_M, m0=HNSW_M0, ef_search=HNSW_EF)
    queries = _queries(rng, corpus)

    # --- recall@10 (also amortizes the lazy build/training) ---------------
    build_start = time.perf_counter()
    overlap_hnsw = overlap_ivf = 0
    for q in queries:
        want, _ = exact.search(USER, KIND_DESC, q, K)
        got_hnsw, _ = hnsw.search(USER, KIND_DESC, q, K)
        got_ivf, _ = ivf.search(USER, KIND_DESC, q, K)
        overlap_hnsw += len(set(want) & set(got_hnsw))
        overlap_ivf += len(set(want) & set(got_ivf))
    recall_hnsw = overlap_hnsw / (K * N_QUERIES)
    recall_ivf = overlap_ivf / (K * N_QUERIES)
    warm_seconds = time.perf_counter() - build_start
    assert hnsw.builds == 1  # one graph build serves the whole run

    # --- batched serving QPS, interleaved best-of rounds ------------------
    ivf_qps = hnsw_qps = 0.0
    for _ in range(ROUNDS):
        ivf_qps = max(ivf_qps, _batched_qps(ivf, ids, queries))
        hnsw_qps = max(hnsw_qps, _batched_qps(hnsw, ids, queries))
    ratio = hnsw_qps / ivf_qps

    text = "\n".join(
        [
            "ANN backend: HNSW graph vs IVF-flat, batched serving path "
            f"(N={N}, d={DIM}, {CENTERS} latent clusters, batch={BATCH})",
            f"  hnsw m={HNSW_M} m0={HNSW_M0} ef={HNSW_EF}   "
            f"ivf nlist={NLIST} nprobe={NPROBE}",
            f"  recall@{K}: hnsw {recall_hnsw:.4f}  ivf {recall_ivf:.4f}"
            "   (gate: hnsw >= 0.95)",
            f"  best-of-{ROUNDS} QPS: hnsw {hnsw_qps:,.0f}  "
            f"ivf {ivf_qps:,.0f}   ({ratio:.2f}x, gate: >= 1x)",
            f"  graph builds: {hnsw.builds} "
            f"(warm pass incl. build: {warm_seconds:.2f}s)",
        ]
    )
    record("BENCH_ann_recall_hnsw", text)
    path = out_dir / "BENCH_ann_recall.json"
    payload = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "ann_recall"
    }
    payload["hnsw"] = {
        "m": HNSW_M,
        "m0": HNSW_M0,
        "ef_search": HNSW_EF,
        "batch": BATCH,
        "rounds": ROUNDS,
        "recall_at_10": round(recall_hnsw, 4),
        "ivf_recall_at_10": round(recall_ivf, 4),
        "hnsw_qps": round(hnsw_qps, 1),
        "ivf_qps": round(ivf_qps, 1),
        "qps_ratio": round(ratio, 2),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

    assert recall_hnsw >= 0.95, (
        f"hnsw recall@{K} {recall_hnsw:.4f} below the 0.95 gate"
    )
    assert ratio >= 1.0, (
        f"hnsw batched QPS {hnsw_qps:,.0f} below ivf {ivf_qps:,.0f}"
    )
