"""Ablation A3 — mapping scaling on CPU-bound and IO-bound workloads.

DESIGN.md calls out the mapping set (Simple/Multi/MPI/Redis) as the core
substrate choice; this ablation quantifies when each wins: parallel
mappings pay process/broker overhead that only amortizes once per-item
work is non-trivial (the paper's Table 5 uses an IO-bound workload where
Multi shines).
"""

from __future__ import annotations

import pytest

from repro.dataflow.core import ConsumerPE, IterativePE, ProducerPE
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings import run_workflow

N_ITEMS = 24
IO_DELAY_S = 0.004
CPU_LOOPS = 20_000


class _Producer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
        self.i = 0

    def _process(self):
        self.i += 1
        return self.i


class _IOStage(IterativePE):
    """Simulated blocking IO (VO-download-like)."""

    def __init__(self):
        IterativePE.__init__(self)

    def _process(self, x):
        import time

        time.sleep(IO_DELAY_S)
        return x


class _CPUStage(IterativePE):
    """Pure-Python CPU burn."""

    def __init__(self):
        IterativePE.__init__(self)

    def _process(self, x):
        total = 0
        for i in range(CPU_LOOPS):
            total += i * i % 7
        return (x, total)


class _Sink(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
        self.n = 0

    def _process(self, x):
        self.n += 1


def _graph(stage_cls, hint):
    graph = WorkflowGraph(f"ablation-{stage_cls.__name__}")
    stage = stage_cls()
    stage.numprocesses = hint
    graph.connect(_Producer(), "output", stage, "input")
    graph.connect(stage, "output", _Sink(), "input")
    return graph


@pytest.mark.parametrize("mapping", ["simple", "multi", "mpi", "redis"])
class TestMappingAblation:
    def test_io_bound(self, benchmark, mapping):
        benchmark.group = "ablation-io-bound"
        result = benchmark.pedantic(
            lambda: run_workflow(
                _graph(_IOStage, hint=4), input=N_ITEMS, mapping=mapping,
                nprocs=6, timeout=120,
            ),
            rounds=2,
            iterations=1,
        )
        assert result.counters["_IOStage"]["consumed"] == N_ITEMS

    def test_cpu_bound(self, benchmark, mapping):
        benchmark.group = "ablation-cpu-bound"
        result = benchmark.pedantic(
            lambda: run_workflow(
                _graph(_CPUStage, hint=4), input=N_ITEMS, mapping=mapping,
                nprocs=6, timeout=120,
            ),
            rounds=2,
            iterations=1,
        )
        assert result.counters["_CPUStage"]["consumed"] == N_ITEMS


def test_multi_beats_simple_on_io(benchmark, record):
    """The Table 5 mechanism in isolation: IO overlap across processes."""
    import time

    def timed(mapping):
        t0 = time.perf_counter()
        run_workflow(
            _graph(_IOStage, hint=4), input=N_ITEMS, mapping=mapping,
            nprocs=6, timeout=120,
        )
        return time.perf_counter() - t0

    simple, multi = benchmark.pedantic(
        lambda: (timed("simple"), timed("multi")), rounds=1, iterations=1
    )
    record(
        "ablation_mappings",
        f"IO-bound ({N_ITEMS} items x {IO_DELAY_S * 1000:.0f}ms):\n"
        f"  simple: {simple:.3f}s\n  multi:  {multi:.3f}s\n"
        f"  speedup: {simple / multi:.2f}x",
    )
    assert multi < simple
