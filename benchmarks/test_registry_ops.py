"""Registry/server operation throughput (framework overhead breakdown).

Measures the building blocks whose sum explains Table 5's Laminar
overhead: PE registration (serialize + summarize + embed + store),
workflow retrieval, search round trips, and the serverless run path.
"""

from __future__ import annotations

import pytest

from repro.client import LaminarClient, local_stack
from repro.ml.bundle import ModelBundle
from repro.workflows.library import ALL_LIBRARY_PES
from tests.helpers import AddTen, build_pipeline_graph


@pytest.fixture(scope="module")
def bundle():
    return ModelBundle.default(fit=True)


@pytest.fixture()
def client(bundle):
    c = LaminarClient(local_stack(models=bundle), models=bundle, echo=False)
    c.register("bench", "pw")
    c.login("bench", "pw")
    return c


def test_pe_registration_throughput(benchmark, client):
    benchmark.group = "registry-ops"
    counter = iter(range(10_000))

    def register_one():
        # distinct descriptions keep dedup from short-circuiting the path
        return client.register_PE(AddTen, f"adds ten variant {next(counter)}")

    body = benchmark(register_one)
    assert body["peName"] == "AddTen"


def test_workflow_registration(benchmark, client):
    benchmark.group = "registry-ops"
    body = benchmark(
        lambda: client.register_Workflow(build_pipeline_graph(), "pipeline")
    )
    assert body["entryPoint"] == "pipeline"


def test_workflow_retrieval(benchmark, client):
    benchmark.group = "registry-ops"
    client.register_Workflow(build_pipeline_graph(), "pipeline")
    graph = benchmark(lambda: client.get_Workflow("pipeline"))
    assert len(graph) == 3


def test_semantic_search_round_trip(benchmark, client):
    benchmark.group = "registry-search"
    for cls in ALL_LIBRARY_PES:
        client.register_PE(cls)
    hits = benchmark(
        lambda: client.search_Registry(
            "count how often each word occurs", "pe", "text", k=5
        )
    )
    assert hits


def test_code_search_round_trip(benchmark, client):
    benchmark.group = "registry-search"
    for cls in ALL_LIBRARY_PES:
        client.register_PE(cls)
    hits = benchmark(
        lambda: client.search_Registry("random.randint(1, 1000)", "pe", "code", k=5)
    )
    assert hits


def test_serverless_run_path(benchmark, client):
    benchmark.group = "registry-ops"
    client.register_Workflow(build_pipeline_graph(), "pipeline")
    outcome = benchmark(lambda: client.run("pipeline", input=3))
    assert outcome.status == "ok"
