"""Incremental shard persistence: journal bytes, O(delta) warm attach.

Three measurements for the v6 persistence plane, emitted as the
``BENCH_incremental_persist.json`` trajectory point:

* **Bytes written per mutation** — K scattered single-record writes
  against an N=5000-record SQLite registry, with a DAO proxy summing
  the payload bytes of every journal append and compaction fold.  The
  baseline is the pre-v6 whole-snapshot persist, which re-exported
  every slab on each write; the bar is a >= 10x reduction.
* **Warm attach after scattered writes** — a foreign (unjournaled)
  connection stamps two tenants' shards behind the journal's back;
  the restart must replay every other slab from its delta chain
  (zero ``all_pes()`` calls, per-owner loads for exactly the stale
  tenants) and still match the O(corpus) rebuild bitwise.
* **Insert-time HNSW builds** — pure appends extend the small-world
  graph in place instead of rebuilding it; the extended graph must
  rank bitwise-identically to a from-scratch build over the grown
  shard.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.registry.dao import SqliteDAO
from repro.registry.entities import PERecord
from repro.registry.service import RegistryService
from repro.search import KIND_DESC, HNSWBackend, VectorIndex

TENANTS = 10
PER_TENANT = 500  # N = 5000 records across the tenants
DIM = 256
K_ADDS = 700  # scattered journaled writes (round-robin over tenants)
K_REMOVES = 60
FOREIGN_TENANTS = 2
FOREIGN_ROWS = 5  # unjournaled rows per foreign-touched tenant

HNSW_N = 3000
HNSW_DIM = 64
HNSW_APPENDS = 32
HNSW_QUERIES = 8
HNSW_K = 10


def _unit_rows(rng: np.random.Generator, n: int, dim: int) -> np.ndarray:
    matrix = rng.standard_normal((n, dim)).astype(np.float32)
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


class _ByteMeter:
    """DAO proxy summing the payload bytes of incremental persistence."""

    def __init__(self, inner):
        self.inner = inner
        self.delta_appends = 0
        self.delta_bytes = 0
        self.upsert_bytes = 0  # compaction folds / dirty-shard upserts

    def __getattr__(self, name):
        attr = getattr(self.inner, name)
        if name == "append_index_delta":
            def wrapped(user_id, kind, op, ids, vectors, counter):
                self.delta_appends += 1
                self.delta_bytes += ids.nbytes + (
                    vectors.nbytes if vectors is not None else 0
                )
                return attr(user_id, kind, op, ids, vectors, counter)
            return wrapped
        if name == "upsert_index_shards":
            def wrapped(shards, stamp):
                for ids, matrix in shards.values():
                    self.upsert_bytes += ids.nbytes + matrix.nbytes
                return attr(shards, stamp)
            return wrapped
        return attr


class _LoadCounter:
    """DAO proxy counting full-corpus vs per-owner deserialization."""

    def __init__(self, inner):
        self.inner = inner
        self.all_pes_calls = 0
        self.pes_owned_by_users: list[int] = []

    def __getattr__(self, name):
        attr = getattr(self.inner, name)
        if name == "all_pes":
            def wrapped(*a, **kw):
                self.all_pes_calls += 1
                return attr(*a, **kw)
            return wrapped
        if name == "pes_owned_by":
            def wrapped(user_id, *a, **kw):
                self.pes_owned_by_users.append(int(user_id))
                return attr(user_id, *a, **kw)
            return wrapped
        return attr


def _record_for(user, name: str, i: int, desc, code=None) -> PERecord:
    return PERecord(
        pe_id=0,
        pe_name=f"{user.user_name}-{name}{i}",
        description=f"{name} element {i} of {user.user_name}",
        pe_code=f"{user.user_name}:{name}:{i}".encode("ascii").hex(),
        desc_embedding=desc,
        code_embedding=code,
        owners={user.user_id},
    )


def test_incremental_persist(tmp_path, record, out_dir):
    rng = np.random.default_rng(2026)
    db = tmp_path / "bench.db"

    # -- build: N=5000 records, then seed the v6 snapshot ----------------
    meter = _ByteMeter(SqliteDAO(db))
    service = RegistryService(meter)
    users = [service.register_user(f"tenant{t}", "pw") for t in range(TENANTS)]
    for user in users:
        desc = _unit_rows(rng, PER_TENANT, DIM)
        code = _unit_rows(rng, PER_TENANT, DIM)
        service.dao.insert_pes(
            [
                _record_for(user, "PE", i, desc[i], code[i])
                for i in range(PER_TENANT)
            ]
        )
    assert service.attach_index(VectorIndex()) == "rebuilt"  # arms journaling
    meter.delta_appends = meter.delta_bytes = meter.upsert_bytes = 0

    # -- K scattered journaled writes ------------------------------------
    added = []
    for i in range(K_ADDS):
        user = users[i % TENANTS]
        vecs = _unit_rows(rng, 2, DIM)
        added.append(
            (user, service.add_pe(user, _record_for(user, "W", i, vecs[0], vecs[1])))
        )
    for user, rec in added[:: len(added) // K_REMOVES][:K_REMOVES]:
        service.remove_pe_record(user, rec)
    mutations = K_ADDS + K_REMOVES

    report = service.shard_persistence()
    assert report["fresh"]
    assert report["journal"]["compactions"] > 0  # chains stayed bounded
    incremental_bytes = meter.delta_bytes + meter.upsert_bytes
    incremental_per_mut = incremental_bytes / mutations
    # the pre-v6 baseline re-exported every slab on each persist: one
    # whole-snapshot write per mutation
    snapshot_bytes = sum(
        ids.nbytes + matrix.nbytes
        for ids, matrix in service.index.snapshot().values()
    )
    improvement_x = snapshot_bytes / incremental_per_mut

    # -- foreign writes the journal never sees ---------------------------
    stale_tenants = users[-FOREIGN_TENANTS:]
    foreign = SqliteDAO(db)
    for j in range(FOREIGN_ROWS):
        for user in stale_tenants:
            foreign.insert_pe(
                _record_for(user, "F", j, _unit_rows(rng, 1, DIM)[0])
            )
    foreign.close()
    service.dao.close()

    # -- warm attach: O(delta) replay, per-owner rebuild of stale only ---
    counted = _LoadCounter(SqliteDAO(db))
    warm = RegistryService(counted)
    warm_index = VectorIndex()
    t0 = time.perf_counter()
    warm_mode = warm.attach_index(warm_index, persist=False)
    warm_seconds = time.perf_counter() - t0
    assert warm_mode == "partial"
    assert counted.all_pes_calls == 0  # zero full-corpus deserialization
    assert sorted(set(counted.pes_owned_by_users)) == sorted(
        user.user_id for user in stale_tenants
    )
    counted.inner.close()

    cold = RegistryService(SqliteDAO(db))
    reference = VectorIndex()
    t0 = time.perf_counter()
    cold._rebuild_full(reference)
    cold_seconds = time.perf_counter() - t0
    attach_x = cold_seconds / warm_seconds
    # the replayed + partially rebuilt index equals the full rebuild
    got = warm_index.export_shards()
    want = reference.export_shards()
    assert set(got) == set(want)
    for key in want:
        np.testing.assert_array_equal(got[key][0], want[key][0])
        assert np.array_equal(got[key][1], want[key][1])
    cold.dao.close()

    # -- insert-time HNSW: extend in place vs rebuild per append ---------
    hindex = VectorIndex()
    hindex.add_many(
        "u", KIND_DESC, list(range(HNSW_N)), _unit_rows(rng, HNSW_N, HNSW_DIM)
    )
    queries = _unit_rows(rng, HNSW_QUERIES, HNSW_DIM)
    extended = HNSWBackend(hindex, rebuild_fraction=0.0)
    ids_all = list(range(HNSW_N))
    t0 = time.perf_counter()
    extended.search_among("u", KIND_DESC, ids_all, queries[0], HNSW_K)
    build_seconds = time.perf_counter() - t0
    assert extended.builds == 1
    tail = _unit_rows(rng, HNSW_APPENDS, HNSW_DIM)
    t0 = time.perf_counter()
    for j in range(HNSW_APPENDS):
        extended.add("u", KIND_DESC, HNSW_N + j, tail[j])
        ids_all.append(HNSW_N + j)
        extended.search_among(
            "u", KIND_DESC, ids_all, queries[j % HNSW_QUERIES], HNSW_K
        )
    extend_seconds = time.perf_counter() - t0
    assert extended.builds == 1  # never rebuilt
    assert extended.extends == HNSW_APPENDS

    rebuilt = HNSWBackend(hindex, rebuild_fraction=0.0)
    t0 = time.perf_counter()
    rebuilt.search_among("u", KIND_DESC, ids_all, queries[0], HNSW_K)
    rebuild_seconds = time.perf_counter() - t0
    assert rebuilt.builds == 1
    for q in queries:
        got_ids, got_scores = extended.search_among(
            "u", KIND_DESC, ids_all, q, HNSW_K
        )
        want_ids, want_scores = rebuilt.search_among(
            "u", KIND_DESC, ids_all, q, HNSW_K
        )
        assert got_ids == want_ids
        assert np.array_equal(got_scores, want_scores)
    # the old world rebuilt the graph once per insert
    hnsw_x = (HNSW_APPENDS * rebuild_seconds) / extend_seconds

    payload = {
        "benchmark": "incremental_persist",
        "config": {
            "tenants": TENANTS,
            "per_tenant": PER_TENANT,
            "dim": DIM,
            "adds": K_ADDS,
            "removes": K_REMOVES,
            "foreign_tenants": FOREIGN_TENANTS,
            "foreign_rows": FOREIGN_TENANTS * FOREIGN_ROWS,
        },
        "bytes_per_mutation": {
            "whole_snapshot": snapshot_bytes,
            "incremental": round(incremental_per_mut, 1),
            "journal_bytes": meter.delta_bytes,
            "compaction_bytes": meter.upsert_bytes,
            "journal_appends": meter.delta_appends,
            "compactions": report["journal"]["compactions"],
            "improvement_x": round(improvement_x, 1),
        },
        "warm_attach": {
            "mode": warm_mode,
            "warm_seconds": round(warm_seconds, 4),
            "cold_seconds": round(cold_seconds, 4),
            "speedup_x": round(attach_x, 1),
            "all_pes_calls": 0,
            "rebuilt_tenants": len(stale_tenants),
            "bitwise_identical": True,
        },
        "hnsw_insert": {
            "shard_rows": HNSW_N,
            "dim": HNSW_DIM,
            "appends": HNSW_APPENDS,
            "build_seconds": round(build_seconds, 4),
            "extend_total_seconds": round(extend_seconds, 4),
            "rebuild_each_seconds": round(rebuild_seconds, 4),
            "speedup_x": round(hnsw_x, 1),
            "bitwise_identical_to_rebuild": True,
        },
    }
    (out_dir / "BENCH_incremental_persist.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "incremental_persist",
        "\n".join(
            [
                f"Incremental shard persistence  (N={TENANTS * PER_TENANT}, "
                f"d={DIM}, {mutations} scattered writes)",
                f"{'whole-snapshot persist':<34}"
                f"{snapshot_bytes / 1024:>9.1f} KiB/mutation",
                f"{'delta journal + compaction':<34}"
                f"{incremental_per_mut / 1024:>9.1f} KiB/mutation"
                f"   {improvement_x:.0f}x less",
                "",
                f"Warm attach after foreign writes  "
                f"({len(stale_tenants)} of {TENANTS} tenants stale)",
                f"{'O(corpus) rebuild':<34}{cold_seconds * 1000:>9.1f} ms",
                f"{'delta replay + per-owner rebuild':<34}"
                f"{warm_seconds * 1000:>9.1f} ms"
                f"   {attach_x:.1f}x, 0 all_pes() calls",
                "",
                f"HNSW insert-time builds  (shard={HNSW_N}, "
                f"{HNSW_APPENDS} appends)",
                f"{'rebuild per insert':<34}"
                f"{HNSW_APPENDS * rebuild_seconds * 1000:>9.1f} ms",
                f"{'extend in place':<34}{extend_seconds * 1000:>9.1f} ms"
                f"   {hnsw_x:.1f}x, bitwise = rebuild",
            ]
        ),
    )
    # the acceptance bar: >= 10x lower bytes written per mutation
    assert improvement_x >= 10.0, payload["bytes_per_mutation"]
