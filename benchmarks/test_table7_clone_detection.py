"""Table 7 — zero-shot clone detection (MAP@100 / Precision@1).

Benchmarks all seven paper models on the CodeNet-like clone corpus and
asserts the paper's shape: ReACC-retriever-py wins Precision@1 (the
metric the paper selects it by), unixcoder-clone-detection wins MAP@100,
CodeBERT trails, GraphCodeBERT's dataflow signal lifts it clearly above
CodeBERT.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_codenet
from repro.evalharness.experiments import (
    TABLE7_MODELS,
    _fit_for_policy,
    run_table7,
)
from repro.evalharness.metrics import evaluate_retrieval
from repro.evalharness.reporting import check
from repro.ml.models import get_model


@pytest.fixture(scope="module")
def codenet():
    return build_codenet()


@pytest.mark.parametrize(
    "label,zoo_name,policy", TABLE7_MODELS, ids=[m[0] for m in TABLE7_MODELS]
)
def test_model_retrieval(benchmark, codenet, label, zoo_name, policy):
    """Time the full embed+rank evaluation for one model."""
    benchmark.group = "table7-models"
    model = get_model(zoo_name)
    _fit_for_policy(model, policy, codenet)
    scores = benchmark.pedantic(
        lambda: evaluate_retrieval(
            model, codenet, query_kind="code", corpus_kind="code"
        ),
        rounds=2,
        iterations=1,
    )
    assert 0.0 <= scores.map_at_100 <= 1.0
    assert 0.0 <= scores.p_at_1 <= 1.0


def test_table7_report(benchmark, record):
    result = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    lines = [result["table"], ""]
    lines += [check(label, ok) for label, ok in result["checks"].items()]
    record("table7", "\n".join(lines))
    assert all(result["checks"].values()), result["checks"]
