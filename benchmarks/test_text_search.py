"""Indexed text ranking: FTS5/BM25 top-k vs the legacy Python scan.

``queryType=text`` used to hydrate a LIKE-filtered candidate superset
and score it record by record in Python; the v1 route now asks the DAO
for the owner-joined BM25 top-k directly (SQLite FTS5) and hydrates
only the ``k`` winners.  This benchmark measures that swap on an
N>=5000 SQLite registry with a Zipf-ish shared vocabulary (realistic
corpora repeat their domain words, which is exactly what makes the
LIKE-superset path hydrate large candidate sets):

* **scan QPS** — the legacy serving shape: ``text_candidate_pes``
  (chunked LIKE superset) + ``text_search_pes`` (the Python scorer);
* **fts QPS** — ``RegistryService.text_topk_pes`` at ``k=10``: DAO-side
  BM25 ranking, O(k) hydration.

Gate: fts QPS >= 5x scan QPS, with every fts page at most ``k`` rows.

Emits ``BENCH_fts.json``.
"""

from __future__ import annotations

import json
import time

from repro.registry.dao import SqliteDAO
from repro.registry.entities import PERecord
from repro.registry.service import RegistryService
from repro.search.text_search import text_search_pes

N = 5000
K = 10
N_QUERIES = 40
ROUNDS = 3  # interleaved best-of rounds (single-core QPS is noisy)

#: domain vocabulary the descriptions draw from; a handful of hot words
#: (repeated weights) gives the corpus a realistic skewed frequency
VOCAB = (
    ["stream", "prime", "filter", "tuple", "matrix", "graph"] * 8
    + [f"term{i:03d}" for i in range(180)]
)


def _descriptions() -> list[str]:
    # deterministic linear-congruential walk over the vocabulary: no
    # RNG dependency, stable across runs
    state = 41
    out = []
    for i in range(N):
        words = []
        for _ in range(8):
            state = (state * 1103515245 + 12345) % (2**31)
            words.append(VOCAB[state % len(VOCAB)])
        out.append(" ".join(words))
    return out


def _queries() -> list[str]:
    state = 17
    out = []
    for _ in range(N_QUERIES):
        state = (state * 1103515245 + 12345) % (2**31)
        first = VOCAB[state % len(VOCAB)]
        state = (state * 1103515245 + 12345) % (2**31)
        second = VOCAB[state % len(VOCAB)]
        out.append(f"{first} {second}")
    return out


def _scan_qps(service, user, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        text_search_pes(query, service.text_candidate_pes(user, query))
    return len(queries) / (time.perf_counter() - start)


def _fts_qps(service, user, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        hits = service.text_topk_pes(user, query, K)
        assert len(hits) <= K  # O(k) hydration, never the match set
    return len(queries) / (time.perf_counter() - start)


def test_fts_topk_vs_python_scan(record, out_dir, tmp_path):
    dao = SqliteDAO(tmp_path / "fts_bench.db")
    service = RegistryService(dao)
    user = service.register_user("bench", "pw")
    records = [
        PERecord(
            pe_id=0,
            pe_name=f"pe{i:05d}",
            description=description,
            pe_code=f"def pe{i:05d}(): pass",
        )
        for i, description in enumerate(_descriptions())
    ]
    service.register_pes_bulk(user, records)
    queries = _queries()

    # sanity: the indexed top-k is the head of a real ranking — every
    # winner is a record the scorer-side matcher also matches
    probe = queries[0]
    top = service.text_topk_pes(user, probe, K)
    assert 0 < len(top) <= K
    scan_hits = text_search_pes(probe, service.text_candidate_pes(user, probe))
    scan_ids = {m.entity_id for m in scan_hits}
    assert {pe.pe_id for pe, _ in top} <= scan_ids

    scan_qps = fts_qps = 0.0
    for _ in range(ROUNDS):
        scan_qps = max(scan_qps, _scan_qps(service, user, queries))
        fts_qps = max(fts_qps, _fts_qps(service, user, queries))
    speedup = fts_qps / scan_qps

    text = "\n".join(
        [
            f"Text ranking: FTS5/BM25 top-{K} vs legacy Python scan "
            f"(N={N} PEs, SQLite, {N_QUERIES} queries)",
            f"  scan QPS: {scan_qps:,.1f}   "
            "(LIKE candidate superset + Python scorer)",
            f"  fts  QPS: {fts_qps:,.1f}   "
            f"({speedup:.1f}x, gate: >= 5x; hydrates <= {K} rows/query)",
        ]
    )
    record("BENCH_fts", text)
    (out_dir / "BENCH_fts.json").write_text(
        json.dumps(
            {
                "benchmark": "fts_text_search",
                "n": N,
                "k": K,
                "n_queries": N_QUERIES,
                "rounds": ROUNDS,
                "scan_qps": round(scan_qps, 1),
                "fts_qps": round(fts_qps, 1),
                "speedup": round(speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= 5.0, f"FTS speedup {speedup:.2f}x below the 5x gate"
