"""Ablation A1 — stored embeddings vs re-embedding the corpus per query.

The paper's §3.1.1 design claim: "Storing these embeddings allows us to
perform efficient semantic code searches ... without the need to
re-calculate them every time a user initiates a search.  This re-use of
embeddings significantly enhances the responsiveness of our system."
This benchmark quantifies exactly that claim on a Figure-7-sized
registry and asserts the speedup is real.
"""

from __future__ import annotations

import pytest

from repro.datasets.codebank import PROBLEMS
from repro.ml.models import UnixCoderCodeSearch
from repro.registry.entities import PERecord
from repro.search import SemanticSearcher

QUERY = "a PE that checks if a number is prime"


@pytest.fixture(scope="module")
def registry_pes():
    """A registry population with descriptions from the code bank."""
    searcher = SemanticSearcher(UnixCoderCodeSearch())
    records = []
    for i, problem in enumerate(PROBLEMS, 1):
        record = PERecord(
            pe_id=i,
            pe_name=problem.key,
            description=problem.docstring,
            pe_code="eA==",
        )
        record.desc_embedding = searcher.embed_description(record.description)
        records.append(record)
    return searcher, records


def test_search_with_stored_embeddings(benchmark, registry_pes):
    benchmark.group = "embedding-reuse"
    searcher, records = registry_pes
    hits = benchmark(lambda: searcher.search(QUERY, records, k=5))
    assert hits[0].pe_name == "is_prime"


def test_search_recomputing_embeddings(benchmark, registry_pes):
    benchmark.group = "embedding-reuse"
    searcher, records = registry_pes

    def recompute_path():
        # fresh embedding-less records every iteration: the searcher now
        # caches fallback vectors back onto records, so reusing one
        # stripped list would only re-embed on the first query
        stripped = [
            PERecord(
                pe_id=r.pe_id,
                pe_name=r.pe_name,
                description=r.description,
                pe_code=r.pe_code,
            )
            for r in records
        ]
        return searcher.search(QUERY, stripped, k=5)

    hits = benchmark(recompute_path)
    assert hits[0].pe_name == "is_prime"


def test_reuse_speedup_report(benchmark, registry_pes, record):
    import time

    searcher, records = registry_pes
    stripped = [
        PERecord(
            pe_id=r.pe_id, pe_name=r.pe_name,
            description=r.description, pe_code=r.pe_code,
        )
        for r in records
    ]

    def measure():
        t0 = time.perf_counter()
        for _ in range(20):
            searcher.search(QUERY, records, k=5)
        stored = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(20):
            # re-strip every query: the searcher caches fallback vectors
            # back onto records, and this arm measures the paper's
            # counterfactual of re-embedding the corpus per query
            for r in stripped:
                r.desc_embedding = None
            searcher.search(QUERY, stripped, k=5)
        recomputed = time.perf_counter() - t0
        return stored, recomputed

    stored, recomputed = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_embedding_reuse",
        "Semantic search over a %d-PE registry (20 queries):\n"
        "  stored embeddings (paper design): %.4fs\n"
        "  re-embedding per query:           %.4fs\n"
        "  speedup: %.1fx" % (len(records), stored, recomputed, recomputed / stored),
    )
    assert stored < recomputed
