"""Scatter/gather fan-out: QPS scaling 1 -> N shard workers + tail latency.

Whole (user, kind) slabs are placed on shard workers by a deterministic
hash (never row-partitioned — BLAS sub-slab products differ in the last
ulp, see ``repro.search.scatter``), so fan-out parallelism comes from
*different* tenants' queries landing on different workers, each with its
own index lock.  This benchmark drives a multi-tenant query mix from
concurrent client threads at the single-process exact index and at
scatter backends over 1, 2 and 4 workers, verifies every scatter answer
is bitwise identical to the reference, and emits ``BENCH_scatter.json``
(QPS per worker count plus p50/p95/p99 tail latency).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.search.index import KIND_DESC, VectorIndex
from repro.search.scatter import ScatterGatherBackend, assign_worker

N_USERS = 16  # tenants, hashed across the shard workers
ROWS = 400  # rows per tenant slab
DIM = 512
K = 10
N_QUERIES = 240  # multi-tenant query mix per measured pass
CLIENTS = 8  # concurrent client threads
WORKER_COUNTS = (1, 2, 4)


def _slabs(rng: np.random.Generator) -> dict[int, np.ndarray]:
    return {
        user: rng.standard_normal((ROWS, DIM)).astype(np.float32)
        for user in range(1, N_USERS + 1)
    }


def _populate(target, slabs) -> None:
    rids = list(range(1, ROWS + 1))
    for user, vectors in slabs.items():
        target.add_many(user, KIND_DESC, rids, vectors)


def _query_mix(rng: np.random.Generator) -> list[tuple[int, np.ndarray]]:
    users = rng.integers(1, N_USERS + 1, size=N_QUERIES)
    vectors = rng.standard_normal((N_QUERIES, DIM)).astype(np.float32)
    return [(int(u), vectors[i]) for i, u in enumerate(users)]


def _drive(backend, mix) -> tuple[float, np.ndarray]:
    """Issue the mix from CLIENTS threads; return (QPS, latency samples)."""
    rids = list(range(1, ROWS + 1))
    latencies = np.zeros(len(mix))

    def one(arg):
        n, (user, qvec) = arg
        start = time.perf_counter()
        result = backend.search_among(user, KIND_DESC, rids, qvec, K)
        latencies[n] = time.perf_counter() - start
        return result

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        start = time.perf_counter()
        results = list(pool.map(one, enumerate(mix)))
        wall = time.perf_counter() - start
    assert all(r is not None for r in results)
    return len(mix) / wall, latencies


def _percentiles(latencies: np.ndarray) -> dict[str, float]:
    return {
        f"p{p}_ms": round(float(np.percentile(latencies, p)) * 1e3, 3)
        for p in (50, 95, 99)
    }


def test_scatter_fanout(record, out_dir):
    rng = np.random.default_rng(2026)
    slabs = _slabs(rng)
    mix = _query_mix(rng)
    rids = list(range(1, ROWS + 1))

    reference = VectorIndex()
    _populate(reference, slabs)

    rows: list[dict] = []
    baseline_qps, base_lat = _drive(reference, mix)
    rows.append(
        {"config": "single-process exact", "workers": 0,
         "qps": round(baseline_qps, 1), **_percentiles(base_lat)}
    )

    for n_workers in WORKER_COUNTS:
        scatter = ScatterGatherBackend(shards=n_workers)
        _populate(scatter, slabs)
        # bitwise parity before timing: every worker answer must merge
        # to exactly the reference ranking
        for user, qvec in mix[:24]:
            want = reference.search_among(user, KIND_DESC, rids, qvec, K)
            got = scatter.search_among(user, KIND_DESC, rids, qvec, K)
            assert got[0] == want[0]
            assert got[1].tobytes() == want[1].tobytes(), (
                f"scatter over {n_workers} workers diverged bitwise"
            )
        qps, lat = _drive(scatter, mix)
        occupancy = len(
            {assign_worker(u, KIND_DESC, n_workers) for u in slabs}
        )
        rows.append(
            {"config": f"scatter/{n_workers} workers", "workers": n_workers,
             "qps": round(qps, 1), "workers_hit": occupancy,
             **_percentiles(lat)}
        )

    lines = [
        f"scatter/gather fan-out — {N_USERS} tenants x {ROWS} rows, "
        f"D={DIM}, k={K}, {N_QUERIES} queries from {CLIENTS} client threads",
        "",
        f"{'configuration':<28}{'QPS':>10}{'p50':>10}{'p95':>10}{'p99':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['config']:<28}{row['qps']:>10.1f}"
            f"{row['p50_ms']:>8.2f}ms{row['p95_ms']:>8.2f}ms"
            f"{row['p99_ms']:>8.2f}ms"
        )
    lines += [
        "",
        "every scatter configuration verified bitwise-identical to the"
        " single-process exact reference",
    ]
    record("scatter_fanout", "\n".join(lines))

    (out_dir / "BENCH_scatter.json").write_text(
        json.dumps(
            {
                "benchmark": "scatter_fanout",
                "n_users": N_USERS,
                "rows_per_user": ROWS,
                "dim": DIM,
                "k": K,
                "n_queries": N_QUERIES,
                "client_threads": CLIENTS,
                "bitwise_identical": True,
                "configs": rows,
            },
            indent=2,
        )
        + "\n"
    )

    # the contract is correctness under fan-out, not a speedup claim:
    # local workers share the process (BLAS already releases the GIL),
    # so QPS must simply stay in family with the single-process baseline
    for row in rows[1:]:
        assert row["qps"] >= baseline_qps * 0.25, (
            f"{row['config']} collapsed to {row['qps']} QPS "
            f"(baseline {baseline_qps:.1f})"
        )
