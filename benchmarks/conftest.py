"""Shared benchmark fixtures and result recording.

Every benchmark writes its paper-style table into ``benchmarks/out/`` so
EXPERIMENTS.md can cite concrete transcripts, and prints it so the
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` run keeps
a full record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"
_BENCH_DIR = str(Path(__file__).parent.resolve())


def pytest_collection_modifyitems(config, items):
    """Every test under benchmarks/ is ``slow``.

    The tier-1 suite (`pytest` with the repo default ``-m "not slow"``,
    see pytest.ini) then deselects the benchmarks; run them explicitly
    with ``pytest benchmarks/ -m slow``.
    """
    for item in items:
        if str(item.path).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def record(out_dir):
    """record(name, text): persist and echo one benchmark transcript."""

    def _record(name: str, text: str) -> None:
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
