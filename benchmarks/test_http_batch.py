"""Concurrent HTTP serving: micro-batched vs single-shot + cold start.

Two measurements for the concurrent serving layer, emitted as the
``BENCH_http_batch.json`` trajectory point:

* **Concurrent throughput** — T keep-alive client threads hammer
  ``/registry/{user}/search`` on a real ``serve_http`` socket against an
  N≈3000-record SQLite registry, once with the micro-batcher disabled
  (window 0: every request flushes alone, the single-shot baseline) and
  once enabled.  Batching amortizes the owned-id projection, the shard
  membership check and the top-k hydration across each batch; results
  must stay bitwise identical to the single-shot path *and* the
  brute-force scan.
* **Cold start** — attaching a ``VectorIndex`` to the same registry
  from the persisted slab snapshot (zero ``all_pes()`` calls) vs the
  O(corpus) rebuild.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np

from repro.ml.bundle import ModelBundle
from repro.registry.dao import SqliteDAO
from repro.registry.entities import PERecord
from repro.registry.service import RegistryService
from repro.search import VectorIndex
from repro.server import LaminarServer
from repro.server.http import serve_http

N_USER = 3000  # records owned by the searching user
N_OTHER = 500  # another tenant's records
DIM = 2048  # matches the embedders' default dimensionality
K = 10
THREADS = 12
REQUESTS_PER_THREAD = 30
QUERY_POOL = [f"synthetic element {i}" for i in range(16)]


def _unit_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    matrix = rng.standard_normal((n, DIM)).astype(np.float32)
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def _build_registry(path) -> None:
    rng = np.random.default_rng(2026)
    dao = SqliteDAO(path)
    service = RegistryService(dao)
    alice = service.register_user("alice", "pw")
    bob = service.register_user("bob", "pw")
    for user, count in ((alice, N_USER), (bob, N_OTHER)):
        vectors = _unit_rows(rng, count)
        records = [
            PERecord(
                pe_id=0,
                pe_name=f"{user.user_name}-PE{i}",
                description=f"synthetic element {i} of {user.user_name}",
                pe_code=f"{user.user_name}:{i}".encode("ascii").hex(),
                desc_embedding=vectors[i],
                owners={user.user_id},
            )
            for i in range(count)
        ]
        dao.insert_pes(records)
    dao.close()


class _AttachCounter:
    """DAO proxy counting the full-corpus deserialization passes."""

    def __init__(self, inner):
        self.inner = inner
        self.all_pes_calls = 0

    def __getattr__(self, name):
        attr = getattr(self.inner, name)
        if name == "all_pes":
            def wrapped(*a, **kw):
                self.all_pes_calls += 1
                return attr(*a, **kw)
            return wrapped
        return attr


def _serve(path, *, window: float, max_batch: int = 32):
    server = LaminarServer(
        dao=SqliteDAO(path),
        models=ModelBundle.default(fit=False),
        search_batch_window=window,
        search_batch_max=max_batch,
    )
    token = server.issue_token("alice")
    handle = serve_http(server)
    return server, handle, token


def _search_once(conn, token, query, k=K):
    payload = json.dumps({"queryType": "semantic", "k": k}).encode()
    conn.request(
        "GET",
        f"/registry/alice/search/{query.replace(' ', '%20')}/type/pe",
        body=payload,
        headers={
            "Content-Type": "application/json",
            "Authorization": f"Bearer {token}",
        },
    )
    reply = conn.getresponse()
    body = json.loads(reply.read().decode())
    assert reply.status == 200, body
    return body["hits"]


def _hammer(handle, token) -> tuple[float, float]:
    """T threads x R keep-alive requests; returns (seconds, req/s)."""
    barrier = threading.Barrier(THREADS + 1)
    errors: list[Exception] = []

    def worker(tid: int) -> None:
        try:
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=60
            )
            # connection + embedding warmup outside the timed region
            _search_once(conn, token, QUERY_POOL[tid % len(QUERY_POOL)])
            barrier.wait()  # start line
            for i in range(REQUESTS_PER_THREAD):
                _search_once(
                    conn, token, QUERY_POOL[(tid + i) % len(QUERY_POOL)]
                )
            barrier.wait()  # finish line
            conn.close()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(THREADS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    barrier.wait()
    elapsed = time.perf_counter() - start
    for t in threads:
        t.join()
    assert not errors, errors
    total = THREADS * REQUESTS_PER_THREAD
    return elapsed, total / elapsed


def _hammer_best(handle, token, rounds: int = 2) -> tuple[float, float]:
    """Best-of-N rounds: damps load spikes from the shared machine."""
    runs = [_hammer(handle, token) for _ in range(rounds)]
    return min(runs, key=lambda r: r[0])


def test_http_micro_batching_and_cold_start(tmp_path, record, out_dir):
    db = tmp_path / "bench.db"
    _build_registry(db)

    # -- single-shot baseline (window 0: no coalescing) -----------------
    server_s, handle_s, token_s = _serve(db, window=0.0)
    conn = http.client.HTTPConnection(handle_s.host, handle_s.port, timeout=60)
    single_hits = {q: _search_once(conn, token_s, q) for q in QUERY_POOL}
    conn.close()
    # brute-force reference over the fully materialized corpus
    alice = server_s.registry.get_user("alice")
    corpus = server_s.registry.user_pes(alice)
    for query in QUERY_POOL:
        brute = server_s.semantic.search(query, corpus, k=K)
        assert single_hits[query] == [h.to_json() for h in brute]
    single_seconds, single_rps = _hammer_best(handle_s, token_s)
    single_stats = server_s.batcher.stats()
    handle_s.shutdown()

    # -- micro-batched serving ------------------------------------------
    server_b, handle_b, token_b = _serve(db, window=0.005)
    conn = http.client.HTTPConnection(handle_b.host, handle_b.port, timeout=60)
    batched_hits = {q: _search_once(conn, token_b, q) for q in QUERY_POOL}
    conn.close()
    # bitwise-identical: same ids, same (rounded-from-identical-float)
    # scores as both the single-shot serving path and the brute force
    assert batched_hits == single_hits
    batched_seconds, batched_rps = _hammer_best(handle_b, token_b)
    batched_stats = server_b.batcher.stats()
    handle_b.shutdown()

    throughput_x = batched_rps / single_rps

    # -- cold start: persisted slabs vs O(corpus) rebuild ---------------
    warm_dao = _AttachCounter(SqliteDAO(db))
    warm_service = RegistryService(warm_dao)
    t0 = time.perf_counter()
    warm_mode = warm_service.attach_index(VectorIndex(), persist=False)
    warm_seconds = time.perf_counter() - t0
    assert warm_mode == "fresh"
    assert warm_dao.all_pes_calls == 0  # zero full-corpus deserialization
    warm_dao.inner.close()

    cold_dao = SqliteDAO(db)
    with cold_dao._lock, cold_dao._conn:
        cold_dao._conn.execute("DELETE FROM index_shards")
    cold_counter = _AttachCounter(cold_dao)
    cold_service = RegistryService(cold_counter)
    t0 = time.perf_counter()
    cold_mode = cold_service.attach_index(VectorIndex())  # also re-persists
    cold_seconds = time.perf_counter() - t0
    assert cold_mode == "rebuilt"
    assert cold_counter.all_pes_calls == 1
    cold_dao.close()
    attach_x = cold_seconds / warm_seconds

    payload = {
        "benchmark": "http_batch",
        "config": {
            "n_user": N_USER,
            "n_other": N_OTHER,
            "dim": DIM,
            "k": K,
            "threads": THREADS,
            "requests_per_thread": REQUESTS_PER_THREAD,
            "query_pool": len(QUERY_POOL),
            "batch_window_s": 0.005,
        },
        "throughput": {
            "single_shot_rps": round(single_rps, 1),
            "batched_rps": round(batched_rps, 1),
            "single_shot_seconds": round(single_seconds, 3),
            "batched_seconds": round(batched_seconds, 3),
            "speedup_x": round(throughput_x, 2),
            "single_stats": single_stats,
            "batched_stats": batched_stats,
        },
        "cold_start": {
            "warm_attach_seconds": round(warm_seconds, 4),
            "cold_attach_seconds": round(cold_seconds, 4),
            "speedup_x": round(attach_x, 1),
            "warm_all_pes_calls": 0,
        },
        "bitwise_identical": True,
    }
    (out_dir / "BENCH_http_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "http_batch",
        "\n".join(
            [
                f"Concurrent HTTP search serving  (N={N_USER}, d={DIM}, "
                f"k={K}, {THREADS} threads x {REQUESTS_PER_THREAD} reqs)",
                f"{'single-shot (window=0)':<34}{single_rps:>9.1f} req/s",
                f"{'micro-batched (window=5ms)':<34}{batched_rps:>9.1f} req/s"
                f"   {throughput_x:.2f}x",
                f"{'largest batch coalesced':<34}"
                f"{batched_stats['largestBatch']:>9d}",
                "",
                f"Cold-start attach  (same registry, persisted slabs)",
                f"{'rebuild (no snapshot)':<34}{cold_seconds * 1000:>9.1f} ms",
                f"{'persisted slabs (fresh)':<34}{warm_seconds * 1000:>9.1f} ms"
                f"   {attach_x:.1f}x, 0 all_pes() calls",
            ]
        ),
    )
    # the acceptance bar: >=2x concurrent throughput from micro-batching
    assert throughput_x >= 2.0, payload["throughput"]
