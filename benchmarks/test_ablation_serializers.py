"""Ablation A2 — serializer choice (cloudpickle vs pickle vs source).

Quantifies the trade-off behind the paper's §3.4.2 decision: stdlib
pickle is fastest but cannot serialize interactively defined PE classes
at all; source text is compact but loses object state; cloudpickle
(the paper's choice) handles every case at moderate cost.
"""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.serialization.codec import deserialize_object, serialize_with
from repro.workflows.isprime import build_isprime_graph
from tests.helpers import build_pipeline_graph


@pytest.mark.parametrize("codec", ["cloudpickle", "pickle"])
def test_graph_serialize_speed(benchmark, codec):
    benchmark.group = "serializer-encode"
    graph = build_isprime_graph()
    payload = benchmark(lambda: serialize_with(graph, codec))
    assert isinstance(payload, str)


@pytest.mark.parametrize("codec", ["cloudpickle", "pickle"])
def test_graph_round_trip_speed(benchmark, codec):
    benchmark.group = "serializer-roundtrip"
    graph = build_pipeline_graph()

    def round_trip():
        return deserialize_object(serialize_with(graph, codec))

    restored = benchmark(round_trip)
    assert len(restored) == len(graph)


def test_source_codec_speed(benchmark):
    benchmark.group = "serializer-encode"
    from repro.workflows.isprime import NumberProducer

    text = benchmark(lambda: serialize_with(NumberProducer, "source"))
    assert "class NumberProducer" in text


def test_capability_matrix_report(benchmark, record):
    """The qualitative half of the ablation: what each codec CAN ship."""

    def probe():
        namespace = {}
        exec(
            "from repro.dataflow.core import IterativePE\n"
            "class InteractivePE(IterativePE):\n"
            "    def _process(self, x):\n"
            "        return x\n",
            namespace,
        )
        interactive = namespace["InteractivePE"]
        rows = []
        for codec in ("cloudpickle", "pickle", "source"):
            try:
                serialize_with(interactive, codec)
                outcome = "ok"
            except SerializationError:
                outcome = "FAILS"
            rows.append((codec, outcome))
        return rows

    rows = benchmark.pedantic(probe, rounds=1, iterations=1)
    outcomes = dict(rows)
    record(
        "ablation_serializers",
        "Shipping an interactively defined PE class:\n"
        + "\n".join(f"  {codec:12s} {result}" for codec, result in rows),
    )
    # the paper's finding: only cloudpickle handles the serverless case
    assert outcomes["cloudpickle"] == "ok"
    assert outcomes["pickle"] == "FAILS"
