"""Setup shim.

The execution environment has setuptools but no ``wheel`` package, so the
PEP 660 editable-install path (which builds an editable wheel) fails
offline.  This shim enables the legacy ``pip install -e . --no-use-pep517``
path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
