"""Setup shim.

The execution environment has setuptools but no ``wheel`` package, so the
PEP 660 editable-install path (which builds an editable wheel) fails
offline.  This shim enables the legacy ``pip install -e . --no-use-pep517``
path; all metadata lives in pyproject.toml.

Test tiers (configured in pytest.ini + benchmarks/conftest.py):

* tier-1 (default): ``python -m pytest -x -q`` — unit/integration tests
  only; everything under benchmarks/ carries the ``slow`` marker and is
  deselected by the default ``-m "not slow"``.
* benchmarks: ``python -m pytest benchmarks/ -m slow``.
"""

from setuptools import setup

setup()
