"""Multiple Execution Engines (paper §3.3 / §8 future work, implemented).

The paper notes that registering multiple Execution Engines "currently
involves manual intervention" and plans it as future work.  This
reproduction implements it: engines are registered through the client,
runs can be pinned to an engine, and unpinned runs are load-balanced.

Run:  python examples/multi_engine.py
"""

from repro import LaminarClient, local_stack
from repro.workflows.isprime import build_isprime_graph


def main() -> None:
    client = LaminarClient(local_stack(), echo=False)
    client.register("ops", "password")
    client.login("ops", "password")

    # register a WAN-shaped "cloud" engine next to the default local one
    client.register_Engine(
        "azure", latency="azure-wan", description="Dockerized engine on Azure"
    )
    client.register_Engine(
        "hpc", latency="lan", description="campus cluster engine"
    )

    print("registered engines:")
    for engine in client.get_Engines():
        print(f"  {engine['name']:8s} latency={engine['latency']:12s} "
              f"{engine['description']}")

    graph = build_isprime_graph()
    client.register_Workflow(graph, "isPrime", "prints random primes")

    # pinned run: explicitly target the cloud engine
    outcome = client.run("isPrime", input=5, engine="azure")
    print(f"\npinned run executed on: {outcome.engine_name}")

    # unpinned runs: the pool load-balances by invocation count
    placements = [client.run("isPrime", input=2).engine_name for _ in range(6)]
    print(f"unpinned runs placed on: {placements}")

    counts = {name: placements.count(name) for name in set(placements)}
    print(f"placement counts: {counts}")


if __name__ == "__main__":
    main()
