"""Deep-learning model evaluation (paper §6.2, Tables 6 and 7).

Reproduces both model studies on the synthetic corpora:

* Table 6 — zero-shot text-to-code search MRR (CoSQA-like / CSN-like),
  base vs fine-tuned UnixCoder;
* Table 7 — zero-shot clone detection MAP@100 / Precision@1 across the
  seven-model zoo.

Run:  python examples/model_evaluation.py
"""

from repro.evalharness.experiments import run_table6, run_table7


def main() -> None:
    print("evaluating Table 6 (text-to-code search)...\n")
    table6 = run_table6()
    print(table6["table"])
    for label, ok in table6["checks"].items():
        print(f"  [{'OK' if ok else 'MISS'}] {label}")

    print("\nevaluating Table 7 (clone detection, 7 models)...\n")
    table7 = run_table7()
    print(table7["table"])
    for label, ok in table7["checks"].items():
        print(f"  [{'OK' if ok else 'MISS'}] {label}")

    print(
        "\nNote: absolute scores exceed the paper's because the synthetic"
        "\ncorpus is ~170 solutions vs CodeNet's 14M samples — see"
        "\nEXPERIMENTS.md for the shape-level comparison."
    )


if __name__ == "__main__":
    main()
