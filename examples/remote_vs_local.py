"""Local vs remote Execution Engine latency (paper §6.1 / Table 5).

Runs the Internal Extinction workflow through three deployments —
plain dispel4py, Laminar with a local engine (LAN-shaped registry hop),
and Laminar with an Azure-like remote engine (WAN-shaped transport) —
and prints the Table 5 comparison at laptop scale.

Run:  python examples/remote_vs_local.py
"""

from repro.evalharness.experiments import Table5Config, run_table5
from repro.evalharness.reporting import environment_header


def main() -> None:
    print(environment_header())
    config = Table5Config(
        n_galaxies=30,
        votable_latency_s=0.01,
        nprocs=5,
        fetch_hint=3,
        install_scale=0.002,
    )
    print(
        f"\nworkload: {config.n_galaxies} galaxies, "
        f"{config.votable_latency_s * 1000:.0f}ms per VOTable download, "
        f"{config.nprocs} processes for Multi\n"
    )
    result = run_table5(config)
    print(result["table"])
    print()
    for label, ok in result["checks"].items():
        print(f"  [{'OK' if ok else 'MISS'}] {label}")

    times = result["times"]
    original = times["original dispel4py"]
    local = times["Local Execution (with Laminar)"]
    remote = times["Remote Execution (with Laminar)"]
    print("\noverheads vs original dispel4py (Simple mapping):")
    print(f"  Laminar local:  +{(local['simple'] / original['simple'] - 1) * 100:.0f}%")
    print(f"  Laminar remote: +{(remote['simple'] / original['simple'] - 1) * 100:.0f}%")


if __name__ == "__main__":
    main()
