"""The IsPrime showcase with the Multi mapping (paper §5.1).

Reproduces Figure 1 (the abstract workflow and its concrete expansion
onto five processes), Listing 4 (the run call) and Figure 9 (the output
the Execution Engine ships back to the Client).

Run:  python examples/isprime_multi.py
"""

from repro import LaminarClient, local_stack
from repro.dataflow.partition import build_concrete_workflow
from repro.dataflow.visualization import (
    abstract_to_ascii,
    concrete_to_ascii,
    concrete_to_dot,
)
from repro.workflows.isprime import build_isprime_graph


def main() -> None:
    graph = build_isprime_graph()

    # ------ Figure 1: abstract (user view) vs concrete (enactment view)
    print(abstract_to_ascii(graph))
    print()
    workflow = build_concrete_workflow(graph, nprocs=5)
    print(concrete_to_ascii(workflow))
    print("\nGraphviz DOT of the concrete workflow:\n")
    print(concrete_to_dot(workflow))

    # ------ Listing 4: execute with Multi mapping, 5 iterations, 5 procs
    client = LaminarClient(local_stack())
    client.register("zz46", "password")
    client.login("zz46", "password")

    print("\nrunning isPrime with MULTI mapping (input=5, num=5)...\n")
    outcome = client.run(
        build_isprime_graph(), input=5, process="MULTI", args={"num": 5}
    )

    # ------ Figure 9: the engine's output, returned to the client
    print("\n" + outcome.summary())


if __name__ == "__main__":
    main()
