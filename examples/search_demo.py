"""Registry search and exploration (paper §4, Figures 6-8).

Populates the registry like the paper's Figure 7 scenario — 22 PEs and
five workflows — then runs all three search mechanisms:

* text-based search for 'prime' over workflows        (Figure 6)
* semantic search for a natural-language PE query     (Figure 7)
* code-completion search for a code fragment          (Figure 8)

Run:  python examples/search_demo.py
"""

from repro import LaminarClient, local_stack
from repro.dataflow import WorkflowGraph
from repro.workflows.astrophysics import build_internal_extinction_graph
from repro.workflows.isprime import build_isprime_graph
from repro.workflows.library import (
    ALL_LIBRARY_PES,
    CollectList,
    CountWords,
    CounterProducer,
    GaussianProducer,
    IsEven,
    SentenceProducer,
    SquareNumber,
    StreamStatistics,
    Tokenizer,
)


def build_five_workflows() -> list[tuple[WorkflowGraph, str, str]]:
    """The five registered workflows of the Figure 7 scenario."""
    wordcount = WorkflowGraph("wordCount")
    sentences, tokens, counts = SentenceProducer(), Tokenizer(), CountWords()
    wordcount.connect(sentences, "output", tokens, "input")
    wordcount.connect(tokens, "output", counts, "input")

    squares = WorkflowGraph("evenSquares")
    counter, even, square, collect = (
        CounterProducer(), IsEven(), SquareNumber(), CollectList(),
    )
    squares.connect(counter, "output", even, "input")
    squares.connect(even, "output", square, "input")
    squares.connect(square, "output", collect, "input")

    stats = WorkflowGraph("streamStats")
    gauss, tracker = GaussianProducer(), StreamStatistics()
    stats.connect(gauss, "output", tracker, "input")

    return [
        (build_isprime_graph(), "isPrime",
         "Workflow that prints random prime numbers"),
        (build_internal_extinction_graph(), "Astrophysics",
         "A workflow to compute the internal extinction of galaxies"),
        (wordcount, "wordCount", "Counts word frequencies in sentences"),
        (squares, "evenSquares", "Squares of the even integers"),
        (stats, "streamStats", "Summary statistics of a numeric stream"),
    ]


def main() -> None:
    client = LaminarClient(local_stack())
    client.register("zz46", "password")
    client.login("zz46", "password")

    # populate: 22 library PEs + 5 workflows (whose PEs dedup into them)
    for cls in ALL_LIBRARY_PES:
        client.register_PE(cls)
    for graph, name, description in build_five_workflows():
        client.register_Workflow(graph, name, description)

    registry = client.get_Registry()
    print(f"\nregistry holds {len(registry['pes'])} PEs and "
          f"{len(registry['workflows'])} workflows\n")

    print("--- Figure 6: text-based search ---------------------------")
    print('client.search_Registry("prime", "workflow")')
    client.search_Registry("prime", "workflow")

    print("\n--- Figure 7: semantic code search ------------------------")
    print('client.search_Registry("A PE that checks if a number is prime", "pe", "text")')
    client.search_Registry(
        "A PE that checks if a number is prime", "pe", "text", k=6
    )

    print("\n--- Figure 8: code completion -----------------------------")
    print('client.search_Registry("random.randint(1, 1000)", "pe", "code")')
    hits = client.search_Registry("random.randint(1, 1000)", "pe", "code", k=5)
    best = hits[0]
    print(f"\nbest completion source: {best['peName']}; suggested continuation:")
    print("    " + "\n    ".join(best["continuation"].splitlines()[:4]))


if __name__ == "__main__":
    main()
