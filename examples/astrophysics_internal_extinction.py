"""The Internal Extinction astrophysics workflow (paper §5.2).

Reproduces Figure 10's four-PE pipeline and Listings 5-7: register the
workflow, retrieve it from the Registry, and execute it with the Redis
mapping and ten processes against a ``resources/coordinates.txt`` galaxy
catalog.  The Virtual Observatory is the synthetic service of
``repro.datasets.votable`` (see DESIGN.md substitutions).

Run:  python examples/astrophysics_internal_extinction.py
"""

import os
import tempfile

from repro import LaminarClient, local_stack
from repro.dataflow.visualization import abstract_to_ascii
from repro.datasets.galaxies import write_coordinates_file
from repro.workflows.astrophysics import build_internal_extinction_graph

N_GALAXIES = 25
VO_LATENCY_S = 0.01  # modelled Virtual Observatory round trip


def main() -> None:
    client = LaminarClient(local_stack())
    client.register("rf208", "password")
    client.login("rf208", "password")

    graph = build_internal_extinction_graph(latency_s=VO_LATENCY_S, seed=42)
    print(abstract_to_ascii(graph))

    # Listing 5: register the workflow
    client.register_Workflow(
        graph,
        "Astrophysics",
        "A workflow to compute the internal extinction of galaxies",
    )

    # Listing 6: retrieve it back from the Registry
    workflow = client.get_Workflow("Astrophysics")
    print(f"\nretrieved from registry: {workflow}")

    # Listing 7: execute with the Redis mapping and ten processes,
    # shipping the resources directory with the catalog file
    workdir = tempfile.mkdtemp(prefix="astro-example-")
    write_coordinates_file(
        os.path.join(workdir, "resources", "coordinates.txt"),
        N_GALAXIES,
        seed=42,
    )
    os.chdir(workdir)
    print(f"\nsynthetic catalog with {N_GALAXIES} galaxies written; running "
          "with REDIS mapping, 10 processes...\n")
    outcome = client.run(
        "Astrophysics",
        input=[{"input": "resources/coordinates.txt"}],
        process="REDIS",
        args={"num": 10},
        resources=True,
    )

    values = [v for vs in outcome.results.values() for v in vs]
    values.sort(key=lambda pair: -pair[1])
    print(f"computed internal extinction for {len(values)} galaxies "
          f"in {outcome.timings['execute_s']:.2f}s; five dustiest:")
    for name, extinction in values[:5]:
        print(f"  {name}: A_int = {extinction:.4f}")


if __name__ == "__main__":
    main()
