"""Quickstart: a complete Laminar session in one process.

Covers the §3.4.1 client workflow end to end: register/login, register a
PE and a workflow, inspect the registry, and execute the workflow
serverlessly with the Simple mapping.

Run:  python examples/quickstart.py
"""

from repro import LaminarClient, local_stack
from repro.dataflow import ConsumerPE, IterativePE, ProducerPE, WorkflowGraph


class NumberProducer(ProducerPE):
    """Stream random integers between 1 and 1000 (paper Listing 1)."""

    def __init__(self):
        ProducerPE.__init__(self)

    def _process(self):
        import random

        # Generate a random number
        return random.randint(1, 1000)


class IsPrime(IterativePE):
    """Forward only prime numbers."""

    def __init__(self):
        IterativePE.__init__(self)

    def _process(self, num):
        if num >= 2 and all(num % i != 0 for i in range(2, int(num**0.5) + 1)):
            return num


class PrintPrime(ConsumerPE):
    """Print every prime that arrives."""

    def __init__(self):
        ConsumerPE.__init__(self)

    def _process(self, num):
        print("the num %s is prime" % num)


def main() -> None:
    # one-process deployment: server + engine + in-memory registry
    client = LaminarClient(local_stack())

    # (1)+(2): account + session
    client.register("zz46", "password")
    client.login("zz46", "password")

    # (3): register a PE with an explicit description...
    client.register_PE(NumberProducer, "Random numbers producer")
    # ...and one without: Laminar auto-summarizes it (§3.1.1)
    body = client.register_PE(IsPrime)
    print(f"auto-generated description for IsPrime: {body['description']!r}")

    # (4): build and register the workflow (Listing 3)
    graph = WorkflowGraph("isPrime")
    pe1, pe2, pe3 = NumberProducer(), IsPrime(), PrintPrime()
    graph.connect(pe1, "output", pe2, "input")
    graph.connect(pe2, "output", pe3, "input")
    client.register_Workflow(
        graph, "isPrime", "Workflow that prints random prime numbers"
    )

    # (12): list everything we own
    client.get_Registry()

    # (13): run it for 10 iterations on the serverless engine
    outcome = client.run("isPrime", input=10)
    print(f"\nengine timings: {outcome.timings}")
    print(f"root PE detected automatically: {outcome.root_pes}")


if __name__ == "__main__":
    main()
